//! The sharded, event-driven emulation engine.
//!
//! The serial engine in [`engine`](crate::engine) walks the merged
//! injection/encounter schedule one operation at a time with every
//! replica resident — fine for the paper's 34-bus fleet, a wall at city
//! scale. This module re-runs the *same* schedule as batches of
//! conflict-free operations executed on worker shards, with three
//! properties the differential suite (`tests/shard_equivalence.rs`) pins:
//!
//! * **Equivalence.** [`ExperimentMetrics`] are *equal* (`==`) to the
//!   serial engine's for any worker count. The argument: operations get
//!   global sequence numbers in scan order (identical to the serial
//!   processing order, including fault-injection draws, which happen at
//!   scan time on one rng); a batch only admits operations touching
//!   disjoint node sets, and an operation that conflicts is deferred
//!   *and blocks its nodes* so every later operation on those nodes
//!   defers behind it — hence per-node execution order equals serial
//!   order, and node states evolve identically. Metric bookkeeping
//!   happens on the main thread strictly in sequence order, over event
//!   deltas of committed operations only, so time-sensitive metrics
//!   (`copies_at_delivery`, daily series) see exactly the serial-prefix
//!   world.
//! * **Streaming.** Encounters can be read from a
//!   [`SpooledTrace`](traces::SpooledTrace) file instead of an in-memory
//!   `Vec` ([`EmulationConfig::stream_encounters`]); the sequence is
//!   byte-identical either way (pinned by the spool's own tests).
//! * **Bounded residency.** With [`EmulationConfig::resident_limit`],
//!   cold replicas are snapshotted into an append-only
//!   [`SpillFile`](store::SpillFile) between batches and restored on
//!   their next operation, so peak RSS tracks the hot set, not the
//!   fleet. Spilling is invisible to metrics under [`SyncMode::Full`];
//!   under digest mode the (unsnapshotted) reconciliation caches die
//!   with each spill, which can shift `recon.*` traffic — like a reboot,
//!   never a correctness loss.
//!
//! Cross-shard encounters — the pair's endpoints hash to different
//! shards — execute on the first endpoint's shard and are surfaced as
//! [`Event::ShardHandoff`] (counter `shard.handoffs`); spill activity as
//! [`Event::ReplicaSpill`] (`shard.spills` / `shard.unspills` /
//! `shard.resident`). Both are emitted from the main thread at commit,
//! so observer output stays deterministic for a fixed worker count.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use dtn::{DtnNode, EncounterBudget};
use obs::{Event, Obs, Observer};
use parking_lot::Mutex;
use pfr::{ItemId, ReplicaId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{SpillFile, SpillSlot};
use traces::{bus_address, Encounter, MessageEvent, UserAssignment};

use crate::engine::{Emulation, EmulationConfig, TraceSource};
use crate::metrics::ExperimentMetrics;

/// Disambiguates spill/spool files when several emulations run in one
/// process (the test harness does exactly that).
static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn unique_path(dir: &Path, tag: &str) -> PathBuf {
    let n = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("replidtn-{tag}-{}-{n}.bin", std::process::id()))
}

/// Per-node event mailbox: a replica's observer while it executes on a
/// worker. Drained into the operation's result and re-emitted on the run
/// observer at commit, in global sequence order.
#[derive(Debug, Default)]
struct EventBuffer {
    events: Mutex<Vec<Event>>,
}

impl EventBuffer {
    fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl Observer for EventBuffer {
    fn on_event(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// One schedule operation, resolved at scan time (assignment lookups and
/// fault draws happen there, on the serial rng order).
#[derive(Debug)]
enum OpKind {
    /// A message injection on `src_bus` (the only node it mutates).
    Inject {
        src_user: String,
        dst_user: String,
        src_bus: ReplicaId,
        dst_bus: ReplicaId,
        now: SimTime,
    },
    /// An encounter, with an optional crash-injection victim rebooting
    /// first (as in the serial engine, the reboot draw precedes the
    /// meeting).
    Meet {
        encounter: Encounter,
        victim: Option<ReplicaId>,
    },
    /// A degenerate self-encounter whose crash draw still fired: the
    /// serial engine reboots the victim and skips the meeting.
    Reboot { victim: ReplicaId },
}

#[derive(Debug)]
struct Op {
    seq: u64,
    kind: OpKind,
}

impl Op {
    fn node_ids(&self) -> (ReplicaId, Option<ReplicaId>) {
        match &self.kind {
            OpKind::Inject { src_bus, .. } => (*src_bus, None),
            OpKind::Meet { encounter, .. } => (encounter.a, Some(encounter.b)),
            OpKind::Reboot { victim } => (*victim, None),
        }
    }

    fn victim(&self) -> Option<ReplicaId> {
        match &self.kind {
            OpKind::Inject { .. } => None,
            OpKind::Meet { victim, .. } => *victim,
            OpKind::Reboot { victim } => Some(*victim),
        }
    }
}

/// A dispatched operation: the op plus owned nodes (and their event
/// mailboxes) travelling to a worker shard and back.
struct Job {
    op: Op,
    nodes: Vec<(ReplicaId, DtnNode, Arc<EventBuffer>)>,
}

enum Outcome {
    Injected {
        id: Option<ItemId>,
    },
    Met {
        report: dtn::EncounterReport,
        rebooted: bool,
    },
    Rebooted {
        rebooted: bool,
    },
}

struct ExecResult {
    op: Op,
    nodes: Vec<(ReplicaId, DtnNode)>,
    events: Vec<Event>,
    outcome: Outcome,
}

/// The merged, time-ordered operation stream: injections and encounters
/// interleaved exactly as the serial loop does (ties go to injections),
/// with fault-injection draws taken here so the rng consumption order is
/// identical to serial regardless of batching.
struct OpStream<'s> {
    injections: std::iter::Peekable<std::slice::Iter<'s, MessageEvent>>,
    encounters: std::iter::Peekable<Box<dyn Iterator<Item = Encounter> + 's>>,
    fault_rng: StdRng,
    drop_rate: f64,
    crash_rate: f64,
    assignment: &'s UserAssignment,
    next_seq: u64,
}

impl OpStream<'_> {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            let ti = self.injections.peek().map(|e| e.time);
            let te = self.encounters.peek().map(|e| e.time);
            let kind = match (ti, te) {
                (None, None) => return None,
                (Some(ti), Some(te)) if ti <= te => self.scan_injection(),
                (Some(_), None) => self.scan_injection(),
                (_, Some(_)) => self.scan_encounter(),
            };
            if let Some(kind) = kind {
                let seq = self.next_seq;
                self.next_seq += 1;
                return Some(Op { seq, kind });
            }
        }
    }

    fn scan_injection(&mut self) -> Option<OpKind> {
        let event = self.injections.next().expect("peeked");
        let day = event.time.day();
        let (Some(src_bus), Some(dst_bus)) = (
            self.assignment.bus_of(day, &event.src),
            self.assignment.bus_of(day, &event.dst),
        ) else {
            return None; // no buses scheduled that day: lost upstream, as in serial
        };
        Some(OpKind::Inject {
            src_user: event.src.clone(),
            dst_user: event.dst.clone(),
            src_bus,
            dst_bus,
            now: event.time,
        })
    }

    fn scan_encounter(&mut self) -> Option<OpKind> {
        let enc = self.encounters.next().expect("peeked");
        if self.drop_rate > 0.0 && self.fault_rng.gen::<f64>() < self.drop_rate {
            return None;
        }
        let mut victim = None;
        if self.crash_rate > 0.0 && self.fault_rng.gen::<f64>() < self.crash_rate {
            victim = Some(if self.fault_rng.gen::<bool>() {
                enc.a
            } else {
                enc.b
            });
        }
        if enc.a == enc.b {
            // The serial engine's `meet` returns immediately on a
            // degenerate self-encounter, but the reboot drawn before it
            // still happens.
            return victim.map(|victim| OpKind::Reboot { victim });
        }
        Some(OpKind::Meet {
            encounter: enc,
            victim,
        })
    }
}

fn shard_of(id: ReplicaId, workers: usize) -> usize {
    (id.as_u64() % workers as u64) as usize
}

/// Reboots a node in place: durable state round-trips through a snapshot,
/// the routing policy restarts cold. Mirrors the serial engine's
/// `reboot`, including keeping the node untouched when the snapshot names
/// a policy outside the registry (custom specs).
fn reboot_in_place(
    node: &mut DtnNode,
    buffer: &Arc<EventBuffer>,
    config: &EmulationConfig,
) -> bool {
    let snapshot = node.snapshot();
    match DtnNode::restore(&snapshot) {
        Ok(mut restored) => {
            restored.replace_policy(config.policy.build());
            restored
                .replica_mut()
                .set_observer(Obs::new(buffer.clone()));
            restored
                .replica_mut()
                .set_candidate_scan(config.candidate_scan);
            restored.replica_mut().set_owned_copies(config.owned_copies);
            restored.set_sync_mode(config.sync_mode);
            *node = restored;
            true
        }
        Err(_) => false,
    }
}

/// Executes one operation on a worker shard. Pure node work: no metrics,
/// no shared state — everything the commit step needs rides back in the
/// result.
fn execute(job: Job, config: &EmulationConfig) -> ExecResult {
    let Job { op, mut nodes } = job;
    let outcome = match &op.kind {
        OpKind::Inject {
            src_user,
            dst_user,
            src_bus,
            dst_bus,
            now,
        } => {
            let (_, node, _) = &mut nodes[0];
            let src_addr = bus_address(*src_bus);
            let dst_addr = bus_address(*dst_bus);
            let payload = format!("{src_user}->{dst_user}").into_bytes();
            let sent = match config.message_lifetime {
                Some(lifetime) => dtn::messaging::send_message_with_lifetime(
                    node.replica_mut(),
                    &src_addr,
                    &dst_addr,
                    payload,
                    *now,
                    lifetime,
                ),
                None => node.send_from(&src_addr, &dst_addr, payload, *now),
            };
            Outcome::Injected { id: sent.ok() }
        }
        OpKind::Meet { encounter, victim } => {
            let mut rebooted = false;
            if let Some(victim) = victim {
                let slot = nodes
                    .iter_mut()
                    .find(|(id, _, _)| id == victim)
                    .expect("victim rides with its op");
                rebooted = reboot_in_place(&mut slot.1, &slot.2, config);
            }
            let budget = match config.messages_per_contact_minute {
                Some(rate) if encounter.duration.as_secs() > 0 => {
                    let allowance = (encounter.duration.as_secs() as f64 / 60.0 * rate).ceil();
                    EncounterBudget::max_messages((allowance as usize).max(1))
                }
                _ => config.budget,
            };
            let (first, rest) = nodes.split_at_mut(1);
            let report = first[0].1.encounter(&mut rest[0].1, encounter.time, budget);
            Outcome::Met { report, rebooted }
        }
        OpKind::Reboot { victim: _ } => {
            let (_, node, buffer) = &mut nodes[0];
            let buffer = buffer.clone();
            let rebooted = reboot_in_place(node, &buffer, config);
            Outcome::Rebooted { rebooted }
        }
    };
    // Drain mailboxes in op-node order (a before b): per-op event
    // grouping is deterministic even though worker completion order
    // is not.
    let mut events = Vec::new();
    for (_, _, buffer) in &nodes {
        events.extend(buffer.drain());
    }
    ExecResult {
        op,
        nodes: nodes.into_iter().map(|(id, node, _)| (id, node)).collect(),
        events,
        outcome,
    }
}

/// Main-thread bookkeeping that replaces the serial engine's direct node
/// inspection: live copy counts and per-node eviction counters are
/// maintained incrementally from committed events, so commits never need
/// to look at (possibly spilled, possibly mid-batch) node state.
#[derive(Default)]
struct CommitState {
    /// `(origin, seq) -> live copies`, from injection/accept/drop deltas.
    /// Matches the serial `count_copies` scan at every commit point for
    /// every queried (pending, unexpired) message.
    copies: HashMap<(u64, u64), i64>,
    /// Evictions per node since its last successful reboot.
    evict_since_reboot: HashMap<u64, u64>,
    total_evictions: u64,
    /// Evictions wiped by reboots (`ReplicaStats` are not snapshotted, so
    /// the serial engine's final sum only sees since-last-reboot counts).
    lost_evictions: u64,
}

impl CommitState {
    fn apply(&mut self, event: &Event) {
        match event {
            Event::MessageInjected { origin, seq, .. }
            | Event::ItemDelivered { origin, seq, .. }
            | Event::ItemRelayed { origin, seq, .. } => {
                *self.copies.entry((*origin, *seq)).or_insert(0) += 1;
            }
            Event::MessageDropped { origin, seq, .. } => {
                *self.copies.entry((*origin, *seq)).or_insert(0) -= 1;
            }
            Event::ItemEvicted { replica, .. } => {
                self.total_evictions += 1;
                *self.evict_since_reboot.entry(*replica).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    fn live_copies(&self, id: ItemId) -> usize {
        self.copies
            .get(&(id.origin().as_u64(), id.seq()))
            .copied()
            .unwrap_or(0)
            .max(0) as usize
    }
}

/// Applies one executed operation to the metrics, in global sequence
/// order. This is the serial engine's post-mutation bookkeeping, verbatim
/// but fed from the result instead of live nodes.
fn commit(
    result: ExecResult,
    metrics: &mut ExperimentMetrics,
    obs: &Obs,
    config: &EmulationConfig,
    state: &mut CommitState,
    workers: usize,
) {
    let ExecResult {
        op,
        events,
        outcome,
        ..
    } = result;

    // Reboot bookkeeping precedes the op's own events (the serial engine
    // reboots before meeting).
    let rebooted = matches!(
        outcome,
        Outcome::Met { rebooted: true, .. } | Outcome::Rebooted { rebooted: true }
    );
    if rebooted {
        let victim = op.victim().expect("rebooted op has a victim");
        let lost = state
            .evict_since_reboot
            .remove(&victim.as_u64())
            .unwrap_or(0);
        state.lost_evictions += lost;
        metrics.reboots += 1;
    }

    if let OpKind::Meet { encounter, .. } = &op.kind {
        let from = shard_of(encounter.a, workers);
        let to = shard_of(encounter.b, workers);
        if from != to {
            obs.emit(|| Event::ShardHandoff {
                a: encounter.a.as_u64(),
                b: encounter.b.as_u64(),
                from_shard: from as u64,
                to_shard: to as u64,
                at_secs: encounter.time.as_secs(),
            });
        }
    }

    for event in events {
        state.apply(&event);
        obs.emit(|| event);
    }

    match outcome {
        Outcome::Injected { id: None } | Outcome::Rebooted { .. } => {}
        Outcome::Injected { id: Some(id) } => {
            let OpKind::Inject {
                src_bus,
                dst_bus,
                now,
                ..
            } = &op.kind
            else {
                unreachable!("injection outcome from injection op")
            };
            let src_addr = bus_address(*src_bus);
            let dst_addr = bus_address(*dst_bus);
            metrics.record_injection(id, &src_addr, &dst_addr, *now);
            if src_bus == dst_bus {
                // Sender and destination ride the same bus today:
                // delivered on the spot with a single stored copy.
                metrics.record_delivery(id, *now, 1);
                obs.emit(|| Event::MessageDelivered {
                    replica: dst_bus.as_u64(),
                    origin: id.origin().as_u64(),
                    seq: id.seq(),
                    delay_secs: 0,
                    at_secs: now.as_secs(),
                });
            }
        }
        Outcome::Met { report, .. } => {
            let OpKind::Meet { encounter, .. } = &op.kind else {
                unreachable!("meet outcome from meet op")
            };
            let now = encounter.time;
            metrics.encounters += 1;
            metrics.transmissions += report.transmitted as u64;
            metrics.duplicates += report.duplicates as u64;
            for (receiver, ids) in [
                (encounter.a, &report.delivered_to_a),
                (encounter.b, &report.delivered_to_b),
            ] {
                if ids.is_empty() {
                    continue;
                }
                let addr = bus_address(receiver);
                for &id in ids {
                    let is_final_destination =
                        metrics.record(id).is_some_and(|rec| rec.dst == addr);
                    if is_final_destination && metrics.is_pending(id) {
                        let in_time = match config.message_lifetime {
                            None => true,
                            Some(lifetime) => metrics
                                .record(id)
                                .is_some_and(|r| now.saturating_since(r.injected_at) < lifetime),
                        };
                        if in_time {
                            let copies = state.live_copies(id);
                            let delay_secs = metrics
                                .record(id)
                                .map(|r| now.saturating_since(r.injected_at).as_secs())
                                .unwrap_or(0);
                            metrics.record_delivery(id, now, copies);
                            obs.emit(|| Event::MessageDelivered {
                                replica: receiver.as_u64(),
                                origin: id.origin().as_u64(),
                                seq: id.seq(),
                                delay_secs,
                                at_secs: now.as_secs(),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Restores a spilled replica into the resident set.
fn ensure_resident(
    id: ReplicaId,
    nodes: &mut BTreeMap<ReplicaId, DtnNode>,
    spilled: &mut BTreeMap<ReplicaId, SpillSlot>,
    spill: Option<&mut SpillFile>,
    buffers: &BTreeMap<ReplicaId, Arc<EventBuffer>>,
    config: &EmulationConfig,
    obs: &Obs,
) {
    if nodes.contains_key(&id) {
        return;
    }
    let slot = spilled.remove(&id).expect("node is resident or spilled");
    let file = spill.expect("spill file exists while nodes are spilled");
    let bytes = file.read(&slot).expect("read back spilled replica");
    let mut node = DtnNode::restore_with_policy(&bytes, config.policy.build())
        .expect("spilled replica restores under the run's own policy");
    // Snapshots carry no observability or acceleration state; re-attach
    // the mailbox and selection modes, as the serial reboot path does.
    node.replica_mut()
        .set_observer(Obs::new(buffers[&id].clone()));
    node.replica_mut().set_candidate_scan(config.candidate_scan);
    node.replica_mut().set_owned_copies(config.owned_copies);
    node.set_sync_mode(config.sync_mode);
    nodes.insert(id, node);
    obs.emit(|| Event::ReplicaSpill {
        replica: id.as_u64(),
        bytes: slot.len() as u64,
        resident: nodes.len() as u64,
        unspill: true,
    });
}

impl<'a> Emulation<'a> {
    /// Runs the schedule on the sharded engine. Dispatched to by
    /// [`Emulation::run_into_parts`] whenever a scale knob is set; the
    /// returned metrics equal a serial run's exactly.
    pub(crate) fn run_sharded(self) -> (ExperimentMetrics, BTreeMap<ReplicaId, DtnNode>) {
        let Emulation {
            source,
            workload,
            config,
            mut nodes,
            assignment,
            mut metrics,
            obs,
            rollup,
        } = self;
        let workers = config.shards.unwrap_or(1).max(1);

        // Per-node event mailboxes replace the shared observer: a node's
        // events accumulate locally while it executes on a worker and are
        // forwarded to the run observer in global sequence order at
        // commit.
        let mut buffers: BTreeMap<ReplicaId, Arc<EventBuffer>> = BTreeMap::new();
        for (&id, node) in nodes.iter_mut() {
            let buffer = Arc::new(EventBuffer::default());
            node.replica_mut().set_observer(Obs::new(buffer.clone()));
            buffers.insert(id, buffer);
        }

        // Disk plumbing: a spill file when residency is capped, a temp
        // spool when an in-memory trace should stream from disk.
        let scratch_dir = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let mut spill = config.resident_limit.map(|_| {
            std::fs::create_dir_all(&scratch_dir).expect("create spill directory");
            SpillFile::create(unique_path(&scratch_dir, "spill")).expect("create spill file")
        });
        let mut spilled: BTreeMap<ReplicaId, SpillSlot> = BTreeMap::new();
        let mut last_used: BTreeMap<ReplicaId, u64> = BTreeMap::new();

        let temp_spool = match (source, config.stream_encounters) {
            (TraceSource::Memory(trace), true) => {
                std::fs::create_dir_all(&scratch_dir).expect("create spool directory");
                let path = unique_path(&scratch_dir, "spool");
                Some(traces::SpooledTrace::spool(trace, path).expect("spool trace to disk"))
            }
            _ => None,
        };
        let encounters: Box<dyn Iterator<Item = Encounter> + '_> = match (&temp_spool, source) {
            (Some(spooled), _) => Box::new(spooled.iter().expect("open temp encounter spool")),
            (None, TraceSource::Spooled(trace)) => {
                Box::new(trace.iter().expect("open encounter spool"))
            }
            (None, TraceSource::Memory(trace)) => Box::new(trace.iter().copied()),
        };

        let mut stream = OpStream {
            injections: workload.events().iter().peekable(),
            encounters: encounters.peekable(),
            fault_rng: StdRng::seed_from_u64(config.fault_seed),
            drop_rate: config.encounter_drop_rate,
            crash_rate: config.crash_rate,
            assignment: &assignment,
            next_seq: 0,
        };

        let mut deferred: VecDeque<Op> = VecDeque::new();
        let mut pending: BTreeMap<u64, ExecResult> = BTreeMap::new();
        let mut next_commit: u64 = 0;
        let mut state = CommitState::default();
        let max_batch = workers * 32;
        // Conflicts concentrate on hub nodes; past this many parked ops,
        // scanning further mostly grows the park, so cut the batch here.
        const MAX_DEFERRED: usize = 64;
        let mut batch_no: u64 = 0;

        let (result_tx, result_rx) = mpsc::channel::<ExecResult>();
        std::thread::scope(|scope| {
            let mut job_txs: Vec<mpsc::Sender<Job>> = Vec::with_capacity(workers);
            for _ in 0..workers {
                let (tx, rx) = mpsc::channel::<Job>();
                job_txs.push(tx);
                let worker_config = config.clone();
                let results = result_tx.clone();
                scope.spawn(move || {
                    for job in rx {
                        if results.send(execute(job, &worker_config)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);

            loop {
                // Assemble one conflict-free batch: deferred ops first (in
                // order), then fresh scans. A deferred/conflicting op
                // blocks its nodes so everything behind it on those nodes
                // queues up behind it — per-node order stays serial.
                let mut batch: Vec<Op> = Vec::new();
                let mut busy: HashSet<ReplicaId> = HashSet::new();
                let mut blocked: HashSet<ReplicaId> = HashSet::new();
                let mut parked: VecDeque<Op> = VecDeque::new();
                let place = |op: Op,
                             batch: &mut Vec<Op>,
                             busy: &mut HashSet<ReplicaId>,
                             blocked: &mut HashSet<ReplicaId>,
                             parked: &mut VecDeque<Op>| {
                    let (a, b) = op.node_ids();
                    let clear = |set: &HashSet<ReplicaId>, id: ReplicaId| !set.contains(&id);
                    let free = |id: ReplicaId| clear(busy, id) && clear(blocked, id);
                    let placeable = free(a)
                        && match b {
                            Some(b) => free(b),
                            None => true,
                        };
                    if placeable {
                        busy.insert(a);
                        if let Some(b) = b {
                            busy.insert(b);
                        }
                        batch.push(op);
                    } else {
                        blocked.insert(a);
                        if let Some(b) = b {
                            blocked.insert(b);
                        }
                        parked.push_back(op);
                    }
                };
                for op in deferred.drain(..) {
                    place(op, &mut batch, &mut busy, &mut blocked, &mut parked);
                }
                while batch.len() < max_batch && parked.len() < MAX_DEFERRED {
                    let Some(op) = stream.next_op() else { break };
                    place(op, &mut batch, &mut busy, &mut blocked, &mut parked);
                }
                deferred = parked;
                if batch.is_empty() {
                    // The first deferred op is always placeable, so an
                    // empty batch means the schedule is exhausted.
                    debug_assert!(deferred.is_empty());
                    break;
                }
                batch_no += 1;

                // Dispatch: each op executes on the shard of its first
                // node, carrying its (unspilled, owned) nodes along.
                let dispatched = batch.len();
                for op in batch {
                    let (a, b) = op.node_ids();
                    let shard = shard_of(a, workers);
                    let mut op_nodes = Vec::with_capacity(2);
                    for id in [Some(a), b].into_iter().flatten() {
                        ensure_resident(
                            id,
                            &mut nodes,
                            &mut spilled,
                            spill.as_mut(),
                            &buffers,
                            &config,
                            &obs,
                        );
                        last_used.insert(id, batch_no);
                        let node = nodes.remove(&id).expect("resident node");
                        op_nodes.push((id, node, buffers[&id].clone()));
                    }
                    job_txs[shard]
                        .send(Job {
                            op,
                            nodes: op_nodes,
                        })
                        .expect("worker shard alive");
                }

                // Collect the whole batch back (completion order is
                // nondeterministic; ownership returns here).
                for _ in 0..dispatched {
                    let mut result = result_rx.recv().expect("worker result");
                    for (id, node) in result.nodes.drain(..) {
                        nodes.insert(id, node);
                    }
                    pending.insert(result.op.seq, result);
                }

                // Commit strictly in global sequence order. Ops still
                // deferred stall later commits until they execute.
                while let Some(result) = pending.remove(&next_commit) {
                    commit(result, &mut metrics, &obs, &config, &mut state, workers);
                    next_commit += 1;
                }

                // Spill down to the residency cap, coldest (least recently
                // used, then lowest id) first.
                if let (Some(limit), Some(file)) = (config.resident_limit, spill.as_mut()) {
                    while nodes.len() > limit {
                        let victim = nodes
                            .keys()
                            .copied()
                            .min_by_key(|id| (last_used.get(id).copied().unwrap_or(0), *id))
                            .expect("resident set nonempty");
                        let node = nodes.remove(&victim).expect("victim resident");
                        let snapshot = node.snapshot();
                        let slot = file.append(&snapshot).expect("append to spill file");
                        spilled.insert(victim, slot);
                        obs.emit(|| Event::ReplicaSpill {
                            replica: victim.as_u64(),
                            bytes: slot.len() as u64,
                            resident: nodes.len() as u64,
                            unspill: false,
                        });
                    }
                }
            }
            drop(job_txs);
        });
        debug_assert!(pending.is_empty(), "all dispatched ops commit");

        // Bring every spilled replica home for final accounting, then
        // drop the scratch files.
        let parked: Vec<ReplicaId> = spilled.keys().copied().collect();
        for id in parked {
            ensure_resident(
                id,
                &mut nodes,
                &mut spilled,
                spill.as_mut(),
                &buffers,
                &config,
                &obs,
            );
        }
        if let Some(file) = &spill {
            let _ = std::fs::remove_file(file.path());
        }
        if let Some(spooled) = &temp_spool {
            let _ = std::fs::remove_file(spooled.path());
        }

        // Final accounting, identical to the serial engine — except
        // evictions, which come from committed events because spilling
        // (like rebooting) discards `ReplicaStats`.
        let mut copies: BTreeMap<ItemId, usize> = BTreeMap::new();
        for node in nodes.values() {
            for item in node.replica().iter_items() {
                if !item.is_deleted() {
                    *copies.entry(item.id()).or_insert(0) += 1;
                }
            }
        }
        let ids: Vec<ItemId> = metrics.records().map(|r| r.id).collect();
        for id in ids {
            let count = copies.get(&id).copied().unwrap_or(0);
            metrics.record_final_copies(id, count);
        }
        metrics.evictions = state.total_evictions - state.lost_evictions;
        metrics.set_daily_stats(rollup.snapshot());
        (metrics, nodes)
    }
}
