//! The sharded, event-driven emulation engine.
//!
//! The serial engine in [`engine`](crate::engine) walks the merged
//! injection/encounter schedule one operation at a time with every
//! replica resident — fine for the paper's 34-bus fleet, a wall at city
//! scale. This module re-runs the *same* schedule as batches of
//! conflict-free operations executed on worker shards, with three
//! properties the differential suite (`tests/shard_equivalence.rs`) pins:
//!
//! * **Equivalence.** [`ExperimentMetrics`] are *equal* (`==`) to the
//!   serial engine's for any worker count. The argument: operations get
//!   global sequence numbers in scan order (identical to the serial
//!   processing order, including fault-injection draws, which happen at
//!   scan time on one rng); a batch only admits operations touching
//!   disjoint node sets, and an operation that conflicts is deferred
//!   *and blocks its nodes* so every later operation on those nodes
//!   defers behind it — hence per-node execution order equals serial
//!   order, and node states evolve identically. Metric bookkeeping
//!   happens on the main thread strictly in sequence order, over event
//!   deltas of committed operations only, so time-sensitive metrics
//!   (`copies_at_delivery`, daily series) see exactly the serial-prefix
//!   world.
//! * **Streaming.** Encounters can be read from a
//!   [`SpooledTrace`](traces::SpooledTrace) file instead of an in-memory
//!   `Vec` ([`EmulationConfig::stream_encounters`]); the sequence is
//!   byte-identical either way (pinned by the spool's own tests).
//! * **Bounded residency.** With [`EmulationConfig::resident_limit`],
//!   cold replicas are snapshotted into a slot-reusing
//!   [`SpillFile`](store::SpillFile) between batches and restored before
//!   their next operation, so peak RSS tracks the hot set, not the
//!   fleet. Spilling is invisible to metrics under [`SyncMode::Full`];
//!   under digest mode the (unsnapshotted) reconciliation caches die
//!   with each spill, which can shift `recon.*` traffic — like a reboot,
//!   never a correctness loss.
//!
//! Three mechanisms keep the engine fast rather than merely correct:
//!
//! * **Host-sized execution.** Shards are a *partitioning* unit — they
//!   fix handoff accounting and conflict-free batch membership — while
//!   threads are an *execution* resource, sized separately by
//!   [`EmulationConfig::exec_threads`]. With a pool, a batch is split
//!   into per-thread chunks and each pool thread gets *one* channel send
//!   (and answers with one) per batch, not one per operation; events
//!   accumulate in a per-thread mailbox drained after each operation.
//!   Without a pool — the default on a single-core host, where threads
//!   only add hand-off latency — the shards execute *cooperatively* on
//!   the main thread: operations run one at a time in sequence order and
//!   commit immediately, nodes permanently wear a direct-commit
//!   observer, and no batch assembly, result buffering, or event
//!   re-emission exists at all. Metrics are identical either way.
//! * **Lookahead-driven residency.** The encounter stream is wrapped in
//!   a [`Lookahead`](traces::Lookahead) window (sized by
//!   [`EmulationConfig::lookahead`], default `8 × resident_limit`).
//!   Eviction is Belady-style: the replica whose next windowed encounter
//!   is farthest goes first (never-in-window beats touched-late), nodes
//!   riding in deferred operations are pinned, and replicas the window
//!   touches soon are *prefetched* while a dispatched batch is still
//!   executing, so spill reads overlap compute. The policy is
//!   performance-only — any eviction choice preserves equivalence.
//! * **Batched spill I/O.** A spill-down snapshots every victim through
//!   a persistent [`SnapshotScratch`] into one arena and appends them
//!   with one write; restores read sorted-by-offset batches and free
//!   their slots for reuse, so the spill file plateaus at the live
//!   parked set instead of growing with write volume.
//!
//! Cross-shard encounters — the pair's endpoints hash to different
//! shards — execute on the first endpoint's shard and are surfaced as
//! [`Event::ShardHandoff`] (counter `shard.handoffs`); spill activity as
//! [`Event::ReplicaSpill`] (`shard.spills` / `shard.unspills` /
//! `shard.resident`, latency and file high-water in `latency_us` /
//! `file_bytes`). Both are emitted from the main thread, so observer
//! output stays deterministic for a fixed worker count and execution
//! mode.

use std::cmp::Reverse;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

use dtn::{DtnNode, EncounterBudget, SnapshotScratch};
use obs::{Event, Obs, Observer};
use parking_lot::Mutex;
use pfr::{ItemId, ReplicaId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use store::{SpillFile, SpillSlot};
use traces::{bus_address, Encounter, Lookahead, MessageEvent, UserAssignment};

use crate::engine::{Emulation, EmulationConfig, TraceSource};
use crate::metrics::ExperimentMetrics;

/// FxHash-style multiply-xor hasher for the hot-path maps. Their keys are
/// replica ids and sequence numbers — small, trusted integers — where
/// SipHash's DoS resistance buys nothing and its latency is measurable at
/// half a dozen map touches per operation.
#[derive(Default)]
struct FxHasher(u64);

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;
type FxMap<K, V> = HashMap<K, V, FxBuild>;
type FxSet<K> = HashSet<K, FxBuild>;

/// Disambiguates spill/spool files when several emulations run in one
/// process (the test harness does exactly that).
static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn unique_path(dir: &Path, tag: &str) -> PathBuf {
    let n = FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("replidtn-{tag}-{}-{n}.bin", std::process::id()))
}

/// Deletes a scratch file on drop, so temp spools survive neither panics
/// nor early exits.
struct RemoveOnDrop(PathBuf);

impl Drop for RemoveOnDrop {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Per-worker event mailbox: the observer every replica wears while it
/// executes on that worker. Drained after each operation into the
/// operation's result and re-emitted on the run observer at commit, in
/// global sequence order — so the per-op event stream preserves true
/// emission order (both encounter endpoints interleaved, exactly as the
/// serial engine's observer sees it).
#[derive(Debug, Default)]
struct EventBuffer {
    events: Mutex<Vec<Event>>,
}

impl EventBuffer {
    fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }
}

impl Observer for EventBuffer {
    fn on_event(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

/// The observer every node wears permanently on the cooperative
/// (thread-free) path: each event lands in the commit-state ledger and
/// forwards to the run observer as it is emitted, so the fast path needs
/// no per-operation buffering, cloning, or re-emission at all. The lock
/// is uncontended — only the main thread executes — and exists to keep
/// the `Observer: Sync` contract honest.
struct DirectSink {
    state: Mutex<CommitState>,
    obs: Obs,
}

impl Observer for DirectSink {
    fn on_event(&self, event: &Event) {
        self.state.lock().apply(event);
        self.obs.forward(event);
    }
}

/// One schedule operation, resolved at scan time (assignment lookups and
/// fault draws happen there, on the serial rng order).
#[derive(Debug)]
enum OpKind {
    /// A message injection on `src_bus` (the only node it mutates).
    Inject {
        src_user: String,
        dst_user: String,
        src_bus: ReplicaId,
        dst_bus: ReplicaId,
        now: SimTime,
    },
    /// An encounter, with an optional crash-injection victim rebooting
    /// first (as in the serial engine, the reboot draw precedes the
    /// meeting).
    Meet {
        encounter: Encounter,
        victim: Option<ReplicaId>,
    },
    /// A degenerate self-encounter whose crash draw still fired: the
    /// serial engine reboots the victim and skips the meeting.
    Reboot { victim: ReplicaId },
}

#[derive(Debug)]
struct Op {
    seq: u64,
    kind: OpKind,
}

impl Op {
    fn node_ids(&self) -> (ReplicaId, Option<ReplicaId>) {
        match &self.kind {
            OpKind::Inject { src_bus, .. } => (*src_bus, None),
            OpKind::Meet { encounter, .. } => (encounter.a, Some(encounter.b)),
            OpKind::Reboot { victim } => (*victim, None),
        }
    }

    fn victim(&self) -> Option<ReplicaId> {
        match &self.kind {
            OpKind::Inject { .. } => None,
            OpKind::Meet { victim, .. } => *victim,
            OpKind::Reboot { victim } => Some(*victim),
        }
    }
}

/// A dispatched operation: the op plus its owned nodes travelling to a
/// worker shard and back. Nodes stay boxed end to end — a [`DtnNode`] is
/// ~1 KiB inline, so every hop (map, chunk, channel, result) moves a
/// pointer, not the struct.
struct Job {
    op: Op,
    nodes: Vec<(ReplicaId, Box<DtnNode>)>,
}

enum Outcome {
    Injected {
        id: Option<ItemId>,
    },
    Met {
        report: dtn::EncounterReport,
        rebooted: bool,
    },
    Rebooted {
        rebooted: bool,
    },
}

struct ExecResult {
    op: Op,
    nodes: Vec<(ReplicaId, Box<DtnNode>)>,
    events: Vec<Event>,
    outcome: Outcome,
}

/// The worker side of the chunked dispatch protocol: one job channel per
/// pool thread — a single send carries the thread's whole share of a
/// batch — and one shared result channel back, answered once per chunk.
struct WorkerPool {
    jobs: Vec<mpsc::Sender<Vec<Job>>>,
    results: mpsc::Receiver<Vec<ExecResult>>,
}

/// The merged, time-ordered operation stream: injections and encounters
/// interleaved exactly as the serial loop does (ties go to injections),
/// with fault-injection draws taken here so the rng consumption order is
/// identical to serial regardless of batching. The encounter side is a
/// [`Lookahead`] window, so residency decisions can ask "when is this
/// node touched next?" without disturbing the sequence.
struct OpStream<'s> {
    injections: std::iter::Peekable<std::slice::Iter<'s, MessageEvent>>,
    encounters: Lookahead<Box<dyn Iterator<Item = Encounter> + 's>>,
    fault_rng: StdRng,
    drop_rate: f64,
    crash_rate: f64,
    assignment: &'s UserAssignment,
    next_seq: u64,
}

impl OpStream<'_> {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            let ti = self.injections.peek().map(|e| e.time);
            let te = self.encounters.peek().map(|e| e.time);
            let kind = match (ti, te) {
                (None, None) => return None,
                (Some(ti), Some(te)) if ti <= te => self.scan_injection(),
                (Some(_), None) => self.scan_injection(),
                (_, Some(_)) => self.scan_encounter(),
            };
            if let Some(kind) = kind {
                let seq = self.next_seq;
                self.next_seq += 1;
                return Some(Op { seq, kind });
            }
        }
    }

    fn scan_injection(&mut self) -> Option<OpKind> {
        let event = self.injections.next().expect("peeked");
        let day = event.time.day();
        let (Some(src_bus), Some(dst_bus)) = (
            self.assignment.bus_of(day, &event.src),
            self.assignment.bus_of(day, &event.dst),
        ) else {
            return None; // no buses scheduled that day: lost upstream, as in serial
        };
        Some(OpKind::Inject {
            src_user: event.src.clone(),
            dst_user: event.dst.clone(),
            src_bus,
            dst_bus,
            now: event.time,
        })
    }

    fn scan_encounter(&mut self) -> Option<OpKind> {
        let enc = self.encounters.next().expect("peeked");
        if self.drop_rate > 0.0 && self.fault_rng.gen::<f64>() < self.drop_rate {
            return None;
        }
        let mut victim = None;
        if self.crash_rate > 0.0 && self.fault_rng.gen::<f64>() < self.crash_rate {
            victim = Some(if self.fault_rng.gen::<bool>() {
                enc.a
            } else {
                enc.b
            });
        }
        if enc.a == enc.b {
            // The serial engine's `meet` returns immediately on a
            // degenerate self-encounter, but the reboot drawn before it
            // still happens.
            return victim.map(|victim| OpKind::Reboot { victim });
        }
        Some(OpKind::Meet {
            encounter: enc,
            victim,
        })
    }
}

fn shard_of(id: ReplicaId, workers: usize) -> usize {
    (id.as_u64() % workers as u64) as usize
}

/// Reboots a node in place: durable state round-trips through a snapshot,
/// the routing policy restarts cold. Mirrors the serial engine's
/// `reboot`, including keeping the node untouched when the snapshot names
/// a policy outside the registry (custom specs).
fn reboot_in_place(node: &mut DtnNode, mailbox: &Obs, config: &EmulationConfig) -> bool {
    let snapshot = node.snapshot();
    match DtnNode::restore(&snapshot) {
        Ok(mut restored) => {
            restored.replace_policy(config.policy.build());
            restored.replica_mut().set_observer(mailbox.clone());
            restored
                .replica_mut()
                .set_candidate_scan(config.candidate_scan);
            restored.replica_mut().set_owned_copies(config.owned_copies);
            restored.set_sync_mode(config.sync_mode);
            *node = restored;
            true
        }
        Err(_) => false,
    }
}

/// Executes one operation on a worker shard. Pure node work: no metrics,
/// no shared state — everything the commit step needs rides back in the
/// result. The worker's mailbox is attached to every rider first and
/// drained once after the op, so events come out in true emission order.
fn execute(job: Job, config: &EmulationConfig, buffer: &EventBuffer, mailbox: &Obs) -> ExecResult {
    let Job { op, mut nodes } = job;
    for (_, node) in nodes.iter_mut() {
        node.replica_mut().set_observer(mailbox.clone());
    }
    let outcome = match &op.kind {
        OpKind::Inject {
            src_user,
            dst_user,
            src_bus,
            dst_bus,
            now,
        } => {
            let (_, node) = &mut nodes[0];
            let src_addr = bus_address(*src_bus);
            let dst_addr = bus_address(*dst_bus);
            let payload = format!("{src_user}->{dst_user}").into_bytes();
            let sent = match config.message_lifetime {
                Some(lifetime) => dtn::messaging::send_message_with_lifetime(
                    node.replica_mut(),
                    &src_addr,
                    &dst_addr,
                    payload,
                    *now,
                    lifetime,
                ),
                None => node.send_from(&src_addr, &dst_addr, payload, *now),
            };
            Outcome::Injected { id: sent.ok() }
        }
        OpKind::Meet { encounter, victim } => {
            let mut rebooted = false;
            if let Some(victim) = victim {
                let slot = nodes
                    .iter_mut()
                    .find(|(id, _)| id == victim)
                    .expect("victim rides with its op");
                rebooted = reboot_in_place(&mut slot.1, mailbox, config);
            }
            let budget = match config.messages_per_contact_minute {
                Some(rate) if encounter.duration.as_secs() > 0 => {
                    let allowance = (encounter.duration.as_secs() as f64 / 60.0 * rate).ceil();
                    EncounterBudget::max_messages((allowance as usize).max(1))
                }
                _ => config.budget,
            };
            let (first, rest) = nodes.split_at_mut(1);
            let report = first[0].1.encounter(&mut rest[0].1, encounter.time, budget);
            Outcome::Met { report, rebooted }
        }
        OpKind::Reboot { victim: _ } => {
            let (_, node) = &mut nodes[0];
            let rebooted = reboot_in_place(node, mailbox, config);
            Outcome::Rebooted { rebooted }
        }
    };
    let events = buffer.drain();
    ExecResult {
        op,
        nodes,
        events,
        outcome,
    }
}

/// Main-thread bookkeeping that replaces the serial engine's direct node
/// inspection: live copy counts and per-node eviction counters are
/// maintained incrementally from committed events, so commits never need
/// to look at (possibly spilled, possibly mid-batch) node state.
#[derive(Default)]
struct CommitState {
    /// `(origin, seq) -> live copies`, from injection/accept/drop deltas.
    /// Matches the serial `count_copies` scan at every commit point for
    /// every queried (pending, unexpired) message.
    copies: FxMap<(u64, u64), i64>,
    /// Evictions per node since its last successful reboot.
    evict_since_reboot: FxMap<u64, u64>,
    total_evictions: u64,
    /// Evictions wiped by reboots (`ReplicaStats` are not snapshotted, so
    /// the serial engine's final sum only sees since-last-reboot counts).
    lost_evictions: u64,
}

impl CommitState {
    fn apply(&mut self, event: &Event) {
        match event {
            Event::MessageInjected { origin, seq, .. }
            | Event::ItemDelivered { origin, seq, .. }
            | Event::ItemRelayed { origin, seq, .. } => {
                *self.copies.entry((*origin, *seq)).or_insert(0) += 1;
            }
            Event::MessageDropped { origin, seq, .. } => {
                *self.copies.entry((*origin, *seq)).or_insert(0) -= 1;
            }
            Event::ItemEvicted { replica, .. } => {
                self.total_evictions += 1;
                *self.evict_since_reboot.entry(*replica).or_insert(0) += 1;
            }
            _ => {}
        }
    }

    fn live_copies(&self, id: ItemId) -> usize {
        self.copies
            .get(&(id.origin().as_u64(), id.seq()))
            .copied()
            .unwrap_or(0)
            .max(0) as usize
    }
}

/// Reboot bookkeeping: the victim's pre-reboot eviction counter is wiped
/// (the serial engine's `ReplicaStats` are not snapshotted, so its final
/// sum only sees since-last-reboot counts). Runs *before* the rebooted
/// operation's own events reach the ledger — the serial engine reboots
/// before meeting, so any evictions the meeting causes count against the
/// fresh epoch.
fn note_reboot(victim: ReplicaId, state: &mut CommitState, metrics: &mut ExperimentMetrics) {
    let lost = state
        .evict_since_reboot
        .remove(&victim.as_u64())
        .unwrap_or(0);
    state.lost_evictions += lost;
    metrics.reboots += 1;
}

/// Emits the cross-shard handoff marker for `op` if its encounter spans
/// shards. Pure partition accounting: `shard_of` depends only on ids and
/// the shard count, never on how many threads executed the batch.
fn note_handoff(op: &Op, workers: usize, obs: &Obs) {
    if let OpKind::Meet { encounter, .. } = &op.kind {
        let from = shard_of(encounter.a, workers);
        let to = shard_of(encounter.b, workers);
        if from != to {
            obs.emit(|| Event::ShardHandoff {
                a: encounter.a.as_u64(),
                b: encounter.b.as_u64(),
                from_shard: from as u64,
                to_shard: to as u64,
                at_secs: encounter.time.as_secs(),
            });
        }
    }
}

/// Applies one executed operation to the metrics, in global sequence
/// order. This is the serial engine's post-mutation bookkeeping, verbatim
/// but fed from the outcome and the event-derived ledger instead of live
/// nodes. Reboot accounting is *not* here — callers run [`note_reboot`]
/// at the right point relative to the op's events.
fn apply_outcome(
    op: &Op,
    outcome: Outcome,
    metrics: &mut ExperimentMetrics,
    obs: &Obs,
    config: &EmulationConfig,
    state: &mut CommitState,
) {
    match outcome {
        Outcome::Injected { id: None } | Outcome::Rebooted { .. } => {}
        Outcome::Injected { id: Some(id) } => {
            let OpKind::Inject {
                src_bus,
                dst_bus,
                now,
                ..
            } = &op.kind
            else {
                unreachable!("injection outcome from injection op")
            };
            let src_addr = bus_address(*src_bus);
            let dst_addr = bus_address(*dst_bus);
            metrics.record_injection(id, &src_addr, &dst_addr, *now);
            if src_bus == dst_bus {
                // Sender and destination ride the same bus today:
                // delivered on the spot with a single stored copy.
                metrics.record_delivery(id, *now, 1);
                obs.emit(|| Event::MessageDelivered {
                    replica: dst_bus.as_u64(),
                    origin: id.origin().as_u64(),
                    seq: id.seq(),
                    delay_secs: 0,
                    at_secs: now.as_secs(),
                });
            }
        }
        Outcome::Met { report, .. } => {
            let OpKind::Meet { encounter, .. } = &op.kind else {
                unreachable!("meet outcome from meet op")
            };
            let now = encounter.time;
            metrics.encounters += 1;
            metrics.transmissions += report.transmitted as u64;
            metrics.duplicates += report.duplicates as u64;
            for (receiver, ids) in [
                (encounter.a, &report.delivered_to_a),
                (encounter.b, &report.delivered_to_b),
            ] {
                if ids.is_empty() {
                    continue;
                }
                let addr = bus_address(receiver);
                for &id in ids {
                    let is_final_destination =
                        metrics.record(id).is_some_and(|rec| rec.dst == addr);
                    if is_final_destination && metrics.is_pending(id) {
                        let in_time = match config.message_lifetime {
                            None => true,
                            Some(lifetime) => metrics
                                .record(id)
                                .is_some_and(|r| now.saturating_since(r.injected_at) < lifetime),
                        };
                        if in_time {
                            let copies = state.live_copies(id);
                            let delay_secs = metrics
                                .record(id)
                                .map(|r| now.saturating_since(r.injected_at).as_secs())
                                .unwrap_or(0);
                            metrics.record_delivery(id, now, copies);
                            obs.emit(|| Event::MessageDelivered {
                                replica: receiver.as_u64(),
                                origin: id.origin().as_u64(),
                                seq: id.seq(),
                                delay_secs,
                                at_secs: now.as_secs(),
                            });
                        }
                    }
                }
            }
        }
    }
}

/// Commits one executed result from the pooled path, in global sequence
/// order: reboot bookkeeping first (it precedes the op's own events, as
/// the serial engine reboots before meeting), then the handoff marker,
/// then the op's buffered events into the ledger and out to the run
/// observer, then the outcome's metric deltas.
fn commit(
    result: ExecResult,
    metrics: &mut ExperimentMetrics,
    obs: &Obs,
    config: &EmulationConfig,
    state: &mut CommitState,
    workers: usize,
) {
    let ExecResult {
        op,
        events,
        outcome,
        ..
    } = result;
    let rebooted = matches!(
        outcome,
        Outcome::Met { rebooted: true, .. } | Outcome::Rebooted { rebooted: true }
    );
    if rebooted {
        let victim = op.victim().expect("rebooted op has a victim");
        note_reboot(victim, state, metrics);
    }
    note_handoff(&op, workers, obs);
    for event in events {
        state.apply(&event);
        obs.emit(|| event);
    }
    apply_outcome(&op, outcome, metrics, obs, config, state);
}

/// Bounded-residency state: the slot-reusing spill file, the parked
/// replicas' slots, and the reusable scratch buffers batched snapshot
/// writes stage through.
struct Residency {
    file: SpillFile,
    slots: BTreeMap<ReplicaId, SpillSlot>,
    limit: usize,
    scratch: SnapshotScratch,
    /// Victim snapshots for one spill-down, back to back; retained so a
    /// steady-state spill cycle stops allocating.
    arena: Vec<u8>,
}

impl Residency {
    fn new(path: PathBuf, limit: usize) -> Residency {
        Residency {
            file: SpillFile::create(path).expect("create spill file"),
            slots: BTreeMap::new(),
            limit,
            scratch: SnapshotScratch::new(),
            arena: Vec::new(),
        }
    }

    /// Restores `ids` (all currently spilled) with one sorted-offset
    /// batch read, freeing their slots for reuse. Unspill latency is the
    /// amortized read share plus the node's own rebuild time. Restored
    /// nodes come up wearing `wear` — the direct-commit sink on the
    /// cooperative path, disabled on the pooled path (whose workers
    /// attach their own mailbox at dispatch).
    fn unspill(
        &mut self,
        ids: &[ReplicaId],
        nodes: &mut FxMap<ReplicaId, Box<DtnNode>>,
        config: &EmulationConfig,
        obs: &Obs,
        wear: &Obs,
    ) {
        if ids.is_empty() {
            return;
        }
        let started = Instant::now();
        let slots: Vec<SpillSlot> = ids
            .iter()
            .map(|id| self.slots.remove(id).expect("node is resident or spilled"))
            .collect();
        let blobs = self.file.read_batch(&slots).expect("read spilled replicas");
        let read_share_us = started.elapsed().as_micros() as u64 / ids.len() as u64;
        for ((&id, slot), bytes) in ids.iter().zip(&slots).zip(&blobs) {
            let rebuild = Instant::now();
            let mut node = DtnNode::restore_with_policy(bytes, config.policy.build())
                .expect("spilled replica restores under the run's own policy");
            // Snapshots carry no observability or acceleration state; the
            // caller's `wear` observer goes on here, the selection modes
            // come back as on the serial reboot path.
            node.replica_mut().set_observer(wear.clone());
            node.replica_mut().set_candidate_scan(config.candidate_scan);
            node.replica_mut().set_owned_copies(config.owned_copies);
            node.set_sync_mode(config.sync_mode);
            nodes.insert(id, Box::new(node));
            let latency_us = read_share_us + rebuild.elapsed().as_micros() as u64;
            obs.emit(|| Event::ReplicaSpill {
                replica: id.as_u64(),
                bytes: slot.len() as u64,
                resident: nodes.len() as u64,
                unspill: true,
                latency_us,
                file_bytes: self.file.file_bytes(),
            });
        }
        for slot in slots {
            self.file.free(slot);
        }
    }

    /// Evicts down to the cap, Belady-style: the replica whose next
    /// windowed encounter is farthest goes first, and "not in the window
    /// at all" is farthest of all; least-recently-dispatched then lowest
    /// id break ties deterministically. `pinned` nodes — riding in
    /// deferred operations that execute next batch — are never evicted.
    /// All victims snapshot into one arena and land in one batched
    /// append.
    fn spill_down(
        &mut self,
        nodes: &mut FxMap<ReplicaId, Box<DtnNode>>,
        pinned: &FxSet<ReplicaId>,
        next_need: impl Fn(ReplicaId) -> Option<u64>,
        last_used: &FxMap<ReplicaId, u64>,
        obs: &Obs,
    ) {
        if nodes.len() <= self.limit {
            return;
        }
        let mut candidates: Vec<(u64, Reverse<u64>, Reverse<u64>)> = nodes
            .keys()
            .filter(|id| !pinned.contains(id))
            .map(|&id| {
                (
                    next_need(id).unwrap_or(u64::MAX),
                    Reverse(last_used.get(&id).copied().unwrap_or(0)),
                    Reverse(id.as_u64()),
                )
            })
            .collect();
        candidates.sort_unstable_by_key(|&c| Reverse(c));
        let excess = nodes.len() - self.limit;

        self.arena.clear();
        let mut spans: Vec<(usize, usize)> = Vec::with_capacity(excess);
        let mut evicted: Vec<(ReplicaId, u64)> = Vec::with_capacity(excess);
        for &(_, _, Reverse(raw)) in candidates.iter().take(excess) {
            let id = ReplicaId::new(raw);
            let node = nodes.remove(&id).expect("victim resident");
            let snapshot = node.snapshot_with(&mut self.scratch);
            spans.push((self.arena.len(), snapshot.len()));
            self.arena.extend_from_slice(snapshot);
            evicted.push((id, nodes.len() as u64));
        }
        let blobs: Vec<&[u8]> = spans.iter().map(|&(o, l)| &self.arena[o..o + l]).collect();
        let slots = self
            .file
            .append_batch(&blobs)
            .expect("append to spill file");
        let file_bytes = self.file.file_bytes();
        for ((id, resident), slot) in evicted.into_iter().zip(slots) {
            let bytes = slot.len() as u64;
            self.slots.insert(id, slot);
            obs.emit(|| Event::ReplicaSpill {
                replica: id.as_u64(),
                bytes,
                resident,
                unspill: false,
                latency_us: 0,
                file_bytes,
            });
        }
    }
}

/// Restores soon-needed spilled replicas while a dispatched batch is
/// still executing on the workers, so spill reads overlap compute.
/// Deferred operations' nodes come first (they run next batch), then the
/// lookahead window in schedule order; the budget keeps the resident set
/// — counting the nodes riding in flight — under the cap.
#[allow(clippy::too_many_arguments)]
fn prefetch_upcoming<I: Iterator<Item = Encounter>>(
    res: &mut Residency,
    nodes: &mut FxMap<ReplicaId, Box<DtnNode>>,
    in_flight: usize,
    deferred: &VecDeque<Op>,
    window: &Lookahead<I>,
    config: &EmulationConfig,
    obs: &Obs,
    wear: &Obs,
) {
    let budget = res.limit.saturating_sub(nodes.len() + in_flight);
    if budget == 0 || res.slots.is_empty() {
        return;
    }
    /// Window entries examined per batch: far enough to keep reads ahead
    /// of the schedule, bounded so scanning stays off the critical path.
    const PREFETCH_SCAN: usize = 2048;
    let mut wanted: Vec<ReplicaId> = Vec::new();
    let mut seen: FxSet<ReplicaId> = FxSet::default();
    'scan: {
        for op in deferred {
            let (a, b) = op.node_ids();
            for id in [Some(a), b].into_iter().flatten() {
                if seen.insert(id) && res.slots.contains_key(&id) {
                    wanted.push(id);
                    if wanted.len() == budget {
                        break 'scan;
                    }
                }
            }
        }
        for enc in window.upcoming().take(PREFETCH_SCAN) {
            for id in [enc.a, enc.b] {
                if seen.insert(id) && res.slots.contains_key(&id) {
                    wanted.push(id);
                    if wanted.len() == budget {
                        break 'scan;
                    }
                }
            }
        }
    }
    res.unspill(&wanted, nodes, config, obs, wear);
}

impl<'a> Emulation<'a> {
    /// Runs the schedule on the sharded engine. Dispatched to by
    /// [`Emulation::run_into_parts`] whenever a scale knob is set; the
    /// returned metrics equal a serial run's exactly.
    pub(crate) fn run_sharded(self) -> (ExperimentMetrics, BTreeMap<ReplicaId, DtnNode>) {
        let Emulation {
            source,
            workload,
            config,
            nodes,
            assignment,
            mut metrics,
            obs,
            rollup,
        } = self;
        let workers = config.shards.unwrap_or(1).max(1);
        // Threads are sized to the host, not to the shard count: on a
        // single-core machine a pool only adds hand-off latency, so zero
        // threads means the shards run cooperatively on the main thread.
        let threads = match config.exec_threads {
            Some(n) => n.min(workers),
            None => {
                let cores = std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1);
                if cores <= 1 || workers == 1 {
                    0
                } else {
                    workers
                }
            }
        };

        // The working map boxes every node: a `DtnNode` is ~1 KiB inline,
        // and the hot loop moves each op's nodes out and back four times —
        // boxed, those moves are pointer-sized. Workers attach their own
        // mailbox at dispatch; nothing may fire on the run observer from
        // between batches.
        let mut nodes: FxMap<ReplicaId, Box<DtnNode>> = nodes
            .into_iter()
            .map(|(id, node)| (id, Box::new(node)))
            .collect();
        for node in nodes.values_mut() {
            node.replica_mut().set_observer(Obs::none());
        }

        // Disk plumbing: a spill file when residency is capped, a temp
        // spool when an in-memory trace should stream from disk. Both
        // remove themselves on drop (the spill file via its own `Drop`).
        let scratch_dir = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let mut residency = config.resident_limit.map(|limit| {
            std::fs::create_dir_all(&scratch_dir).expect("create spill directory");
            Residency::new(unique_path(&scratch_dir, "spill"), limit)
        });
        let mut last_used: FxMap<ReplicaId, u64> = FxMap::default();

        let temp_spool = match (source, config.stream_encounters) {
            (TraceSource::Memory(trace), true) => {
                std::fs::create_dir_all(&scratch_dir).expect("create spool directory");
                let path = unique_path(&scratch_dir, "spool");
                let spooled = traces::SpooledTrace::spool(trace, path).expect("spool trace");
                let guard = RemoveOnDrop(spooled.path().to_path_buf());
                Some((spooled, guard))
            }
            _ => None,
        };
        let encounters: Box<dyn Iterator<Item = Encounter> + '_> = match (&temp_spool, source) {
            (Some((spooled, _)), _) => Box::new(spooled.iter().expect("open temp encounter spool")),
            (None, TraceSource::Spooled(trace)) => {
                Box::new(trace.iter().expect("open encounter spool"))
            }
            (None, TraceSource::Memory(trace)) => Box::new(trace.iter().copied()),
        };

        // Without a residency cap the window degenerates to plain
        // peeking; with one, see far enough past the hot set for Belady
        // eviction and prefetch to bite.
        let window = config.lookahead.unwrap_or(match config.resident_limit {
            Some(limit) => (limit * 8).clamp(1024, 131_072),
            None => 1,
        });
        let mut stream = OpStream {
            injections: workload.events().iter().peekable(),
            encounters: Lookahead::new(encounters, window),
            fault_rng: StdRng::seed_from_u64(config.fault_seed),
            drop_rate: config.encounter_drop_rate,
            crash_rate: config.crash_rate,
            assignment: &assignment,
            next_seq: 0,
        };

        let mut state = CommitState::default();

        if threads == 0 {
            // Cooperative path: no pool, no batches, no buffering.
            // Operations execute in sequence order and commit on the
            // spot; every node permanently wears the direct-commit sink,
            // so events reach the ledger and the run observer the moment
            // they are emitted. Shard handoff accounting is untouched —
            // a shard is a property of ids, not of threads.
            let sink = Arc::new(DirectSink {
                state: Mutex::new(std::mem::take(&mut state)),
                obs: obs.clone(),
            });
            let sink_obs = Obs::new(sink.clone());
            for node in nodes.values_mut() {
                node.replica_mut().set_observer(sink_obs.clone());
            }
            // Residency maintenance cadence: eviction and prefetch run
            // every this many operations — often enough that the
            // resident set never drifts far past the cap, rare enough
            // that the Belady scan amortizes away.
            const MAINTENANCE_OPS: u64 = 64;
            let no_deferred: VecDeque<Op> = VecDeque::new();
            let mut ops_done: u64 = 0;
            while let Some(op) = stream.next_op() {
                if let Some(res) = residency.as_mut() {
                    let (a, b) = op.node_ids();
                    let mut needed: Vec<ReplicaId> = Vec::new();
                    for id in [Some(a), b].into_iter().flatten() {
                        last_used.insert(id, op.seq);
                        if res.slots.contains_key(&id) {
                            needed.push(id);
                        }
                    }
                    res.unspill(&needed, &mut nodes, &config, &obs, &sink_obs);
                }
                note_handoff(&op, workers, &obs);
                let outcome = match &op.kind {
                    OpKind::Inject {
                        src_user,
                        dst_user,
                        src_bus,
                        dst_bus,
                        now,
                    } => {
                        let node = nodes.get_mut(src_bus).expect("resident node");
                        let src_addr = bus_address(*src_bus);
                        let dst_addr = bus_address(*dst_bus);
                        let payload = format!("{src_user}->{dst_user}").into_bytes();
                        let sent = match config.message_lifetime {
                            Some(lifetime) => dtn::messaging::send_message_with_lifetime(
                                node.replica_mut(),
                                &src_addr,
                                &dst_addr,
                                payload,
                                *now,
                                lifetime,
                            ),
                            None => node.send_from(&src_addr, &dst_addr, payload, *now),
                        };
                        Outcome::Injected { id: sent.ok() }
                    }
                    OpKind::Meet { encounter, victim } => {
                        if let Some(victim) = victim {
                            let node = nodes.get_mut(victim).expect("victim resident");
                            if reboot_in_place(node, &sink_obs, &config) {
                                // Between the reboot and the meeting,
                                // exactly where the serial engine's
                                // bookkeeping lands: pre-reboot evictions
                                // are wiped before the meeting can add
                                // fresh ones.
                                note_reboot(*victim, &mut sink.state.lock(), &mut metrics);
                            }
                        }
                        let budget = match config.messages_per_contact_minute {
                            Some(rate) if encounter.duration.as_secs() > 0 => {
                                let allowance =
                                    (encounter.duration.as_secs() as f64 / 60.0 * rate).ceil();
                                EncounterBudget::max_messages((allowance as usize).max(1))
                            }
                            _ => config.budget,
                        };
                        // A self-encounter is scanned as `OpKind::Reboot`,
                        // so the endpoints are always distinct here.
                        let [first, second] = nodes
                            .get_disjoint_mut([&encounter.a, &encounter.b])
                            .map(|n| n.expect("resident node"));
                        let report = first.encounter(second, encounter.time, budget);
                        // Reboot bookkeeping already happened in place.
                        Outcome::Met {
                            report,
                            rebooted: false,
                        }
                    }
                    OpKind::Reboot { victim } => {
                        let node = nodes.get_mut(victim).expect("resident node");
                        if reboot_in_place(node, &sink_obs, &config) {
                            note_reboot(*victim, &mut sink.state.lock(), &mut metrics);
                        }
                        Outcome::Rebooted { rebooted: false }
                    }
                };
                apply_outcome(
                    &op,
                    outcome,
                    &mut metrics,
                    &obs,
                    &config,
                    &mut sink.state.lock(),
                );
                ops_done += 1;
                if ops_done.is_multiple_of(MAINTENANCE_OPS) {
                    if let Some(res) = residency.as_mut() {
                        res.spill_down(
                            &mut nodes,
                            &FxSet::default(),
                            |id| stream.encounters.next_need(id),
                            &last_used,
                            &obs,
                        );
                        prefetch_upcoming(
                            res,
                            &mut nodes,
                            0,
                            &no_deferred,
                            &stream.encounters,
                            &config,
                            &obs,
                            &sink_obs,
                        );
                    }
                }
            }
            state = std::mem::take(&mut *sink.state.lock());
        } else {
            let mut deferred: VecDeque<Op> = VecDeque::new();
            // Keyed probes on `next_commit` only — no order needed, and a
            // B-tree would shift 200-byte results around on every insert.
            let mut pending: FxMap<u64, ExecResult> = FxMap::default();
            let mut next_commit: u64 = 0;
            let max_batch = workers * 32;
            // Conflicts concentrate on hub nodes; past this many parked
            // ops, scanning further mostly grows the park, so cut the
            // batch here.
            const MAX_DEFERRED: usize = 64;
            let resident_cap = config.resident_limit;
            let mut batch_no: u64 = 0;
            let no_wear = Obs::none();

            std::thread::scope(|scope| {
                let (result_tx, result_rx) = mpsc::channel::<Vec<ExecResult>>();
                let mut job_txs: Vec<mpsc::Sender<Vec<Job>>> = Vec::with_capacity(threads);
                for _ in 0..threads {
                    let (tx, rx) = mpsc::channel::<Vec<Job>>();
                    job_txs.push(tx);
                    let worker_config = config.clone();
                    let results = result_tx.clone();
                    scope.spawn(move || {
                        let buffer = Arc::new(EventBuffer::default());
                        let mailbox = Obs::new(buffer.clone());
                        for chunk in rx {
                            let out: Vec<ExecResult> = chunk
                                .into_iter()
                                .map(|job| execute(job, &worker_config, &buffer, &mailbox))
                                .collect();
                            if results.send(out).is_err() {
                                break;
                            }
                        }
                    });
                }
                let pool = WorkerPool {
                    jobs: job_txs,
                    results: result_rx,
                };

                loop {
                    // Assemble one conflict-free batch: deferred ops
                    // first (in order), then fresh scans. A
                    // deferred/conflicting op blocks its nodes so
                    // everything behind it on those nodes queues up
                    // behind it — per-node order stays serial.
                    let mut batch: Vec<Op> = Vec::new();
                    let mut busy: FxSet<ReplicaId> = FxSet::default();
                    let mut blocked: FxSet<ReplicaId> = FxSet::default();
                    let mut parked: VecDeque<Op> = VecDeque::new();
                    let place = |op: Op,
                                 batch: &mut Vec<Op>,
                                 busy: &mut FxSet<ReplicaId>,
                                 blocked: &mut FxSet<ReplicaId>,
                                 parked: &mut VecDeque<Op>| {
                        let (a, b) = op.node_ids();
                        let clear = |set: &FxSet<ReplicaId>, id: ReplicaId| !set.contains(&id);
                        let free = |id: ReplicaId| clear(busy, id) && clear(blocked, id);
                        let placeable = free(a)
                            && match b {
                                Some(b) => free(b),
                                None => true,
                            };
                        if placeable {
                            busy.insert(a);
                            if let Some(b) = b {
                                busy.insert(b);
                            }
                            batch.push(op);
                        } else {
                            blocked.insert(a);
                            if let Some(b) = b {
                                blocked.insert(b);
                            }
                            parked.push_back(op);
                        }
                    };
                    for op in deferred.drain(..) {
                        place(op, &mut batch, &mut busy, &mut blocked, &mut parked);
                    }
                    while batch.len() < max_batch && parked.len() < MAX_DEFERRED {
                        // Under a residency cap, stop admitting fresh
                        // ops once the batch's working set fills it — a
                        // wider batch would only buy unspill-then-respill
                        // churn.
                        if let Some(limit) = resident_cap {
                            if !batch.is_empty() && busy.len() + 2 > limit {
                                break;
                            }
                        }
                        let Some(op) = stream.next_op() else { break };
                        place(op, &mut batch, &mut busy, &mut blocked, &mut parked);
                    }
                    deferred = parked;
                    if batch.is_empty() {
                        // The first deferred op is always placeable, so
                        // an empty batch means the schedule is exhausted.
                        debug_assert!(deferred.is_empty());
                        break;
                    }
                    batch_no += 1;

                    // Everything the batch touches comes home in one
                    // batched read before dispatch.
                    if let Some(res) = residency.as_mut() {
                        let mut needed: Vec<ReplicaId> = Vec::new();
                        for op in &batch {
                            let (a, b) = op.node_ids();
                            for id in [Some(a), b].into_iter().flatten() {
                                if res.slots.contains_key(&id) {
                                    needed.push(id);
                                }
                            }
                        }
                        res.unspill(&needed, &mut nodes, &config, &obs, &no_wear);
                    }

                    // Chunk the batch — each op executes on the pool
                    // thread its first node's shard maps to, carrying
                    // its owned nodes along — and dispatch one chunk per
                    // thread.
                    let mut in_flight = 0usize;
                    let mut chunks: Vec<Vec<Job>> = (0..threads).map(|_| Vec::new()).collect();
                    let track_recency = residency.is_some();
                    for op in batch {
                        let (a, b) = op.node_ids();
                        let thread = shard_of(a, workers) % threads;
                        let mut op_nodes = Vec::with_capacity(2);
                        for id in [Some(a), b].into_iter().flatten() {
                            if track_recency {
                                last_used.insert(id, batch_no);
                            }
                            let node = nodes.remove(&id).expect("resident node");
                            op_nodes.push((id, node));
                            in_flight += 1;
                        }
                        chunks[thread].push(Job {
                            op,
                            nodes: op_nodes,
                        });
                    }
                    let mut outstanding = 0;
                    for (thread, chunk) in chunks.into_iter().enumerate() {
                        if chunk.is_empty() {
                            continue;
                        }
                        pool.jobs[thread].send(chunk).expect("worker thread alive");
                        outstanding += 1;
                    }

                    // The pool is busy: overlap the next window's spill
                    // reads with its compute.
                    if let Some(res) = residency.as_mut() {
                        prefetch_upcoming(
                            res,
                            &mut nodes,
                            in_flight,
                            &deferred,
                            &stream.encounters,
                            &config,
                            &obs,
                            &no_wear,
                        );
                    }
                    for _ in 0..outstanding {
                        let results = pool.results.recv().expect("worker results");
                        for mut result in results {
                            for (id, node) in result.nodes.drain(..) {
                                nodes.insert(id, node);
                            }
                            pending.insert(result.op.seq, result);
                        }
                    }

                    // Commit strictly in global sequence order. Ops
                    // still deferred stall later commits until they
                    // execute.
                    while let Some(result) = pending.remove(&next_commit) {
                        commit(result, &mut metrics, &obs, &config, &mut state, workers);
                        next_commit += 1;
                    }

                    // Spill back down to the cap, farthest next
                    // encounter first, never a node the deferred park
                    // runs next batch.
                    if let Some(res) = residency.as_mut() {
                        let mut pinned: FxSet<ReplicaId> = FxSet::default();
                        for op in &deferred {
                            let (a, b) = op.node_ids();
                            pinned.insert(a);
                            if let Some(b) = b {
                                pinned.insert(b);
                            }
                        }
                        res.spill_down(
                            &mut nodes,
                            &pinned,
                            |id| stream.encounters.next_need(id),
                            &last_used,
                            &obs,
                        );
                    }
                }
                drop(pool);
            });
            debug_assert!(pending.is_empty(), "all dispatched ops commit");
        }

        // Bring every spilled replica home for final accounting; the
        // spill file and temp spool delete themselves on drop, panics
        // included.
        if let Some(res) = residency.as_mut() {
            let parked: Vec<ReplicaId> = res.slots.keys().copied().collect();
            res.unspill(&parked, &mut nodes, &config, &obs, &Obs::none());
        }

        // Final accounting, identical to the serial engine — except
        // evictions, which come from committed events because spilling
        // (like rebooting) discards `ReplicaStats`.
        let nodes: BTreeMap<ReplicaId, DtnNode> =
            nodes.into_iter().map(|(id, node)| (id, *node)).collect();
        let mut copies: BTreeMap<ItemId, usize> = BTreeMap::new();
        for node in nodes.values() {
            for item in node.replica().iter_items() {
                if !item.is_deleted() {
                    *copies.entry(item.id()).or_insert(0) += 1;
                }
            }
        }
        let ids: Vec<ItemId> = metrics.records().map(|r| r.id).collect();
        for id in ids {
            let count = copies.get(&id).copied().unwrap_or(0);
            metrics.record_final_copies(id, count);
        }
        metrics.evictions = state.total_evictions - state.lost_evictions;
        metrics.set_daily_stats(rollup.snapshot());
        (metrics, nodes)
    }
}
