//! Experiment metrics: delays, delivery rates, and storage accounting.

use std::collections::BTreeMap;

use obs::{Event, Observer};
use parking_lot::Mutex;
use pfr::{ItemId, SimDuration, SimTime};

/// The lifecycle record of one message in an experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MessageRecord {
    /// The message's item id.
    pub id: ItemId,
    /// Sender address (bus).
    pub src: String,
    /// Destination address (bus).
    pub dst: String,
    /// When it was injected.
    pub injected_at: SimTime,
    /// When it first reached its destination (`None` = not yet delivered).
    pub delivered_at: Option<SimTime>,
    /// Copies stored anywhere in the network at the moment of delivery.
    pub copies_at_delivery: Option<usize>,
    /// Copies stored anywhere in the network when the experiment ended.
    pub copies_at_end: usize,
}

impl MessageRecord {
    /// The delivery delay, if delivered.
    pub fn delay(&self) -> Option<SimDuration> {
        self.delivered_at
            .map(|at| at.saturating_since(self.injected_at))
    }
}

/// Per-day activity counters: the time-series view of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct DayStats {
    /// Encounters processed this day.
    pub encounters: u64,
    /// Items transmitted this day.
    pub transmissions: u64,
    /// Messages injected this day.
    pub injections: u64,
    /// First-time deliveries this day.
    pub deliveries: u64,
}

/// Aggregated metrics for one emulation run.
///
/// Implements `PartialEq`/`Eq` so determinism checks (parallel sweep vs
/// serial baseline, index vs scan candidate selection) can compare whole
/// runs structurally.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExperimentMetrics {
    records: BTreeMap<ItemId, MessageRecord>,
    daily: BTreeMap<u64, DayStats>,
    /// Total items transmitted over all syncs (network traffic).
    pub transmissions: u64,
    /// Total encounters processed.
    pub encounters: u64,
    /// Duplicate receipts observed (must stay 0).
    pub duplicates: u64,
    /// Relay evictions under storage constraints.
    pub evictions: u64,
    /// Simulated node reboots (crash-injection runs).
    pub reboots: u64,
}

impl ExperimentMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        ExperimentMetrics::default()
    }

    /// Records one processed encounter for the per-day time series.
    pub fn record_encounter_activity(&mut self, at: SimTime, transmitted: usize) {
        let day = self.daily.entry(at.day()).or_default();
        day.encounters += 1;
        day.transmissions += transmitted as u64;
    }

    /// Per-day activity, keyed by day number.
    pub fn daily_stats(&self) -> &BTreeMap<u64, DayStats> {
        &self.daily
    }

    /// Replaces the per-day time series wholesale. The emulation engine
    /// uses this to install the [`DayRollup`] aggregated from the event
    /// stream at the end of a run.
    pub fn set_daily_stats(&mut self, daily: BTreeMap<u64, DayStats>) {
        self.daily = daily;
    }

    /// Registers an injected message.
    pub fn record_injection(&mut self, id: ItemId, src: &str, dst: &str, at: SimTime) {
        self.daily.entry(at.day()).or_default().injections += 1;
        self.records.insert(
            id,
            MessageRecord {
                id,
                src: src.to_owned(),
                dst: dst.to_owned(),
                injected_at: at,
                delivered_at: None,
                copies_at_delivery: None,
                copies_at_end: 0,
            },
        );
    }

    /// Registers the first delivery of a message. Later deliveries of the
    /// same id (e.g. after an update) are ignored.
    pub fn record_delivery(&mut self, id: ItemId, at: SimTime, copies_in_network: usize) {
        if let Some(rec) = self.records.get_mut(&id) {
            if rec.delivered_at.is_none() {
                rec.delivered_at = Some(at);
                rec.copies_at_delivery = Some(copies_in_network);
                self.daily.entry(at.day()).or_default().deliveries += 1;
            }
        }
    }

    /// Is this id a tracked message, still undelivered?
    pub fn is_pending(&self, id: ItemId) -> bool {
        self.records
            .get(&id)
            .is_some_and(|r| r.delivered_at.is_none())
    }

    /// Records the end-of-run copy count for a message.
    pub fn record_final_copies(&mut self, id: ItemId, copies: usize) {
        if let Some(rec) = self.records.get_mut(&id) {
            rec.copies_at_end = copies;
        }
    }

    /// The record of one message.
    pub fn record(&self, id: ItemId) -> Option<&MessageRecord> {
        self.records.get(&id)
    }

    /// All message records.
    pub fn records(&self) -> impl Iterator<Item = &MessageRecord> {
        self.records.values()
    }

    /// Number of injected messages.
    pub fn injected(&self) -> usize {
        self.records.len()
    }

    /// Number of delivered messages.
    pub fn delivered(&self) -> usize {
        self.records
            .values()
            .filter(|r| r.delivered_at.is_some())
            .count()
    }

    /// Fraction of messages delivered (0 when none injected).
    pub fn delivery_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.delivered() as f64 / self.records.len() as f64
    }

    /// Mean delivery delay over *delivered* messages.
    pub fn mean_delay(&self) -> Option<SimDuration> {
        let delays: Vec<u64> = self
            .records
            .values()
            .filter_map(MessageRecord::delay)
            .map(|d| d.as_secs())
            .collect();
        if delays.is_empty() {
            return None;
        }
        Some(SimDuration::from_secs(
            delays.iter().sum::<u64>() / delays.len() as u64,
        ))
    }

    /// Mean delay counting undelivered messages as delivered at `horizon`
    /// — the paper's "counting the delivery time of all messages" metric
    /// for runs where some messages are still in flight at the end.
    pub fn mean_delay_with_horizon(&self, horizon: SimTime) -> Option<SimDuration> {
        if self.records.is_empty() {
            return None;
        }
        let total: u64 = self
            .records
            .values()
            .map(|r| {
                r.delay()
                    .unwrap_or_else(|| horizon.saturating_since(r.injected_at))
                    .as_secs()
            })
            .sum();
        Some(SimDuration::from_secs(total / self.records.len() as u64))
    }

    /// Fraction of all messages delivered within `window` of injection.
    pub fn delivered_within(&self, window: SimDuration) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let hits = self
            .records
            .values()
            .filter(|r| r.delay().is_some_and(|d| d <= window))
            .count();
        hits as f64 / self.records.len() as f64
    }

    /// The worst delivery delay among delivered messages.
    pub fn max_delay(&self) -> Option<SimDuration> {
        self.records.values().filter_map(MessageRecord::delay).max()
    }

    /// Cumulative distribution points: for each multiple of `step` up to
    /// `max`, the percentage of all messages delivered within that delay.
    pub fn delay_cdf(&self, step: SimDuration, max: SimDuration) -> Vec<CdfPoint> {
        let mut points = Vec::new();
        let mut t = step;
        while t <= max {
            points.push(CdfPoint {
                delay: t,
                delivered_pct: self.delivered_within(t) * 100.0,
            });
            t = t + step;
        }
        points
    }

    /// Mean copies stored per message at the moment of its delivery
    /// (undelivered messages excluded).
    pub fn mean_copies_at_delivery(&self) -> Option<f64> {
        let counts: Vec<usize> = self
            .records
            .values()
            .filter_map(|r| r.copies_at_delivery)
            .collect();
        if counts.is_empty() {
            return None;
        }
        Some(counts.iter().sum::<usize>() as f64 / counts.len() as f64)
    }

    /// Mean copies stored per message at the end of the experiment.
    pub fn mean_copies_at_end(&self) -> Option<f64> {
        if self.records.is_empty() {
            return None;
        }
        Some(
            self.records
                .values()
                .map(|r| r.copies_at_end)
                .sum::<usize>() as f64
                / self.records.len() as f64,
        )
    }
}

/// Builds the per-day [`DayStats`] time series from the event stream.
///
/// The emulation engine attaches one of these to every node's replica (in
/// addition to any user-supplied observer), so the daily rollup is a pure
/// function of the events the run emitted rather than a parallel set of
/// ad-hoc counters.
#[derive(Debug, Default)]
pub struct DayRollup {
    daily: Mutex<BTreeMap<u64, DayStats>>,
}

impl DayRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        DayRollup::default()
    }

    /// The accumulated per-day time series.
    pub fn snapshot(&self) -> BTreeMap<u64, DayStats> {
        self.daily.lock().clone()
    }
}

impl Observer for DayRollup {
    fn on_event(&self, event: &Event) {
        match event {
            Event::MessageInjected { at_secs, .. } => {
                let mut daily = self.daily.lock();
                daily.entry(at_secs / 86_400).or_default().injections += 1;
            }
            Event::MessageDelivered { at_secs, .. } => {
                let mut daily = self.daily.lock();
                daily.entry(at_secs / 86_400).or_default().deliveries += 1;
            }
            Event::EncounterCompleted {
                transmitted,
                at_secs,
                ..
            } => {
                let mut daily = self.daily.lock();
                let day = daily.entry(at_secs / 86_400).or_default();
                day.encounters += 1;
                day.transmissions += transmitted;
            }
            _ => {}
        }
    }
}

/// One point of a delay CDF: the share of messages delivered within
/// `delay`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CdfPoint {
    /// Delay bound.
    pub delay: SimDuration,
    /// Percent of all injected messages delivered within the bound.
    pub delivered_pct: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::ReplicaId;

    fn id(n: u64) -> ItemId {
        ItemId::new(ReplicaId::new(1), n)
    }

    fn metrics_with_three() -> ExperimentMetrics {
        let mut m = ExperimentMetrics::new();
        for n in 1..=3 {
            m.record_injection(id(n), "a", "b", SimTime::from_secs(0));
        }
        m.record_delivery(id(1), SimTime::from_hms(0, 2, 0, 0), 3); // 2h
        m.record_delivery(id(2), SimTime::from_hms(1, 0, 0, 0), 5); // 24h
        m
    }

    #[test]
    fn counts_and_rates() {
        let m = metrics_with_three();
        assert_eq!(m.injected(), 3);
        assert_eq!(m.delivered(), 2);
        assert!((m.delivery_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!(m.is_pending(id(3)));
        assert!(!m.is_pending(id(1)));
        assert!(!m.is_pending(id(99)), "unknown ids are not pending");
    }

    #[test]
    fn delay_statistics() {
        let m = metrics_with_three();
        assert_eq!(m.mean_delay(), Some(SimDuration::from_hours(13)));
        assert_eq!(m.max_delay(), Some(SimDuration::from_hours(24)));
        // Horizon counts the undelivered third message as 48h.
        let with_horizon = m
            .mean_delay_with_horizon(SimTime::from_hms(2, 0, 0, 0))
            .unwrap();
        assert_eq!(
            with_horizon,
            SimDuration::from_secs((2 + 24 + 48) * 3600 / 3)
        );
    }

    #[test]
    fn delivered_within_windows() {
        let m = metrics_with_three();
        assert!((m.delivered_within(SimDuration::from_hours(12)) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.delivered_within(SimDuration::from_hours(24)) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.delivered_within(SimDuration::from_hours(1)), 0.0);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let m = metrics_with_three();
        let cdf = m.delay_cdf(SimDuration::from_hours(6), SimDuration::from_hours(30));
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].delivered_pct <= w[1].delivered_pct);
        }
        assert!((cdf.last().unwrap().delivered_pct - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn copy_accounting() {
        let mut m = metrics_with_three();
        m.record_final_copies(id(1), 4);
        m.record_final_copies(id(2), 6);
        m.record_final_copies(id(3), 2);
        assert_eq!(m.mean_copies_at_delivery(), Some(4.0));
        assert_eq!(m.mean_copies_at_end(), Some(4.0));
    }

    #[test]
    fn second_delivery_is_ignored() {
        let mut m = metrics_with_three();
        m.record_delivery(id(1), SimTime::from_hms(5, 0, 0, 0), 99);
        let rec = m.record(id(1)).unwrap();
        assert_eq!(rec.delivered_at, Some(SimTime::from_hms(0, 2, 0, 0)));
        assert_eq!(rec.copies_at_delivery, Some(3));
    }

    #[test]
    fn daily_stats_accumulate() {
        let mut m = ExperimentMetrics::new();
        m.record_injection(id(1), "a", "b", SimTime::from_hms(0, 9, 0, 0));
        m.record_injection(id(2), "a", "b", SimTime::from_hms(1, 9, 0, 0));
        m.record_encounter_activity(SimTime::from_hms(0, 10, 0, 0), 3);
        m.record_encounter_activity(SimTime::from_hms(0, 11, 0, 0), 2);
        m.record_delivery(id(1), SimTime::from_hms(1, 8, 0, 0), 2);
        // Second delivery of the same id must not double-count.
        m.record_delivery(id(1), SimTime::from_hms(2, 8, 0, 0), 2);

        let daily = m.daily_stats();
        assert_eq!(daily[&0].injections, 1);
        assert_eq!(daily[&0].encounters, 2);
        assert_eq!(daily[&0].transmissions, 5);
        assert_eq!(daily[&0].deliveries, 0);
        assert_eq!(daily[&1].injections, 1);
        assert_eq!(daily[&1].deliveries, 1);
        assert!(!daily.contains_key(&2));
    }

    #[test]
    fn empty_metrics_are_well_behaved() {
        let m = ExperimentMetrics::new();
        assert_eq!(m.delivery_rate(), 0.0);
        assert_eq!(m.mean_delay(), None);
        assert_eq!(m.mean_copies_at_delivery(), None);
        assert_eq!(m.mean_copies_at_end(), None);
        assert_eq!(m.delivered_within(SimDuration::from_hours(1)), 0.0);
        assert_eq!(m.mean_delay_with_horizon(SimTime::ZERO), None);
    }
}
