//! Synchronization topologies and anti-entropy convergence.
//!
//! "PPR systems are designed to be topology-independent" (paper §I): any
//! connected pattern of pairwise synchronizations eventually reaches
//! consistency — the *shape* of the pattern only changes how fast. This
//! module provides canonical sync topologies and a convergence harness
//! measuring how many all-pairs rounds each needs, which the
//! `anti_entropy_topologies` bench turns into a table.

use pfr::{sync, AttributeMap, Filter, Replica, ReplicaId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A static pattern of pairwise synchronizations, executed in rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Every node syncs with its successor in a cycle.
    Ring,
    /// Every node syncs with node 0 (a hub-and-spoke tree of depth 1).
    Star,
    /// Node i syncs with node i+1 (a path; the worst connected diameter).
    Chain,
    /// Every ordered pair syncs every round.
    FullMesh,
    /// Each round, every node syncs with one uniformly random partner
    /// (classic randomized gossip).
    RandomGossip {
        /// RNG seed for partner selection.
        seed: u64,
    },
    /// A k-ary tree: each node syncs with its parent.
    Tree {
        /// Children per node (>= 1).
        fanout: usize,
    },
}

impl Topology {
    /// The unordered sync pairs of one round over `n` nodes. Each pair is
    /// synchronized in both directions by the harness.
    pub fn round_pairs(&self, n: usize, round: u64) -> Vec<(usize, usize)> {
        if n < 2 {
            return Vec::new();
        }
        match self {
            Topology::Ring => (0..n).map(|i| (i, (i + 1) % n)).collect(),
            Topology::Star => (1..n).map(|i| (0, i)).collect(),
            Topology::Chain => (0..n - 1).map(|i| (i, i + 1)).collect(),
            Topology::FullMesh => {
                let mut pairs = Vec::new();
                for i in 0..n {
                    for j in i + 1..n {
                        pairs.push((i, j));
                    }
                }
                pairs
            }
            Topology::RandomGossip { seed } => {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(round));
                (0..n)
                    .map(|i| {
                        let mut j = rng.gen_range(0..n - 1);
                        if j >= i {
                            j += 1;
                        }
                        (i.min(j), i.max(j))
                    })
                    .collect()
            }
            Topology::Tree { fanout } => {
                let fanout = (*fanout).max(1);
                (1..n).map(|i| ((i - 1) / fanout, i)).collect()
            }
        }
    }

    /// Display name.
    pub fn label(&self) -> String {
        match self {
            Topology::Ring => "ring".to_string(),
            Topology::Star => "star".to_string(),
            Topology::Chain => "chain".to_string(),
            Topology::FullMesh => "full-mesh".to_string(),
            Topology::RandomGossip { .. } => "random-gossip".to_string(),
            Topology::Tree { fanout } => format!("tree(k={fanout})"),
        }
    }
}

/// The result of one convergence run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Convergence {
    /// Rounds executed until every replica held every item.
    pub rounds: u64,
    /// Total items transmitted across all syncs.
    pub transmissions: u64,
}

/// Runs anti-entropy over `n` full replicas (filter `All`), each seeded
/// with one unique item, until convergence or `max_rounds`.
///
/// Returns `None` if the topology failed to converge in time (it never
/// does for connected topologies; the bound guards degenerate inputs).
pub fn rounds_to_convergence(
    n: usize,
    topology: &Topology,
    max_rounds: u64,
) -> Option<Convergence> {
    let mut replicas: Vec<Replica> = (0..n)
        .map(|i| Replica::new(ReplicaId::new(i as u64 + 1), Filter::All))
        .collect();
    for (i, replica) in replicas.iter_mut().enumerate() {
        let mut attrs = AttributeMap::new();
        attrs.set("origin", i as i64);
        replica.insert(attrs, vec![i as u8]).expect("seed item");
    }

    let converged = |replicas: &[Replica]| replicas.iter().all(|r| r.item_count() == n);
    let mut transmissions = 0u64;
    for round in 0..max_rounds {
        if converged(&replicas) {
            return Some(Convergence {
                rounds: round,
                transmissions,
            });
        }
        for (a, b) in topology.round_pairs(n, round) {
            if a == b {
                continue;
            }
            // Both directions run regardless of order.
            let (a, b) = (a.min(b), a.max(b));
            let (left, right) = replicas.split_at_mut(b);
            let (ra, rb) = (&mut left[a], &mut right[0]);
            let now = SimTime::from_secs(round * 100_000 + (a * n + b) as u64);
            transmissions += sync::sync_once(ra, rb, now).transmitted as u64;
            transmissions += sync::sync_once(rb, ra, now).transmitted as u64;
        }
    }
    converged(&replicas).then_some(Convergence {
        rounds: max_rounds,
        transmissions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 16;

    #[test]
    fn every_connected_topology_converges() {
        for topology in [
            Topology::Ring,
            Topology::Star,
            Topology::Chain,
            Topology::FullMesh,
            Topology::RandomGossip { seed: 7 },
            Topology::Tree { fanout: 2 },
        ] {
            let result = rounds_to_convergence(N, &topology, 64)
                .unwrap_or_else(|| panic!("{} did not converge", topology.label()));
            assert!(result.rounds <= 64);
            // Convergence floor: n*(n-1) item receipts are necessary.
            assert!(result.transmissions >= (N * (N - 1)) as u64);
        }
    }

    #[test]
    fn star_converges_in_two_rounds() {
        let result = rounds_to_convergence(N, &Topology::Star, 16).unwrap();
        assert_eq!(result.rounds, 2, "spokes->hub then hub->spokes");
    }

    #[test]
    fn full_mesh_converges_fastest() {
        let mesh = rounds_to_convergence(N, &Topology::FullMesh, 16).unwrap();
        let chain = rounds_to_convergence(N, &Topology::Chain, 64).unwrap();
        assert!(mesh.rounds <= 2);
        assert!(chain.rounds > mesh.rounds, "a path needs more rounds");
    }

    #[test]
    fn chain_needs_diameter_rounds_but_not_more() {
        // One forward+backward sweep per round: information travels the
        // full path quickly but not instantly.
        let result = rounds_to_convergence(8, &Topology::Chain, 64).unwrap();
        assert!((2..=8).contains(&result.rounds), "got {}", result.rounds);
    }

    #[test]
    fn gossip_is_logarithmic_ish() {
        let result = rounds_to_convergence(64, &Topology::RandomGossip { seed: 3 }, 64).unwrap();
        assert!(
            result.rounds <= 16,
            "random gossip over 64 nodes took {} rounds",
            result.rounds
        );
    }

    #[test]
    fn transmissions_equal_exact_need_without_redundancy() {
        // At-most-once delivery means anti-entropy never re-sends: total
        // transmissions equal exactly the receipts needed, n*(n-1),
        // regardless of topology.
        for topology in [Topology::Star, Topology::Ring, Topology::FullMesh] {
            let result = rounds_to_convergence(N, &topology, 64).unwrap();
            assert_eq!(
                result.transmissions,
                (N * (N - 1)) as u64,
                "{}: knowledge should make gossip zero-redundancy",
                topology.label()
            );
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(Topology::Ring.round_pairs(1, 0).is_empty());
        let one = rounds_to_convergence(1, &Topology::Ring, 4).unwrap();
        assert_eq!(one.rounds, 0);
    }

    #[test]
    fn tree_pairs_form_a_tree() {
        let pairs = Topology::Tree { fanout: 3 }.round_pairs(10, 0);
        assert_eq!(pairs.len(), 9, "n-1 edges");
        for (parent, child) in pairs {
            assert!(parent < child);
            assert_eq!(parent, (child - 1) / 3);
        }
    }
}
