//! Bounded parallel execution for experiment sweeps.
//!
//! Every figure of the paper is a sweep over independent emulation runs
//! (one per policy, per filter width, per ablation point). [`SweepRunner`]
//! fans those runs out over `std::thread::scope` with a bounded worker
//! pool while keeping results in job order, so a parallel sweep returns
//! exactly what the serial loop would have — each run is internally
//! deterministic (seeded RNGs, ordered event streams), and the runner
//! never lets scheduling order leak into the output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use obs::{Event, Obs, Observer};

/// Runs a batch of independent jobs across a bounded worker pool,
/// returning results in job order.
///
/// Work is dispatched by an atomic cursor, so an expensive job never
/// staircases the pool the way fixed chunking would. With one worker (or
/// one job) the runner degrades to a plain serial loop on the calling
/// thread — no threads are spawned, which keeps single-run callers free
/// of any scheduling noise.
///
/// ```
/// use emu::SweepRunner;
///
/// let squares = SweepRunner::new().run(vec![1u64, 2, 3, 4], |n| n * n);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub struct SweepRunner {
    workers: usize,
    obs: Obs,
}

impl SweepRunner {
    /// A runner sized to the machine: one worker per available core.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        SweepRunner {
            workers,
            obs: Obs::none(),
        }
    }

    /// A runner that executes jobs one at a time on the calling thread.
    /// The baseline for determinism checks: a parallel run must return
    /// results identical to this.
    pub fn serial() -> Self {
        SweepRunner {
            workers: 1,
            obs: Obs::none(),
        }
    }

    /// Caps the worker pool at `workers` (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attaches an observer; each [`run`](SweepRunner::run) then emits one
    /// [`Event::SweepStarted`] recording the job count and pool size.
    #[must_use]
    pub fn with_observer(mut self, observer: Option<Arc<dyn Observer>>) -> Self {
        self.obs = match observer {
            Some(observer) => Obs::new(observer),
            None => Obs::none(),
        };
        self
    }

    /// The configured worker cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every job, returning outputs in job order.
    pub fn run<T, R, F>(&self, jobs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let total = jobs.len();
        let workers = self.workers.min(total.max(1));
        self.obs.emit(|| Event::SweepStarted {
            jobs: total as u64,
            workers: workers as u64,
        });
        if workers <= 1 {
            return jobs.into_iter().map(f).collect();
        }

        // Jobs are parked in per-slot mutexes so worker threads can take
        // ownership of them; the atomic cursor hands each slot to exactly
        // one worker. Results land back in their slot's position.
        let slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot")
                        .take()
                        .expect("each slot is dispatched once");
                    let out = f(job);
                    *results[i].lock().expect("result slot") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("worker did not panic")
                    .expect("every job ran")
            })
            .collect()
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner::new()
    }
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("workers", &self.workers)
            .field("observer", &self.obs.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_stay_in_job_order() {
        let runner = SweepRunner::new().with_workers(4);
        let jobs: Vec<usize> = (0..64).collect();
        let out = runner.run(jobs, |n| n * 2);
        assert_eq!(out, (0..64).map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs: Vec<u64> = (0..40).collect();
        let serial = SweepRunner::serial().run(jobs.clone(), |n| n.wrapping_mul(0x9e3779b9));
        let parallel = SweepRunner::new()
            .with_workers(8)
            .run(jobs, |n| n.wrapping_mul(0x9e3779b9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_job_sweeps_run_inline() {
        let runner = SweepRunner::new().with_workers(8);
        assert_eq!(runner.run(Vec::<u8>::new(), |n| n), Vec::<u8>::new());
        assert_eq!(runner.run(vec![7u8], |n| n + 1), vec![8]);
    }

    #[test]
    fn observer_sees_one_sweep_started_per_run() {
        use std::sync::Mutex;

        #[derive(Debug, Default)]
        struct Capture(Mutex<Vec<Event>>);
        impl Observer for Capture {
            fn on_event(&self, event: &Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        let capture = Arc::new(Capture::default());
        let runner = SweepRunner::new()
            .with_workers(2)
            .with_observer(Some(capture.clone()));
        runner.run(vec![1, 2, 3], |n| n);
        let events = capture.0.lock().unwrap();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::SweepStarted { jobs, workers } => {
                assert_eq!(*jobs, 3);
                assert_eq!(*workers, 2);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
