//! The trace-driven emulation engine.
//!
//! Mirrors the paper's experimental setup (§VI-A): every bus in the
//! mobility trace runs one DTN application instance backed by one replica;
//! e-mail users are distributed uniformly over the buses scheduled each
//! day; a message from user *u* to user *v* injected on day *d* is
//! addressed from *u*'s bus to *v*'s bus for that day; and every encounter
//! in the trace triggers two syncs with the source/target roles alternated.

use std::collections::BTreeMap;
use std::sync::Arc;

use dtn::{DtnNode, DtnPolicy, EncounterBudget, FilterStrategy, PolicyKind};
use obs::{Event, Fanout, Obs, Observer};
use pfr::{ItemId, ReplicaId, SimTime, SyncMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use traces::{bus_address, EmailWorkload, EncounterTrace, SpooledTrace, UserAssignment};

use crate::metrics::{DayRollup, ExperimentMetrics};

/// Which routing policy the emulated nodes run: one of the bundled kinds
/// with paper parameters, or a custom factory (used by the ablation
/// benches to sweep protocol parameters).
#[derive(Clone)]
pub enum PolicySpec {
    /// A bundled policy with its Table II defaults.
    Kind(PolicyKind),
    /// A caller-supplied factory producing one policy instance per node.
    Custom {
        /// Label shown in reports.
        label: String,
        /// Per-node policy factory.
        build: Arc<dyn Fn() -> Box<dyn DtnPolicy> + Send + Sync>,
    },
}

impl PolicySpec {
    /// A custom policy spec from a label and factory closure.
    pub fn custom(
        label: impl Into<String>,
        build: impl Fn() -> Box<dyn DtnPolicy> + Send + Sync + 'static,
    ) -> Self {
        PolicySpec::Custom {
            label: label.into(),
            build: Arc::new(build),
        }
    }

    /// The spec's display label.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::Kind(kind) => kind.label().to_string(),
            PolicySpec::Custom { label, .. } => label.clone(),
        }
    }

    pub(crate) fn build(&self) -> Box<dyn DtnPolicy> {
        match self {
            PolicySpec::Kind(kind) => kind.build(),
            PolicySpec::Custom { build, .. } => build(),
        }
    }
}

impl From<PolicyKind> for PolicySpec {
    fn from(kind: PolicyKind) -> Self {
        PolicySpec::Kind(kind)
    }
}

impl std::fmt::Debug for PolicySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PolicySpec({})", self.label())
    }
}

/// Configuration of one emulation run.
#[derive(Clone)]
pub struct EmulationConfig {
    /// The routing policy every node runs.
    pub policy: PolicySpec,
    /// Per-encounter bandwidth budget (paper §VI-D uses 1 message).
    pub budget: EncounterBudget,
    /// Per-node relay storage cap (paper §VI-D uses 2 messages).
    pub relay_limit: Option<usize>,
    /// Multi-address filter strategy (paper §VI-B); meaningful mainly with
    /// [`PolicyKind::Direct`].
    pub filter_strategy: FilterStrategy,
    /// Seed for the random filter strategy.
    pub strategy_seed: u64,
    /// Seed for the daily user-to-bus assignment.
    pub assignment_seed: u64,
    /// Probability that a scheduled encounter silently fails (both parties
    /// out of range before syncing) — failure injection for robustness
    /// tests; the paper's experiments use 0.
    pub encounter_drop_rate: f64,
    /// Probability, per encounter, that one participant has just rebooted:
    /// its replica state survives (durable snapshot) but its in-memory
    /// routing state is lost and rebuilt cold. Exercises the substrate's
    /// crash resilience; the paper's experiments use 0.
    pub crash_rate: f64,
    /// Seed for failure injection.
    pub fault_seed: u64,
    /// When set, every injected message carries this bounded lifetime:
    /// expired messages are purged by their holders and tombstoned by
    /// their senders, and late arrivals do not count as deliveries — the
    /// "messages with limited lifetimes" regime the paper's Figure 6
    /// approximates from CDFs.
    pub message_lifetime: Option<pfr::SimDuration>,
    /// Duration-aware bandwidth: when set, each encounter's message budget
    /// is `ceil(contact_minutes × rate)` (at least 1), derived from the
    /// trace's recorded contact durations. Overrides `budget` for
    /// encounters with a known duration; zero-duration encounters fall
    /// back to `budget`.
    pub messages_per_contact_minute: Option<f64>,
    /// Extra observer receiving every event the run emits (sync batches,
    /// policy decisions, drops, deliveries, encounters). The engine always
    /// attaches its own [`DayRollup`] — the source of
    /// [`ExperimentMetrics::daily_stats`] — and fans events out to this
    /// observer too when one is set.
    pub observer: Option<Arc<dyn Observer>>,
    /// Force every node's replica back onto the legacy full-store
    /// candidate scan instead of the per-origin version index. Only the
    /// selection algorithm changes — results are identical either way —
    /// so this exists for A/B benchmarking (see the `macro_emu` bench).
    pub candidate_scan: bool,
    /// Force every synced copy onto the legacy owned data plane: outgoing
    /// batch entries deep-copy their payload and un-intern their attribute
    /// strings instead of sharing buffers. Results are byte-identical
    /// either way — this exists only so the `macro_emu` bench and the perf
    /// guard can A/B the copy-on-write data plane against pre-CoW
    /// allocation behavior.
    pub owned_copies: bool,
    /// How encounters exchange sync metadata (see
    /// [`DtnNode::set_sync_mode`]): [`SyncMode::Full`] sends complete
    /// knowledge vectors and routing payloads; [`SyncMode::Digest`]
    /// replaces them with compact reconciliation digests and routing
    /// deltas. Delivery results are identical in both modes — only the
    /// metadata bytes on the wire differ (`recon.*` counters account the
    /// savings).
    pub sync_mode: SyncMode,
    /// Number of worker shards for the sharded engine. `None` runs the
    /// serial engine unless another scale knob (`stream_encounters`,
    /// `spill_dir`, `resident_limit`, or a spooled trace source) forces
    /// the sharded path with one worker. Metrics are identical to the
    /// serial engine for any shard count — the differential suite in
    /// `tests/shard_equivalence.rs` pins this.
    pub shards: Option<usize>,
    /// Stream encounters from disk instead of iterating the in-memory
    /// trace: an in-memory source is first spooled to a temp file, a
    /// spooled source streams directly. The encounter *sequence* is
    /// byte-identical either way.
    pub stream_encounters: bool,
    /// Where spill and temp spool files live. Defaults to
    /// [`std::env::temp_dir`] when a knob that needs disk is on.
    pub spill_dir: Option<std::path::PathBuf>,
    /// Cap on resident (in-memory) replicas: beyond it, the coldest nodes
    /// are snapshotted into a spill file and restored on their next
    /// encounter. `None` keeps every node resident. The cap is enforced
    /// between batches, so residency transiently exceeds it by at most one
    /// batch's working set.
    pub resident_limit: Option<usize>,
    /// Trace-lookahead window (encounters) for the Belady-style residency
    /// policy: eviction spills the replica whose next windowed encounter
    /// is farthest (or absent), and upcoming spilled replicas are
    /// batch-unspilled ahead of their encounters. `None` derives a window
    /// from `resident_limit`. Purely a performance knob — the metrics are
    /// identical for any window (the differential suite pins this).
    pub lookahead: Option<usize>,
    /// Worker threads executing shard chunks. Shards are a *partitioning*
    /// unit (handoff accounting, conflict-free batching); threads are an
    /// *execution* resource, and decoupling them lets the engine fit the
    /// host: `None` sizes the pool to the machine — one thread per shard
    /// on multi-core hosts, zero on a single-core host, where the shards
    /// instead execute cooperatively on the main thread with operations
    /// committed as they complete (no channels, no event buffering).
    /// `Some(0)` forces the cooperative path, `Some(n)` forces a pool of
    /// `min(n, shards)` threads. Purely an execution knob — metrics are
    /// identical for any value (the differential suite pins this).
    pub exec_threads: Option<usize>,
}

impl std::fmt::Debug for EmulationConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmulationConfig")
            .field("policy", &self.policy)
            .field("budget", &self.budget)
            .field("relay_limit", &self.relay_limit)
            .field("filter_strategy", &self.filter_strategy)
            .field("strategy_seed", &self.strategy_seed)
            .field("assignment_seed", &self.assignment_seed)
            .field("encounter_drop_rate", &self.encounter_drop_rate)
            .field("crash_rate", &self.crash_rate)
            .field("fault_seed", &self.fault_seed)
            .field("message_lifetime", &self.message_lifetime)
            .field(
                "messages_per_contact_minute",
                &self.messages_per_contact_minute,
            )
            .field("observer", &self.observer.is_some())
            .field("candidate_scan", &self.candidate_scan)
            .field("owned_copies", &self.owned_copies)
            .field("sync_mode", &self.sync_mode)
            .field("shards", &self.shards)
            .field("stream_encounters", &self.stream_encounters)
            .field("spill_dir", &self.spill_dir)
            .field("resident_limit", &self.resident_limit)
            .field("lookahead", &self.lookahead)
            .finish()
    }
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            policy: PolicySpec::Kind(PolicyKind::Direct),
            budget: EncounterBudget::unlimited(),
            relay_limit: None,
            filter_strategy: FilterStrategy::SelfOnly,
            strategy_seed: 0x5eed,
            assignment_seed: 0xa551,
            encounter_drop_rate: 0.0,
            crash_rate: 0.0,
            fault_seed: 0xfa17,
            message_lifetime: None,
            messages_per_contact_minute: None,
            observer: None,
            candidate_scan: false,
            owned_copies: false,
            sync_mode: SyncMode::default(),
            shards: None,
            stream_encounters: false,
            spill_dir: None,
            resident_limit: None,
            lookahead: None,
            exec_threads: None,
        }
    }
}

impl EmulationConfig {
    /// A run of `policy` with everything else at paper defaults.
    pub fn for_policy(policy: impl Into<PolicySpec>) -> Self {
        EmulationConfig {
            policy: policy.into(),
            ..EmulationConfig::default()
        }
    }
}

/// Where an emulation reads its encounter schedule from: a fully
/// in-memory [`EncounterTrace`], or an on-disk [`SpooledTrace`] whose
/// encounters stream from a file (only per-day schedules stay resident).
#[derive(Clone, Copy)]
pub(crate) enum TraceSource<'a> {
    /// Every encounter resident in memory.
    Memory(&'a EncounterTrace),
    /// Encounters streamed from a spool file.
    Spooled(&'a SpooledTrace),
}

impl TraceSource<'_> {
    fn node_ids(&self) -> Vec<ReplicaId> {
        match self {
            TraceSource::Memory(trace) => trace.nodes().into_iter().collect(),
            TraceSource::Spooled(trace) => trace.nodes().iter().copied().collect(),
        }
    }

    fn len(&self) -> u64 {
        match self {
            TraceSource::Memory(trace) => trace.len() as u64,
            TraceSource::Spooled(trace) => trace.len(),
        }
    }
}

/// A full emulation: nodes, traces, assignment, and collected metrics.
pub struct Emulation<'a> {
    pub(crate) source: TraceSource<'a>,
    pub(crate) workload: &'a EmailWorkload,
    pub(crate) config: EmulationConfig,
    pub(crate) nodes: BTreeMap<ReplicaId, DtnNode>,
    pub(crate) assignment: UserAssignment,
    pub(crate) metrics: ExperimentMetrics,
    pub(crate) obs: Obs,
    pub(crate) rollup: Arc<DayRollup>,
}

impl<'a> Emulation<'a> {
    /// Prepares an emulation over the given trace and workload.
    pub fn new(
        trace: &'a EncounterTrace,
        workload: &'a EmailWorkload,
        config: EmulationConfig,
    ) -> Self {
        Self::build(TraceSource::Memory(trace), workload, config)
    }

    /// Prepares an emulation over a spooled (on-disk) trace: encounters
    /// stream from the spool file, so only per-day schedules and the node
    /// set stay resident. Runs on the sharded engine.
    ///
    /// # Panics
    ///
    /// When `config.filter_strategy` is [`FilterStrategy::Selected`]: top
    /// partner statistics require the whole trace in memory.
    pub fn from_spooled(
        trace: &'a SpooledTrace,
        workload: &'a EmailWorkload,
        config: EmulationConfig,
    ) -> Self {
        Self::build(TraceSource::Spooled(trace), workload, config)
    }

    fn build(
        source: TraceSource<'a>,
        workload: &'a EmailWorkload,
        config: EmulationConfig,
    ) -> Self {
        // The engine's day rollup always listens; a user observer fans in.
        let rollup = Arc::new(DayRollup::new());
        let obs = match &config.observer {
            Some(user) => Obs::new(Arc::new(Fanout::new(vec![
                rollup.clone() as Arc<dyn Observer>,
                user.clone(),
            ]))),
            None => Obs::new(rollup.clone()),
        };

        let mut nodes = BTreeMap::new();
        let all_nodes: Vec<ReplicaId> = source.node_ids();
        for &id in &all_nodes {
            let mut node = DtnNode::with_policy(id, &bus_address(id), config.policy.build());
            node.replica_mut().set_relay_limit(config.relay_limit);
            node.replica_mut().set_observer(obs.clone());
            node.replica_mut().set_candidate_scan(config.candidate_scan);
            node.replica_mut().set_owned_copies(config.owned_copies);
            node.set_sync_mode(config.sync_mode);
            nodes.insert(id, node);
        }

        // Multi-address filters (§IV-B): widen each node's filter with the
        // addresses of k other hosts.
        match config.filter_strategy {
            FilterStrategy::SelfOnly => {}
            FilterStrategy::Random(k) => {
                for &id in &all_nodes {
                    let mut rng = StdRng::seed_from_u64(
                        config.strategy_seed ^ id.as_u64().wrapping_mul(0x9e37),
                    );
                    let mut others: Vec<ReplicaId> =
                        all_nodes.iter().copied().filter(|&o| o != id).collect();
                    for i in 0..k.min(others.len()) {
                        let j = rng.gen_range(i..others.len());
                        others.swap(i, j);
                    }
                    others.truncate(k.min(others.len()));
                    let addrs: Vec<String> = others.into_iter().map(bus_address).collect();
                    nodes
                        .get_mut(&id)
                        .expect("node exists")
                        .set_extra_filter_addresses(addrs);
                }
            }
            FilterStrategy::Selected(k) => {
                let TraceSource::Memory(trace) = source else {
                    panic!(
                        "FilterStrategy::Selected needs top-partner statistics over the whole \
                         trace, which a spooled source does not keep in memory; use SelfOnly or \
                         Random with spooled traces"
                    );
                };
                for &id in &all_nodes {
                    let addrs: Vec<String> = trace
                        .top_partners(id, k)
                        .into_iter()
                        .map(bus_address)
                        .collect();
                    nodes
                        .get_mut(&id)
                        .expect("node exists")
                        .set_extra_filter_addresses(addrs);
                }
            }
        }

        let assignment = match source {
            TraceSource::Memory(trace) => {
                UserAssignment::uniform(trace, workload.users(), config.assignment_seed)
            }
            TraceSource::Spooled(trace) => {
                UserAssignment::uniform_spooled(trace, workload.users(), config.assignment_seed)
            }
        };
        Emulation {
            source,
            workload,
            config,
            nodes,
            assignment,
            metrics: ExperimentMetrics::new(),
            obs,
            rollup,
        }
    }

    /// The per-day user assignment in use.
    pub fn assignment(&self) -> &UserAssignment {
        &self.assignment
    }

    /// Read access to a node.
    pub fn node(&self, id: ReplicaId) -> Option<&DtnNode> {
        self.nodes.get(&id)
    }

    /// Runs the whole schedule and returns the collected metrics.
    pub fn run(self) -> ExperimentMetrics {
        self.run_into_parts().0
    }

    /// Runs the whole schedule, returning the metrics *and* the final
    /// nodes for post-run inspection (stored items, policy state sizes,
    /// replica statistics).
    pub fn run_into_parts(mut self) -> (ExperimentMetrics, BTreeMap<ReplicaId, DtnNode>) {
        if self.sharded_requested() {
            return self.run_sharded();
        }
        let TraceSource::Memory(trace) = self.source else {
            unreachable!("spooled sources always take the sharded path");
        };
        let mut injections = self.workload.events().iter().peekable();
        let mut encounters = trace.iter().peekable();
        let mut fault_rng = StdRng::seed_from_u64(self.config.fault_seed);

        loop {
            let next_injection = injections.peek().map(|e| e.time);
            let next_encounter = encounters.peek().map(|e| e.time);
            match (next_injection, next_encounter) {
                (None, None) => break,
                (Some(ti), Some(te)) if ti <= te => {
                    let event = injections.next().expect("peeked");
                    self.inject(&event.src, &event.dst, event.time);
                }
                (Some(_), None) => {
                    let event = injections.next().expect("peeked");
                    self.inject(&event.src, &event.dst, event.time);
                }
                (_, Some(_)) => {
                    let enc = *encounters.next().expect("peeked");
                    if self.config.encounter_drop_rate > 0.0
                        && fault_rng.gen::<f64>() < self.config.encounter_drop_rate
                    {
                        continue;
                    }
                    if self.config.crash_rate > 0.0
                        && fault_rng.gen::<f64>() < self.config.crash_rate
                    {
                        let victim = if fault_rng.gen::<bool>() {
                            enc.a
                        } else {
                            enc.b
                        };
                        self.reboot(victim);
                    }
                    self.meet(&enc);
                }
            }
        }

        // Final storage accounting: one pass over every node's store builds
        // the copy counts for all tracked messages at once, instead of one
        // full node sweep per message (O(nodes * messages) -> O(live items)).
        let mut copies: BTreeMap<ItemId, usize> = BTreeMap::new();
        for node in self.nodes.values() {
            for item in node.replica().iter_items() {
                if !item.is_deleted() {
                    *copies.entry(item.id()).or_insert(0) += 1;
                }
            }
        }
        let ids: Vec<ItemId> = self.metrics.records().map(|r| r.id).collect();
        for id in ids {
            let count = copies.get(&id).copied().unwrap_or(0);
            self.metrics.record_final_copies(id, count);
        }
        self.metrics.evictions = self
            .nodes
            .values()
            .map(|n| n.replica().stats().evictions)
            .sum();
        // The per-day time series is a pure function of the event stream.
        self.metrics.set_daily_stats(self.rollup.snapshot());
        (self.metrics, self.nodes)
    }

    /// Whether any scale knob routes this run onto the sharded engine.
    fn sharded_requested(&self) -> bool {
        self.config.shards.is_some()
            || self.config.stream_encounters
            || self.config.spill_dir.is_some()
            || self.config.resident_limit.is_some()
            || matches!(self.source, TraceSource::Spooled(_))
    }

    fn inject(&mut self, src_user: &str, dst_user: &str, now: SimTime) {
        let day = now.day();
        let (Some(src_bus), Some(dst_bus)) = (
            self.assignment.bus_of(day, src_user),
            self.assignment.bus_of(day, dst_user),
        ) else {
            return; // no buses scheduled that day: the mail is lost upstream
        };
        let src_addr = bus_address(src_bus);
        let dst_addr = bus_address(dst_bus);
        let payload = format!("{src_user}->{dst_user}").into_bytes();
        let Some(node) = self.nodes.get_mut(&src_bus) else {
            return;
        };
        let sent = match self.config.message_lifetime {
            Some(lifetime) => dtn::messaging::send_message_with_lifetime(
                node.replica_mut(),
                &src_addr,
                &dst_addr,
                payload,
                now,
                lifetime,
            ),
            None => node.send_from(&src_addr, &dst_addr, payload, now),
        };
        let Ok(id) = sent else {
            return;
        };
        self.metrics.record_injection(id, &src_addr, &dst_addr, now);
        if src_bus == dst_bus {
            // Sender and destination ride the same bus today: delivered on
            // the spot with a single stored copy.
            self.metrics.record_delivery(id, now, 1);
            self.obs.emit(|| Event::MessageDelivered {
                replica: dst_bus.as_u64(),
                origin: id.origin().as_u64(),
                seq: id.seq(),
                delay_secs: 0,
                at_secs: now.as_secs(),
            });
        }
    }

    fn meet(&mut self, encounter: &traces::Encounter) {
        let (a, b, now) = (encounter.a, encounter.b, encounter.time);
        if a == b {
            return;
        }
        let budget = match self.config.messages_per_contact_minute {
            Some(rate) if encounter.duration.as_secs() > 0 => {
                let allowance = (encounter.duration.as_secs() as f64 / 60.0 * rate).ceil();
                EncounterBudget::max_messages((allowance as usize).max(1))
            }
            _ => self.config.budget,
        };
        // Borrow both nodes in place via one range iterator — removing and
        // re-inserting them cost a couple of map-node allocations per
        // encounter, which dominated the steady-state allocation profile.
        let report = {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let mut range = self.nodes.range_mut(lo..=hi);
            let (Some((&first, node_lo)), Some((&last, node_hi))) =
                (range.next(), range.next_back())
            else {
                return;
            };
            if first != lo || last != hi {
                return;
            }
            let (node_a, node_b) = if a < b {
                (node_lo, node_hi)
            } else {
                (node_hi, node_lo)
            };
            node_a.encounter(node_b, now, budget)
        };

        self.metrics.encounters += 1;
        self.metrics.transmissions += report.transmitted as u64;
        self.metrics.duplicates += report.duplicates as u64;

        for (receiver, ids) in [(a, &report.delivered_to_a), (b, &report.delivered_to_b)] {
            // Rendering the address allocates; skip it on the common
            // nothing-delivered encounter.
            if ids.is_empty() {
                continue;
            }
            let addr = bus_address(receiver);
            for &id in ids {
                let is_final_destination =
                    self.metrics.record(id).is_some_and(|rec| rec.dst == addr);
                if is_final_destination && self.metrics.is_pending(id) {
                    // Bounded lifetimes: a copy that slips through after
                    // expiry is not a delivery.
                    let in_time = match self.config.message_lifetime {
                        None => true,
                        Some(lifetime) => self
                            .metrics
                            .record(id)
                            .is_some_and(|r| now.saturating_since(r.injected_at) < lifetime),
                    };
                    if in_time {
                        let copies = self.count_copies(id);
                        let delay_secs = self
                            .metrics
                            .record(id)
                            .map(|r| now.saturating_since(r.injected_at).as_secs())
                            .unwrap_or(0);
                        self.metrics.record_delivery(id, now, copies);
                        self.obs.emit(|| Event::MessageDelivered {
                            replica: receiver.as_u64(),
                            origin: id.origin().as_u64(),
                            seq: id.seq(),
                            delay_secs,
                            at_secs: now.as_secs(),
                        });
                    }
                }
            }
        }
    }

    /// Simulates a reboot: the replica's durable state round-trips through
    /// a snapshot (exercising snapshot/restore), then the routing policy
    /// restarts *cold* — its in-memory tables are gone, as on a device
    /// that never called `save_state`. (Nodes that do persist routing
    /// state reboot losslessly; that path is covered by
    /// `DtnNode::restore`'s tests.)
    fn reboot(&mut self, id: ReplicaId) {
        let Some(node) = self.nodes.remove(&id) else {
            return;
        };
        let snapshot = node.snapshot();
        match DtnNode::restore(&snapshot) {
            Ok(mut restored) => {
                restored.replace_policy(self.config.policy.build());
                // Snapshots carry no observability or acceleration state;
                // re-attach the observer and selection mode.
                restored.replica_mut().set_observer(self.obs.clone());
                restored
                    .replica_mut()
                    .set_candidate_scan(self.config.candidate_scan);
                restored
                    .replica_mut()
                    .set_owned_copies(self.config.owned_copies);
                // Digest caches died with the process; the mode survives
                // as configuration and the first post-reboot exchange per
                // peer resolves through the fallback path.
                restored.set_sync_mode(self.config.sync_mode);
                self.metrics.reboots += 1;
                self.nodes.insert(id, restored);
            }
            Err(_) => {
                // Snapshots we just produced always decode; keep the node
                // rather than losing it if that ever regresses. (Custom
                // policies outside the registry also land here.)
                self.nodes.insert(id, node);
            }
        }
    }

    fn count_copies(&self, id: ItemId) -> usize {
        self.nodes
            .values()
            .filter(|n| n.replica().item(id).is_some_and(|item| !item.is_deleted()))
            .count()
    }
}

/// Fleet-wide storage accounting over the final nodes of a run (use with
/// [`Emulation::run_into_parts`]).
///
/// Deliberately *not* part of [`ExperimentMetrics`]: the owned/shared A/B
/// harness compares metrics with `==`, and physical sharing is exactly
/// what differs between the two modes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageFootprint {
    /// Bytes charging every stored copy independently (what the fleet
    /// would hold without payload sharing).
    pub total_bytes: u64,
    /// Bytes charging each shared payload buffer once across the whole
    /// fleet (what the fleet physically holds under the copy-on-write
    /// data plane); equals `total_bytes` when nothing is shared.
    pub deduped_bytes: u64,
}

/// Measures the fleet's storage footprint: every live item on every node,
/// counted both per-copy and with shared payload buffers deduplicated via
/// [`pfr::Item::approx_size_deduped`].
pub fn storage_footprint(nodes: &BTreeMap<ReplicaId, DtnNode>) -> StorageFootprint {
    let mut seen = std::collections::HashSet::new();
    let mut footprint = StorageFootprint::default();
    for node in nodes.values() {
        for item in node.replica().iter_items() {
            if item.is_deleted() {
                continue;
            }
            footprint.total_bytes += item.approx_size() as u64;
            footprint.deduped_bytes += item.approx_size_deduped(&mut seen) as u64;
        }
    }
    footprint
}

impl std::fmt::Debug for Emulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Emulation")
            .field("policy", &self.config.policy.label())
            .field("nodes", &self.nodes.len())
            .field("encounters", &self.source.len())
            .field("messages", &self.workload.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traces::{DieselNetConfig, EmailConfig};

    fn small_setup() -> (EncounterTrace, EmailWorkload) {
        (
            DieselNetConfig::small().generate(),
            EmailConfig::small().generate(),
        )
    }

    #[test]
    fn baseline_run_completes_and_counts() {
        let (trace, workload) = small_setup();
        let metrics = Emulation::new(&trace, &workload, EmulationConfig::default()).run();
        assert_eq!(metrics.injected(), workload.len());
        assert_eq!(metrics.encounters, trace.len() as u64);
        assert_eq!(metrics.duplicates, 0, "at-most-once must hold");
        assert!(metrics.delivered() > 0, "some direct encounters deliver");
    }

    #[test]
    fn epidemic_beats_baseline_delivery() {
        let (trace, workload) = small_setup();
        let base = Emulation::new(&trace, &workload, EmulationConfig::default()).run();
        let epi = Emulation::new(
            &trace,
            &workload,
            EmulationConfig::for_policy(PolicyKind::Epidemic),
        )
        .run();
        assert!(
            epi.delivered() >= base.delivered(),
            "flooding can't deliver less: {} vs {}",
            epi.delivered(),
            base.delivered()
        );
        assert!(
            epi.transmissions > base.transmissions,
            "flooding costs traffic"
        );
    }

    #[test]
    fn deliveries_only_count_true_destinations() {
        let (trace, workload) = small_setup();
        let config = EmulationConfig {
            filter_strategy: FilterStrategy::Selected(4),
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&trace, &workload, config).run();
        for rec in metrics.records() {
            if let Some(at) = rec.delivered_at {
                assert!(at >= rec.injected_at);
            }
        }
        assert_eq!(metrics.duplicates, 0);
    }

    #[test]
    fn relay_limit_produces_evictions_under_flooding() {
        let (trace, workload) = small_setup();
        let config = EmulationConfig {
            policy: PolicyKind::Epidemic.into(),
            relay_limit: Some(2),
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&trace, &workload, config).run();
        assert!(metrics.evictions > 0, "tight storage must evict");
        assert_eq!(metrics.duplicates, 0);
    }

    #[test]
    fn bandwidth_budget_caps_transmissions() {
        let (trace, workload) = small_setup();
        let config = EmulationConfig {
            policy: PolicyKind::Epidemic.into(),
            budget: EncounterBudget::max_messages(1),
            ..EmulationConfig::default()
        };
        let metrics = Emulation::new(&trace, &workload, config).run();
        assert!(
            metrics.transmissions <= metrics.encounters,
            "at most one message per encounter"
        );
    }

    #[test]
    fn dropped_encounters_reduce_traffic() {
        let (trace, workload) = small_setup();
        let full = Emulation::new(
            &trace,
            &workload,
            EmulationConfig::for_policy(PolicyKind::Epidemic),
        )
        .run();
        let lossy = Emulation::new(
            &trace,
            &workload,
            EmulationConfig {
                policy: PolicyKind::Epidemic.into(),
                encounter_drop_rate: 0.5,
                ..EmulationConfig::default()
            },
        )
        .run();
        assert!(lossy.encounters < full.encounters);
        // Flooding is loss-resilient, so traffic need not shrink, but
        // delivery cannot improve with fewer contact opportunities.
        assert!(lossy.delivered() <= full.delivered());
        // Replication guarantees still hold under loss.
        assert_eq!(lossy.duplicates, 0);
    }

    #[test]
    fn duration_bandwidth_derives_budget_from_contacts() {
        let (trace, workload) = small_setup();
        // A very stingy rate: ~1 message per 10 contact-minutes. Short
        // drive-bys carry almost nothing.
        let stingy = Emulation::new(
            &trace,
            &workload,
            EmulationConfig {
                policy: PolicyKind::Epidemic.into(),
                messages_per_contact_minute: Some(0.1),
                ..EmulationConfig::default()
            },
        )
        .run();
        let free = Emulation::new(
            &trace,
            &workload,
            EmulationConfig::for_policy(PolicyKind::Epidemic),
        )
        .run();
        assert!(
            stingy.transmissions < free.transmissions,
            "duration budgets must bite: {} vs {}",
            stingy.transmissions,
            free.transmissions
        );
        assert_eq!(stingy.duplicates, 0);
        // Budget is at least 1 per encounter, so delivery still works.
        assert!(stingy.delivered() > 0);
    }

    #[test]
    fn crash_injection_preserves_replication_guarantees() {
        let (trace, workload) = small_setup();
        let baseline = Emulation::new(
            &trace,
            &workload,
            EmulationConfig::for_policy(PolicyKind::MaxProp),
        )
        .run();
        let crashy = Emulation::new(
            &trace,
            &workload,
            EmulationConfig {
                policy: PolicyKind::MaxProp.into(),
                crash_rate: 0.2,
                ..EmulationConfig::default()
            },
        )
        .run();
        assert!(crashy.reboots > 0, "crashes must actually happen");
        assert_eq!(crashy.duplicates, 0, "at-most-once survives reboots");
        assert_eq!(crashy.injected(), baseline.injected());
        // Durable replica state means reboots cost routing efficiency, not
        // correctness: delivery can dip but not collapse.
        assert!(
            crashy.delivery_rate() >= baseline.delivery_rate() * 0.5,
            "crashes devastated delivery: {} vs {}",
            crashy.delivery_rate(),
            baseline.delivery_rate()
        );
    }

    #[test]
    fn owned_and_shared_data_planes_agree_exactly() {
        let (trace, workload) = small_setup();
        let run = |owned_copies| {
            Emulation::new(
                &trace,
                &workload,
                EmulationConfig {
                    policy: PolicyKind::Epidemic.into(),
                    owned_copies,
                    ..EmulationConfig::default()
                },
            )
            .run_into_parts()
        };
        let (shared, shared_nodes) = run(false);
        let (owned, owned_nodes) = run(true);
        assert_eq!(shared, owned, "the data plane must be behavior-invisible");

        // The physical footprint is where the modes may differ: flooding
        // spreads copies, and only the shared plane dedups their payloads.
        let shared_fp = storage_footprint(&shared_nodes);
        let owned_fp = storage_footprint(&owned_nodes);
        assert_eq!(shared_fp.total_bytes, owned_fp.total_bytes);
        assert_eq!(owned_fp.deduped_bytes, owned_fp.total_bytes);
        assert!(shared_fp.deduped_bytes < shared_fp.total_bytes);
    }

    /// The tentpole invariant: digest-mode reconciliation changes only
    /// what travels on the wire, never what gets delivered. Every metric
    /// must match the full-mode run exactly, for every paper policy.
    #[test]
    fn digest_mode_reproduces_full_mode_metrics_exactly() {
        let (trace, workload) = small_setup();
        for kind in PolicyKind::ALL {
            let run = |sync_mode| {
                Emulation::new(
                    &trace,
                    &workload,
                    EmulationConfig {
                        policy: kind.into(),
                        sync_mode,
                        ..EmulationConfig::default()
                    },
                )
                .run()
            };
            let full = run(SyncMode::Full);
            let digest = run(SyncMode::Digest);
            assert_eq!(full, digest, "policy {kind}: digest mode diverged");
        }
    }

    /// Crash injection wipes digest caches mid-run: knowledge exchange
    /// falls back to full retransmission (candidates stay exact), while a
    /// routing-envelope miss costs one exchange of routing metadata per
    /// peer — relay traffic may drift, but the replication guarantees and
    /// deliveries must hold up.
    #[test]
    fn digest_mode_survives_crash_injection() {
        let (trace, workload) = small_setup();
        let run = |sync_mode| {
            Emulation::new(
                &trace,
                &workload,
                EmulationConfig {
                    policy: PolicyKind::MaxProp.into(),
                    crash_rate: 0.1,
                    sync_mode,
                    ..EmulationConfig::default()
                },
            )
            .run_into_parts()
        };
        let (full, _) = run(SyncMode::Full);
        let (digest, nodes) = run(SyncMode::Digest);
        assert!(digest.reboots > 0, "crashes must actually happen");
        assert_eq!(digest.duplicates, 0, "at-most-once survives cache loss");
        assert_eq!(digest.injected(), full.injected());
        assert!(
            digest.delivery_rate() >= full.delivery_rate() * 0.9,
            "lost digest caches must not dent delivery: {} vs {}",
            digest.delivery_rate(),
            full.delivery_rate()
        );
        let fallbacks: u64 = nodes
            .values()
            .map(|n| n.recon_stats().fallback_rounds)
            .sum();
        assert!(
            fallbacks > 0,
            "reboots must exercise the digest fallback path"
        );
    }

    #[test]
    fn digest_mode_exchanges_are_counted() {
        let (trace, workload) = small_setup();
        let (_, nodes) = Emulation::new(
            &trace,
            &workload,
            EmulationConfig {
                policy: PolicyKind::Epidemic.into(),
                sync_mode: SyncMode::Digest,
                ..EmulationConfig::default()
            },
        )
        .run_into_parts();
        let exchanges: u64 = nodes.values().map(|n| n.recon_stats().exchanges).sum();
        let digest: u64 = nodes.values().map(|n| n.recon_stats().digest_bytes).sum();
        let full: u64 = nodes.values().map(|n| n.recon_stats().full_bytes).sum();
        assert!(exchanges > 0, "digest path must run");
        assert!(digest > 0 && full > 0);
        assert!(
            digest < full,
            "digest metadata must undercut full: {digest} vs {full}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let (trace, workload) = small_setup();
        let run = || {
            Emulation::new(
                &trace,
                &workload,
                EmulationConfig::for_policy(PolicyKind::MaxProp),
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.delivered(), b.delivered());
        assert_eq!(a.transmissions, b.transmissions);
        assert_eq!(a.mean_delay(), b.mean_delay());
    }
}
