//! Canned experiment runners: one per figure of the paper's evaluation.
//!
//! Each runner builds the paper's scenario (vehicular trace + e-mail
//! workload), sweeps the figure's parameter, and returns typed results the
//! benchmark harness renders as the figure's rows/series. See
//! `EXPERIMENTS.md` at the repository root for paper-vs-measured notes.

use std::sync::Arc;

use dtn::{EncounterBudget, FilterStrategy, PolicyKind};
use obs::Observer;
use pfr::{SimDuration, SimTime};
use traces::{DieselNetConfig, EmailConfig, EmailWorkload, EncounterTrace};

use crate::engine::{Emulation, EmulationConfig};
use crate::metrics::{CdfPoint, ExperimentMetrics};
use crate::sweep::SweepRunner;

/// The shared input of every experiment: one mobility trace plus one
/// message workload.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Vehicular encounter schedule.
    pub trace: EncounterTrace,
    /// E-mail injection schedule.
    pub workload: EmailWorkload,
}

impl Scenario {
    /// The paper-scale scenario: 17 days of DieselNet-like encounters and
    /// the 490-message Enron-like workload.
    pub fn paper() -> Self {
        Scenario {
            trace: DieselNetConfig::default().generate(),
            workload: EmailConfig::default().generate(),
        }
    }

    /// A scaled-down scenario for tests and quick examples.
    pub fn small() -> Self {
        Scenario {
            trace: DieselNetConfig::small().generate(),
            workload: EmailConfig::small().generate(),
        }
    }

    /// The experiment horizon: midnight after the last trace day, used for
    /// the "mean delay of all messages" metric.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_hms(self.trace.days(), 0, 0, 0)
    }
}

/// One run's headline numbers plus the full metrics.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// What produced this row (policy or filter-strategy label).
    pub label: String,
    /// Collected metrics.
    pub metrics: ExperimentMetrics,
    /// Mean delay counting undelivered messages at the horizon, in hours.
    pub mean_delay_hours: f64,
    /// Fraction of messages delivered within 12 hours, in percent.
    pub delivered_within_12h_pct: f64,
    /// Overall delivery rate in percent.
    pub delivery_rate_pct: f64,
}

fn run_result(label: String, scenario: &Scenario, metrics: ExperimentMetrics) -> RunResult {
    let mean = metrics
        .mean_delay_with_horizon(scenario.horizon())
        .map(|d| d.as_hours_f64())
        .unwrap_or(0.0);
    RunResult {
        label,
        mean_delay_hours: mean,
        delivered_within_12h_pct: metrics.delivered_within(SimDuration::from_hours(12)) * 100.0,
        delivery_rate_pct: metrics.delivery_rate() * 100.0,
        metrics,
    }
}

/// Figures 5 and 6: the multi-address filter sweep. For each strategy
/// (random, selected) and each `k`, runs the baseline replication system
/// with filters widened by `k` extra host addresses.
///
/// Returns one series per strategy; each series starts with the shared
/// `Self` (k = 0) point.
pub fn filter_sweep(scenario: &Scenario, ks: &[usize]) -> Vec<(String, Vec<RunResult>)> {
    filter_sweep_with(scenario, ks, None)
}

/// [`filter_sweep`] with an observer receiving every run's event stream.
pub fn filter_sweep_with(
    scenario: &Scenario,
    ks: &[usize],
    observer: Option<Arc<dyn Observer>>,
) -> Vec<(String, Vec<RunResult>)> {
    let runner = SweepRunner::new().with_observer(observer.clone());
    let base_cfg = EmulationConfig {
        observer,
        ..EmulationConfig::default()
    };
    let self_only = run_result(
        "Self".to_string(),
        scenario,
        Emulation::new(&scenario.trace, &scenario.workload, base_cfg.clone()).run(),
    );

    // The per-k runs are independent: fan them out across the sweep pool.
    let run_one = |strategy: FilterStrategy, k: usize| -> RunResult {
        let config = EmulationConfig {
            filter_strategy: strategy,
            ..base_cfg.clone()
        };
        let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();
        run_result(format!("+{k}"), scenario, metrics)
    };
    let jobs: Vec<(FilterStrategy, usize)> = ks
        .iter()
        .map(|&k| (FilterStrategy::Random(k), k))
        .chain(ks.iter().map(|&k| (FilterStrategy::Selected(k), k)))
        .collect();
    let mut rows = runner.run(jobs, |(strategy, k)| run_one(strategy, k));
    let selected_rows = rows.split_off(ks.len());
    let random_rows = rows;

    let mut series = Vec::new();
    for (name, rows) in [("random", random_rows), ("selected", selected_rows)] {
        let mut all = vec![self_only.clone()];
        all.extend(rows);
        series.push((name.to_string(), all));
    }
    series
}

/// A policy-comparison run (Figures 7–10 share this shape).
#[derive(Clone, Debug)]
pub struct PolicyRun {
    /// Which policy.
    pub policy: PolicyKind,
    /// Headline numbers.
    pub result: RunResult,
    /// Hourly delay CDF for the first 12 hours (Figure 7a / 9 / 10).
    pub cdf_hours: Vec<CdfPoint>,
    /// Daily delay CDF for days 1..=10 (Figure 7b).
    pub cdf_days: Vec<CdfPoint>,
    /// Worst-case delivery delay in days (delivered messages only).
    pub max_delay_days: Option<f64>,
    /// Mean copies stored per message at delivery time (Figure 8).
    pub copies_at_delivery: Option<f64>,
    /// Mean copies stored per message at the end of the run (Figure 8).
    pub copies_at_end: Option<f64>,
}

/// Runs one policy over the scenario under the given constraints.
pub fn run_policy(
    scenario: &Scenario,
    policy: PolicyKind,
    budget: EncounterBudget,
    relay_limit: Option<usize>,
) -> PolicyRun {
    run_policy_with(scenario, policy, budget, relay_limit, None)
}

/// [`run_policy`] with an observer receiving the run's event stream.
pub fn run_policy_with(
    scenario: &Scenario,
    policy: PolicyKind,
    budget: EncounterBudget,
    relay_limit: Option<usize>,
    observer: Option<Arc<dyn Observer>>,
) -> PolicyRun {
    let config = EmulationConfig {
        policy: policy.into(),
        budget,
        relay_limit,
        observer,
        ..EmulationConfig::default()
    };
    let metrics = Emulation::new(&scenario.trace, &scenario.workload, config).run();
    let cdf_hours = metrics.delay_cdf(SimDuration::from_hours(1), SimDuration::from_hours(12));
    let cdf_days = metrics.delay_cdf(SimDuration::from_days(1), SimDuration::from_days(10));
    let max_delay_days = metrics.max_delay().map(|d| d.as_days_f64());
    let copies_at_delivery = metrics.mean_copies_at_delivery();
    let copies_at_end = metrics.mean_copies_at_end();
    PolicyRun {
        policy,
        result: run_result(policy.label().to_string(), scenario, metrics),
        cdf_hours,
        cdf_days,
        max_delay_days,
        copies_at_delivery,
        copies_at_end,
    }
}

/// Figures 7a/7b (unconstrained), 9 (bandwidth-constrained), and 10
/// (storage-constrained): all five policies under the given constraints.
pub fn policy_comparison(
    scenario: &Scenario,
    budget: EncounterBudget,
    relay_limit: Option<usize>,
) -> Vec<PolicyRun> {
    policy_comparison_with(scenario, budget, relay_limit, None)
}

/// [`policy_comparison`] with an observer receiving every run's event
/// stream (all five policies report into the same observer, from separate
/// threads).
pub fn policy_comparison_with(
    scenario: &Scenario,
    budget: EncounterBudget,
    relay_limit: Option<usize>,
    observer: Option<Arc<dyn Observer>>,
) -> Vec<PolicyRun> {
    // Five independent runs, fanned out over the sweep pool.
    SweepRunner::new()
        .with_observer(observer.clone())
        .run(PolicyKind::ALL.to_vec(), |p| {
            run_policy_with(scenario, p, budget, relay_limit, observer.clone())
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_sweep_shapes_match_figures_five_and_six() {
        let scenario = Scenario::small();
        let series = filter_sweep(&scenario, &[2, 8]);
        assert_eq!(series.len(), 2);
        for (name, rows) in &series {
            assert_eq!(rows.len(), 3, "{name}: Self + two k values");
            assert_eq!(rows[0].label, "Self");
            // More addresses => no worse mean delay (fig 5's shape).
            assert!(
                rows[2].mean_delay_hours <= rows[0].mean_delay_hours + 1e-9,
                "{name}: k=8 ({}) should not be slower than Self ({})",
                rows[2].mean_delay_hours,
                rows[0].mean_delay_hours
            );
            // And no worse 12h delivery (fig 6's shape).
            assert!(rows[2].delivered_within_12h_pct >= rows[0].delivered_within_12h_pct - 1e-9);
        }
    }

    #[test]
    fn selected_no_worse_than_random_at_paper_scale_k1() {
        // The full assertion (selected < random) is validated at paper
        // scale by the fig5 bench; at test scale we check both beat Self.
        let scenario = Scenario::small();
        let series = filter_sweep(&scenario, &[4]);
        let random = &series[0].1[1];
        let selected = &series[1].1[1];
        let baseline = &series[0].1[0];
        assert!(random.mean_delay_hours <= baseline.mean_delay_hours + 1e-9);
        assert!(selected.mean_delay_hours <= baseline.mean_delay_hours + 1e-9);
    }

    #[test]
    fn policy_comparison_covers_all_policies() {
        let scenario = Scenario::small();
        let runs = policy_comparison(&scenario, EncounterBudget::unlimited(), None);
        assert_eq!(runs.len(), 5);
        let labels: Vec<&str> = runs.iter().map(|r| r.policy.label()).collect();
        assert!(labels.contains(&"cimbiosys") && labels.contains(&"maxprop"));
        for run in &runs {
            assert_eq!(run.cdf_hours.len(), 12);
            assert_eq!(run.cdf_days.len(), 10);
            assert_eq!(run.result.metrics.duplicates, 0);
        }
        // Flooding delivers at least as much as the baseline (fig 7 shape).
        let base = runs
            .iter()
            .find(|r| r.policy == PolicyKind::Direct)
            .unwrap();
        let epidemic = runs
            .iter()
            .find(|r| r.policy == PolicyKind::Epidemic)
            .unwrap();
        assert!(epidemic.result.delivery_rate_pct >= base.result.delivery_rate_pct - 1e-9);
    }

    #[test]
    fn storage_accounting_shapes_match_figure_eight() {
        let scenario = Scenario::small();
        let base = run_policy(
            &scenario,
            PolicyKind::Direct,
            EncounterBudget::unlimited(),
            None,
        );
        let epidemic = run_policy(
            &scenario,
            PolicyKind::Epidemic,
            EncounterBudget::unlimited(),
            None,
        );
        // Baseline stores ~2 copies (sender + receiver).
        if let Some(c) = base.copies_at_end {
            assert!(c <= 2.5, "baseline copies_at_end {c} should stay near 2");
        }
        let (Some(b), Some(e)) = (base.copies_at_end, epidemic.copies_at_end) else {
            panic!("copy accounting missing");
        };
        assert!(e > b, "flooding stores more copies: {e} vs {b}");
    }

    #[test]
    fn constraints_do_not_break_invariants() {
        let scenario = Scenario::small();
        for (budget, relay) in [
            (EncounterBudget::max_messages(1), None),
            (EncounterBudget::unlimited(), Some(2)),
        ] {
            let run = run_policy(&scenario, PolicyKind::MaxProp, budget, relay);
            assert_eq!(run.result.metrics.duplicates, 0);
            assert!(run.result.delivery_rate_pct <= 100.0);
        }
    }

    #[test]
    fn horizon_is_after_last_day() {
        let scenario = Scenario::small();
        assert_eq!(scenario.horizon().day(), scenario.trace.days());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(4))]

        /// Fanning emulation runs across the sweep pool must return
        /// metrics identical to running them serially, whatever the seeds:
        /// per-run determinism may not leak scheduling order.
        #[test]
        fn parallel_sweep_metrics_identical_to_serial(
            assignment_seed in proptest::prelude::any::<u64>(),
            fault_seed in proptest::prelude::any::<u64>(),
        ) {
            let scenario = Scenario::small();
            let jobs = || {
                [PolicyKind::Direct, PolicyKind::Epidemic, PolicyKind::Prophet]
                    .map(|p| EmulationConfig {
                        policy: p.into(),
                        assignment_seed,
                        fault_seed,
                        encounter_drop_rate: 0.1,
                        ..EmulationConfig::default()
                    })
                    .to_vec()
            };
            let run_one = |config: EmulationConfig| {
                Emulation::new(&scenario.trace, &scenario.workload, config).run()
            };
            let serial = SweepRunner::serial().run(jobs(), run_one);
            let parallel = SweepRunner::new().with_workers(3).run(jobs(), run_one);
            proptest::prop_assert_eq!(serial, parallel);
        }
    }
}
