//! The DTN messaging application (paper §IV-A).
//!
//! Messages are replicated items: the destination address is an item
//! attribute, and each host's filter selects the messages addressed to it.
//! Eventual filter consistency then *is* reliable delivery, and knowledge
//! *is* duplicate suppression — the application itself is nearly trivial.

use obs::Event;
use pfr::{AttributeMap, Filter, Item, ItemId, PfrError, Replica, SimTime, Value};

fn emit_injected(replica: &Replica, id: ItemId, src: &str, dst: &str, now: SimTime) {
    replica.observer().emit(|| Event::MessageInjected {
        replica: replica.id().as_u64(),
        origin: id.origin().as_u64(),
        seq: id.seq(),
        src: src.to_string(),
        dst: dst.to_string(),
        at_secs: now.as_secs(),
    });
}

/// Attribute naming the destination address(es) of a message. A scalar
/// string for unicast; a list of strings for multicast.
pub const ATTR_DEST: &str = "dest";

/// Attribute naming the sender's address.
pub const ATTR_SRC: &str = "src";

/// Attribute holding the injection time (seconds, [`SimTime`]).
pub const ATTR_SENT_AT: &str = "sent_at";

/// Attribute holding the expiry time (seconds, [`SimTime`]); absent means
/// the message never expires.
pub const ATTR_EXPIRES_AT: &str = "expires_at";

/// A decoded view of a message item.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// The underlying item id (globally unique message id).
    pub id: ItemId,
    /// Sender address.
    pub src: String,
    /// Destination addresses (one entry for unicast).
    pub dest: Vec<String>,
    /// When the message was injected.
    pub sent_at: SimTime,
    /// Message body.
    pub payload: Vec<u8>,
}

impl Message {
    /// Decodes a message from a replicated item, if the item carries the
    /// messaging attributes.
    pub fn from_item(item: &Item) -> Option<Message> {
        let dest = match item.attrs().get(ATTR_DEST)? {
            Value::Str(s) => vec![s.as_str().to_owned()],
            Value::List(l) => l
                .iter()
                .filter_map(|v| v.as_str().map(str::to_owned))
                .collect(),
            _ => return None,
        };
        Some(Message {
            id: item.id(),
            src: item
                .attrs()
                .get_str(ATTR_SRC)
                .unwrap_or_default()
                .to_owned(),
            dest,
            sent_at: SimTime::from_secs(
                item.attrs().get_i64(ATTR_SENT_AT).unwrap_or(0).max(0) as u64
            ),
            payload: item.payload().to_vec(),
        })
    }
}

/// Builds the attribute map for a unicast message.
pub fn message_attrs(src: &str, dest: &str, sent_at: SimTime) -> AttributeMap {
    let mut attrs = AttributeMap::new();
    attrs.set(ATTR_SRC, src);
    attrs.set(ATTR_DEST, dest);
    attrs.set(ATTR_SENT_AT, sent_at.as_secs() as i64);
    attrs
}

/// Builds the attribute map for a multicast message.
pub fn multicast_attrs(src: &str, dests: &[&str], sent_at: SimTime) -> AttributeMap {
    let mut attrs = AttributeMap::new();
    attrs.set(ATTR_SRC, src);
    attrs.set(
        ATTR_DEST,
        Value::List(dests.iter().map(|d| Value::from(*d)).collect()),
    );
    attrs.set(ATTR_SENT_AT, sent_at.as_secs() as i64);
    attrs
}

/// Extracts the destination addresses of a message item (one for unicast,
/// several for multicast), or an empty list for non-message items.
pub fn dest_addresses(item: &Item) -> Vec<&str> {
    match item.attrs().get(ATTR_DEST) {
        Some(Value::Str(s)) => vec![s.as_str()],
        Some(Value::List(l)) => l.iter().filter_map(Value::as_str).collect(),
        _ => Vec::new(),
    }
}

/// Injects a unicast message into a replica (paper: "the DTN application
/// simply inserts the message into the sending host's replica").
///
/// # Errors
///
/// Propagates storage errors from [`Replica::insert`].
pub fn send_message(
    replica: &mut Replica,
    src: &str,
    dest: &str,
    payload: Vec<u8>,
    now: SimTime,
) -> Result<ItemId, PfrError> {
    let id = replica.insert(message_attrs(src, dest, now), payload)?;
    emit_injected(replica, id, src, dest, now);
    Ok(id)
}

/// The absolute expiry time a message item carries, if any (negative
/// stored times clamp to zero, i.e. "already expired").
pub fn expires_at(item: &Item) -> Option<SimTime> {
    item.attrs()
        .get_i64(ATTR_EXPIRES_AT)
        .map(|t| SimTime::from_secs(t.max(0) as u64))
}

/// Returns `true` if the item is a message whose lifetime has ended.
pub fn is_expired(item: &Item, now: SimTime) -> bool {
    expires_at(item).is_some_and(|t| now >= t)
}

/// Injects a unicast message with a bounded lifetime: after
/// `now + lifetime`, holders stop carrying it (see
/// [`DtnNode::expire_messages`](crate::DtnNode::expire_messages)) and it
/// no longer counts as deliverable.
///
/// # Errors
///
/// Propagates storage errors from [`Replica::insert`].
pub fn send_message_with_lifetime(
    replica: &mut Replica,
    src: &str,
    dest: &str,
    payload: Vec<u8>,
    now: SimTime,
    lifetime: pfr::SimDuration,
) -> Result<ItemId, PfrError> {
    let mut attrs = message_attrs(src, dest, now);
    attrs.set(ATTR_EXPIRES_AT, (now + lifetime).as_secs() as i64);
    let id = replica.insert(attrs, payload)?;
    emit_injected(replica, id, src, dest, now);
    Ok(id)
}

/// Injects a multicast message into a replica: one item whose `dest`
/// attribute lists every recipient. Each recipient's filter matches it,
/// and at-most-once delivery applies per recipient.
///
/// # Errors
///
/// Propagates storage errors from [`Replica::insert`].
pub fn send_multicast(
    replica: &mut Replica,
    src: &str,
    dests: &[&str],
    payload: Vec<u8>,
    now: SimTime,
) -> Result<ItemId, PfrError> {
    let id = replica.insert(multicast_attrs(src, dests, now), payload)?;
    emit_injected(replica, id, src, &dests.join(","), now);
    Ok(id)
}

/// Lists the live messages in `replica` addressed to `addr`.
pub fn inbox(replica: &Replica, addr: &str) -> Vec<Message> {
    replica
        .iter_items()
        .filter(|item| !item.is_deleted())
        .filter_map(Message::from_item)
        .filter(|m| m.dest.iter().any(|d| d == addr))
        .collect()
}

/// How a host populates its filter with addresses beyond its own —
/// the multi-address strategies of paper §IV-B / §VI-B.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FilterStrategy {
    /// Only the host's own addresses (`k = 0`, "Self" in Figures 5–6).
    SelfOnly,
    /// The host's addresses plus `k` uniformly random other hosts.
    Random(usize),
    /// The host's addresses plus the `k` hosts it encounters most often in
    /// the trace (computed by the harness from encounter counts).
    Selected(usize),
}

impl FilterStrategy {
    /// The number of extra addresses the strategy requests.
    pub fn extra_addresses(self) -> usize {
        match self {
            FilterStrategy::SelfOnly => 0,
            FilterStrategy::Random(k) | FilterStrategy::Selected(k) => k,
        }
    }

    /// Label used in the figures ("Self", "+1", "+16", ...).
    pub fn label(self) -> String {
        match self {
            FilterStrategy::SelfOnly => "Self".to_string(),
            FilterStrategy::Random(k) | FilterStrategy::Selected(k) => format!("+{k}"),
        }
    }
}

/// Builds a host filter selecting every address in `own` plus `extra`.
pub fn host_filter<'a>(
    own: impl IntoIterator<Item = &'a str>,
    extra: impl IntoIterator<Item = &'a str>,
) -> Filter {
    Filter::any_address(ATTR_DEST, own.into_iter().chain(extra))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::ReplicaId;

    fn replica(addr: &str) -> Replica {
        Replica::new(ReplicaId::new(1), host_filter([addr], []))
    }

    #[test]
    fn send_and_decode_roundtrip() {
        let mut r = replica("a");
        let id = send_message(&mut r, "a", "b", b"hello".to_vec(), SimTime::from_secs(30)).unwrap();
        let msg = Message::from_item(r.item(id).unwrap()).unwrap();
        assert_eq!(msg.id, id);
        assert_eq!(msg.src, "a");
        assert_eq!(msg.dest, vec!["b".to_string()]);
        assert_eq!(msg.sent_at, SimTime::from_secs(30));
        assert_eq!(msg.payload, b"hello");
    }

    #[test]
    fn multicast_attrs_filterable_per_recipient() {
        let attrs = multicast_attrs("a", &["b", "c"], SimTime::ZERO);
        assert!(host_filter(["b"], []).matches_attrs(&attrs));
        assert!(host_filter(["c"], []).matches_attrs(&attrs));
        assert!(!host_filter(["d"], []).matches_attrs(&attrs));
    }

    #[test]
    fn inbox_filters_by_address_and_liveness() {
        let mut r = Replica::new(ReplicaId::new(1), Filter::All);
        send_message(&mut r, "x", "me", b"1".to_vec(), SimTime::ZERO).unwrap();
        let dead = send_message(&mut r, "x", "me", b"2".to_vec(), SimTime::ZERO).unwrap();
        send_message(&mut r, "x", "other", b"3".to_vec(), SimTime::ZERO).unwrap();
        r.delete(dead).unwrap();
        let msgs = inbox(&r, "me");
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, b"1");
    }

    #[test]
    fn non_message_items_are_skipped() {
        let mut attrs = AttributeMap::new();
        attrs.set("kind", "not-a-message");
        let mut r = Replica::new(ReplicaId::new(1), Filter::All);
        r.insert(attrs, vec![]).unwrap();
        assert!(inbox(&r, "me").is_empty());
        let item = r.iter_items().next().unwrap();
        assert_eq!(Message::from_item(item), None);
    }

    #[test]
    fn strategy_labels_match_figures() {
        assert_eq!(FilterStrategy::SelfOnly.label(), "Self");
        assert_eq!(FilterStrategy::Random(4).label(), "+4");
        assert_eq!(FilterStrategy::Selected(16).label(), "+16");
        assert_eq!(FilterStrategy::SelfOnly.extra_addresses(), 0);
        assert_eq!(FilterStrategy::Selected(8).extra_addresses(), 8);
    }

    #[test]
    fn host_filter_includes_all_addresses() {
        let f = host_filter(["me"], ["friend1", "friend2"]);
        let attrs = message_attrs("x", "friend2", SimTime::ZERO);
        assert!(f.matches_attrs(&attrs));
        let attrs = message_attrs("x", "stranger", SimTime::ZERO);
        assert!(!f.matches_attrs(&attrs));
    }
}
