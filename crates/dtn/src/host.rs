//! A DTN host: one replica bundled with its routing policy and addresses.

use std::collections::BTreeSet;
use std::fmt;

use obs::{DropReason, Event, Span};
use pfr::sync::{self, SyncReport};
use pfr::{Filter, ItemId, PfrError, Replica, ReplicaId, SimTime, SyncLimits};

use crate::durable::RestoreError;
use crate::messaging::{self, Message};
use crate::policy::{DtnPolicy, PolicyKind};

/// Resource limits applied to one encounter (paper §VI-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncounterBudget {
    /// Maximum messages exchanged across both syncs of the encounter
    /// (`None` = unlimited). The paper's bandwidth-constrained experiment
    /// uses `Some(1)`.
    pub max_messages: Option<usize>,
}

impl EncounterBudget {
    /// No limits.
    pub fn unlimited() -> Self {
        EncounterBudget::default()
    }

    /// At most `n` messages across the whole encounter.
    pub fn max_messages(n: usize) -> Self {
        EncounterBudget {
            max_messages: Some(n),
        }
    }
}

/// The result of one encounter (two syncs with roles alternating).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EncounterReport {
    /// Items transmitted in both directions.
    pub transmitted: usize,
    /// Deliveries into each side's filtered store.
    pub delivered: usize,
    /// Ids delivered to the first host of the pair.
    pub delivered_to_a: Vec<ItemId>,
    /// Ids delivered to the second host of the pair.
    pub delivered_to_b: Vec<ItemId>,
    /// Duplicate receipts (must stay zero).
    pub duplicates: usize,
}

impl EncounterReport {
    fn absorb(&mut self, report: SyncReport, to_a: bool) {
        self.transmitted += report.transmitted;
        self.delivered += report.delivered;
        self.duplicates += report.duplicates;
        if to_a {
            self.delivered_to_a.extend(report.delivered_ids);
        } else {
            self.delivered_to_b.extend(report.delivered_ids);
        }
    }
}

/// One device in the DTN: a replica, a routing policy, and the set of
/// addresses it answers for.
///
/// # Examples
///
/// ```
/// use dtn::{DtnNode, EncounterBudget, PolicyKind};
/// use pfr::{ReplicaId, SimTime};
///
/// let mut a = DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic);
/// let mut b = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
/// a.send("b", b"hello".to_vec(), SimTime::ZERO)?;
/// a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());
/// assert_eq!(b.inbox().len(), 1);
/// # Ok::<(), pfr::PfrError>(())
/// ```
pub struct DtnNode {
    replica: Replica,
    policy: Box<dyn DtnPolicy>,
    addresses: BTreeSet<String>,
    extra_filter_addrs: BTreeSet<String>,
    pub(crate) store: Option<store::Store>,
    /// Expiry watermark for [`DtnNode::expire_messages`]: `None` = unknown
    /// (items may have arrived; the next call must scan), `Some(None)` =
    /// no stored message expires, `Some(Some(t))` = nothing expires before
    /// `t`. Purely an acceleration cache — never snapshotted.
    next_expiry: Option<Option<SimTime>>,
}

impl DtnNode {
    /// Creates a node with one address and a bundled policy.
    pub fn new(id: ReplicaId, address: &str, policy: PolicyKind) -> Self {
        DtnNode::with_policy(id, address, policy.build())
    }

    /// Creates a node with a custom policy instance.
    pub fn with_policy(id: ReplicaId, address: &str, policy: Box<dyn DtnPolicy>) -> Self {
        let addresses: BTreeSet<String> = [address.to_string()].into_iter().collect();
        let mut node = DtnNode {
            replica: Replica::new(id, Filter::None),
            policy,
            addresses,
            extra_filter_addrs: BTreeSet::new(),
            store: None,
            next_expiry: None,
        };
        node.refresh_filter();
        node
    }

    /// The node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.replica.id()
    }

    /// The addresses this node is final destination for.
    pub fn addresses(&self) -> impl Iterator<Item = &str> {
        self.addresses.iter().map(String::as_str)
    }

    /// Read access to the underlying replica.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Mutable access to the underlying replica (for storage limits etc.).
    pub fn replica_mut(&mut self) -> &mut Replica {
        // The caller can insert items behind our back; force the next
        // expire_messages to rescan.
        self.next_expiry = None;
        &mut self.replica
    }

    /// Read access to the routing policy.
    pub fn policy(&self) -> &dyn DtnPolicy {
        self.policy.as_ref()
    }

    /// Swaps in a new policy instance, discarding the old one's in-memory
    /// state (models a reboot on a device that never called
    /// [`DtnPolicy::save_state`]). The replica is untouched.
    pub fn replace_policy(&mut self, mut policy: Box<dyn DtnPolicy>) {
        policy.set_local_addresses(self.addresses.clone());
        self.policy = policy;
    }

    /// Replaces the set of addresses this node answers for (the vehicular
    /// experiments re-assign users to buses every day).
    pub fn set_addresses<I, S>(&mut self, addrs: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.addresses = addrs.into_iter().map(Into::into).collect();
        self.refresh_filter();
    }

    /// Sets the extra forwarding addresses in this node's filter — the
    /// multi-address strategies of §IV-B. These addresses receive and
    /// store messages but do not count as deliveries.
    pub fn set_extra_filter_addresses<I, S>(&mut self, addrs: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.extra_filter_addrs = addrs.into_iter().map(Into::into).collect();
        self.refresh_filter();
    }

    fn refresh_filter(&mut self) {
        let filter = messaging::host_filter(
            self.addresses.iter().map(String::as_str),
            self.extra_filter_addrs.iter().map(String::as_str),
        );
        self.replica.set_filter(filter);
        self.policy.set_local_addresses(self.addresses.clone());
    }

    /// Sends a unicast message from this node's first address.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send(&mut self, dest: &str, payload: Vec<u8>, now: SimTime) -> Result<ItemId, PfrError> {
        let src = self
            .addresses
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| self.replica.id().to_string());
        messaging::send_message(&mut self.replica, &src, dest, payload, now)
    }

    /// Sends a unicast message from an explicit source address.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send_from(
        &mut self,
        src: &str,
        dest: &str,
        payload: Vec<u8>,
        now: SimTime,
    ) -> Result<ItemId, PfrError> {
        messaging::send_message(&mut self.replica, src, dest, payload, now)
    }

    /// Sends a multicast message from this node's first address to every
    /// listed recipient; each recipient's filter selects the single shared
    /// item and at-most-once delivery applies per recipient.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send_multicast(
        &mut self,
        dests: &[&str],
        payload: Vec<u8>,
        now: SimTime,
    ) -> Result<ItemId, PfrError> {
        let src = self
            .addresses
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| self.replica.id().to_string());
        messaging::send_multicast(&mut self.replica, &src, dests, payload, now)
    }

    /// Sends a unicast message with a bounded lifetime (see
    /// [`messaging::send_message_with_lifetime`]).
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send_with_lifetime(
        &mut self,
        dest: &str,
        payload: Vec<u8>,
        now: SimTime,
        lifetime: pfr::SimDuration,
    ) -> Result<ItemId, PfrError> {
        let src = self
            .addresses
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| self.replica.id().to_string());
        self.next_expiry = None;
        messaging::send_message_with_lifetime(&mut self.replica, &src, dest, payload, now, lifetime)
    }

    /// Live messages addressed to any of this node's addresses.
    pub fn inbox(&self) -> Vec<Message> {
        self.addresses
            .iter()
            .flat_map(|addr| messaging::inbox(&self.replica, addr))
            .collect()
    }

    /// Drops expired messages (those past their
    /// [`ATTR_EXPIRES_AT`](messaging::ATTR_EXPIRES_AT) time): relayed
    /// copies are purged outright; messages this node originated are
    /// deleted, so their tombstones chase down the remaining copies.
    /// Returns how many messages were expired locally.
    ///
    /// [`DtnNode::encounter`] calls this on both parties before syncing, so
    /// applications using bounded lifetimes need no extra bookkeeping.
    pub fn expire_messages(&mut self, now: SimTime) -> usize {
        // Watermark fast path: skip the store scan entirely when nothing
        // can have expired since the last one. Item arrivals (syncs,
        // lifetime sends, external replica mutation) reset the watermark.
        match self.next_expiry {
            Some(None) => return 0,
            Some(Some(next)) if now < next => return 0,
            _ => {}
        }
        let mut earliest: Option<SimTime> = None;
        let mut expired: Vec<(ItemId, bool)> = Vec::new();
        for item in self.replica.iter_items() {
            if item.is_deleted() {
                continue;
            }
            match messaging::expires_at(item) {
                Some(t) if now >= t => {
                    expired.push((item.id(), item.id().origin() == self.replica.id()));
                }
                Some(t) => earliest = Some(earliest.map_or(t, |e| e.min(t))),
                None => {}
            }
        }
        let mut count = 0;
        let replica_id = self.replica.id().as_u64();
        for (id, is_origin) in expired {
            let dropped = if is_origin {
                self.replica.delete(id).is_ok()
            } else {
                self.replica.purge_relay(id)
            };
            if dropped {
                count += 1;
                self.replica.observer().emit(|| Event::ItemExpired {
                    replica: replica_id,
                    origin: id.origin().as_u64(),
                    seq: id.seq(),
                    at_secs: now.as_secs(),
                });
                self.replica.observer().emit(|| Event::MessageDropped {
                    replica: replica_id,
                    origin: id.origin().as_u64(),
                    seq: id.seq(),
                    reason: DropReason::Expired,
                });
            }
        }
        self.next_expiry = Some(earliest);
        count
    }

    /// Runs one encounter with `other`: two pairwise syncs, alternating the
    /// source/target roles (as the paper's experiments do), under a shared
    /// message budget.
    ///
    /// When the budget is limited, destination-addressed (filter-matched)
    /// messages claim the channel first in both directions — the priority
    /// every studied DTN protocol gives deliveries over relay handoffs —
    /// and relay traffic chosen by the routing policy fills whatever
    /// capacity remains.
    pub fn encounter(
        &mut self,
        other: &mut DtnNode,
        now: SimTime,
        budget: EncounterBudget,
    ) -> EncounterReport {
        let mut report = EncounterReport::default();
        let span = Span::start(
            self.replica.observer(),
            "encounter",
            self.replica.id().as_u64(),
            other.replica.id().as_u64(),
        );

        // Bounded-lifetime housekeeping before anything moves.
        self.expire_messages(now);
        other.expire_messages(now);

        let mut remaining = budget.max_messages;
        if remaining.is_some() {
            // Phase 1 (budgeted encounters only): deliveries first. Plain
            // filtered replication in both directions, so routing-policy
            // hooks fire exactly once per encounter (in phase 2).
            let mut none_a = sync::NoExtension;
            let mut none_b = sync::NoExtension;
            let r = sync::sync_with(
                &mut self.replica,
                &mut none_a,
                &mut other.replica,
                &mut none_b,
                limits_for(remaining),
                now,
            );
            spend(&mut remaining, r.transmitted);
            // Phase-1 deliveries bypass the policy's on_delivered hook via
            // NoExtension; replay them so acknowledgement schemes see them.
            other.notify_delivered(now, &r.delivered_ids, self.replica.id());
            report.absorb(r, false);

            let r = sync::sync_with(
                &mut other.replica,
                &mut none_b,
                &mut self.replica,
                &mut none_a,
                limits_for(remaining),
                now,
            );
            spend(&mut remaining, r.transmitted);
            self.notify_delivered(now, &r.delivered_ids, other.replica.id());
            report.absorb(r, true);
        }

        // Policy phase: self is source, other is target, then roles swap.
        let r1 = sync::sync_with(
            &mut self.replica,
            self.policy.as_mut(),
            &mut other.replica,
            other.policy.as_mut(),
            limits_for(remaining),
            now,
        );
        spend(&mut remaining, r1.transmitted);
        report.absorb(r1, false);

        let r2 = sync::sync_with(
            &mut other.replica,
            other.policy.as_mut(),
            &mut self.replica,
            self.policy.as_mut(),
            limits_for(remaining),
            now,
        );
        report.absorb(r2, true);
        if report.transmitted > 0 {
            // Either side may now hold items with earlier expiry times.
            self.next_expiry = None;
            other.next_expiry = None;
        }
        let (a, b) = (self.replica.id().as_u64(), other.replica.id().as_u64());
        let (transmitted, delivered, duplicates) = (
            report.transmitted as u64,
            report.delivered as u64,
            report.duplicates as u64,
        );
        self.replica.observer().emit(|| Event::EncounterCompleted {
            a,
            b,
            transmitted,
            delivered,
            duplicates,
            at_secs: now.as_secs(),
        });
        span.finish();
        report
    }

    /// Begins a sync session in which this node is the *target* (the side
    /// that receives items): produces the request to send to the source.
    /// Used by network transports; local encounters use
    /// [`DtnNode::encounter`].
    pub fn begin_sync_session(
        &mut self,
        source: ReplicaId,
        now: SimTime,
    ) -> pfr::sync::SyncRequest<'_> {
        sync::begin_sync(&mut self.replica, self.policy.as_mut(), now, Some(source))
    }

    /// Answers a sync request as the *source*: selects, orders, and limits
    /// the batch of items for the requesting target.
    pub fn respond_sync(
        &mut self,
        request: &pfr::sync::SyncRequest,
        limits: SyncLimits,
        now: SimTime,
    ) -> pfr::sync::SyncBatch {
        sync::prepare_batch(
            &mut self.replica,
            self.policy.as_mut(),
            request,
            limits,
            now,
        )
    }

    /// Applies a received batch as the *target*, completing the session.
    pub fn apply_sync(&mut self, batch: pfr::sync::SyncBatch, now: SimTime) -> SyncReport {
        if !batch.entries.is_empty() {
            // Arriving items may carry expiry times; rescan next time.
            self.next_expiry = None;
        }
        sync::apply_batch(&mut self.replica, self.policy.as_mut(), batch, now)
    }

    /// Serializes the node's full durable state: replica snapshot, address
    /// sets, policy name, and the policy's persistent routing state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = pfr::wire::Writer::new();
        w.put_bytes(&self.replica.snapshot());
        w.put_varint(self.addresses.len() as u64);
        for addr in &self.addresses {
            w.put_str(addr);
        }
        w.put_varint(self.extra_filter_addrs.len() as u64);
        for addr in &self.extra_filter_addrs {
            w.put_str(addr);
        }
        w.put_str(self.policy.name());
        w.put_bytes(&self.policy.save_state());
        w.into_bytes()
    }

    /// Restores a node from a snapshot, rebuilding the named bundled
    /// policy and its routing state.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for corrupt bytes,
    /// [`RestoreError::UnknownPolicy`] when the persisted policy name is
    /// not in the bundled registry (restore custom policies with
    /// [`DtnNode::restore_with_policy`]).
    pub fn restore(bytes: &[u8]) -> Result<DtnNode, RestoreError> {
        let (replica, addresses, extra, policy_name, policy_state) = Self::parse_snapshot(bytes)?;
        let kind: PolicyKind = policy_name
            .parse()
            .map_err(|_: String| RestoreError::UnknownPolicy(policy_name.clone()))?;
        let mut policy = kind.build();
        policy.restore_state(&policy_state);
        Ok(Self::assemble(replica, addresses, extra, policy))
    }

    /// Restores a node from a snapshot using a caller-provided policy
    /// instance (for policies outside the bundled registry). The policy's
    /// saved state is still applied, so the instance's name must match
    /// the one persisted in the snapshot — feeding one policy's state to
    /// another would silently corrupt routing decisions. To deliberately
    /// switch policies on restore, use
    /// [`DtnNode::restore_overriding_policy`].
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for corrupt bytes,
    /// [`RestoreError::PolicyMismatch`] when the snapshot was written by
    /// a differently-named policy.
    pub fn restore_with_policy(
        bytes: &[u8],
        mut policy: Box<dyn DtnPolicy>,
    ) -> Result<DtnNode, RestoreError> {
        let (replica, addresses, extra, name, policy_state) = Self::parse_snapshot(bytes)?;
        if policy.name() != name {
            return Err(RestoreError::PolicyMismatch {
                persisted: name,
                expected: policy.name().to_string(),
            });
        }
        policy.restore_state(&policy_state);
        Ok(Self::assemble(replica, addresses, extra, policy))
    }

    /// Restores a node from a snapshot with a *different* policy,
    /// discarding the persisted policy name and routing state (the
    /// device was reconfigured across the restart). The replica — items,
    /// knowledge, inbox — is restored in full.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for corrupt bytes.
    pub fn restore_overriding_policy(
        bytes: &[u8],
        policy: Box<dyn DtnPolicy>,
    ) -> Result<DtnNode, RestoreError> {
        let (replica, addresses, extra, _name, _state) = Self::parse_snapshot(bytes)?;
        Ok(Self::assemble(replica, addresses, extra, policy))
    }

    #[allow(clippy::type_complexity)]
    fn parse_snapshot(
        bytes: &[u8],
    ) -> Result<(Replica, BTreeSet<String>, BTreeSet<String>, String, Vec<u8>), RestoreError> {
        let mut r = pfr::wire::Reader::new(bytes);
        let read = |r: &mut pfr::wire::Reader<'_>| -> Result<_, pfr::wire::WireError> {
            let replica_bytes = r.get_bytes()?.to_vec();
            let mut addresses = BTreeSet::new();
            for _ in 0..r.get_len(1)? {
                addresses.insert(r.get_str()?);
            }
            let mut extra = BTreeSet::new();
            for _ in 0..r.get_len(1)? {
                extra.insert(r.get_str()?);
            }
            let name = r.get_str()?;
            let state = r.get_bytes()?.to_vec();
            Ok((replica_bytes, addresses, extra, name, state))
        };
        let (replica_bytes, addresses, extra, name, state) =
            read(&mut r).map_err(|e| PfrError::SnapshotDecode {
                message: e.to_string(),
            })?;
        let replica = Replica::restore(&replica_bytes)?;
        Ok((replica, addresses, extra, name, state))
    }

    fn assemble(
        replica: Replica,
        addresses: BTreeSet<String>,
        extra_filter_addrs: BTreeSet<String>,
        mut policy: Box<dyn DtnPolicy>,
    ) -> DtnNode {
        policy.set_local_addresses(addresses.clone());
        DtnNode {
            replica,
            policy,
            addresses,
            extra_filter_addrs,
            store: None,
            next_expiry: None,
        }
    }

    /// Ensures `addr` is among this node's addresses (used when a
    /// restored node is reopened under a configured address the snapshot
    /// predates).
    pub(crate) fn ensure_address(&mut self, addr: &str) {
        if !self.addresses.contains(addr) {
            self.addresses.insert(addr.to_string());
            self.refresh_filter();
        }
    }

    fn notify_delivered(&mut self, now: SimTime, delivered: &[ItemId], peer: ReplicaId) {
        if delivered.is_empty() {
            return;
        }
        let mut cx = sync::HostContext::new(&mut self.replica, now, Some(peer));
        self.policy.on_delivered(&mut cx, delivered);
    }
}

fn limits_for(remaining: Option<usize>) -> SyncLimits {
    match remaining {
        Some(n) => SyncLimits::max_items(n),
        None => SyncLimits::unlimited(),
    }
}

fn spend(remaining: &mut Option<usize>, transmitted: usize) {
    if let Some(n) = remaining {
        *n = n.saturating_sub(transmitted);
    }
}

impl fmt::Debug for DtnNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DtnNode")
            .field("id", &self.replica.id())
            .field("policy", &self.policy.name())
            .field("addresses", &self.addresses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u64, addr: &str, kind: PolicyKind) -> DtnNode {
        DtnNode::new(ReplicaId::new(n), addr, kind)
    }

    #[test]
    fn direct_delivery_on_encounter() {
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut b = node(2, "b", PolicyKind::Direct);
        a.send("b", b"hi".to_vec(), SimTime::ZERO).unwrap();
        b.send("a", b"yo".to_vec(), SimTime::ZERO).unwrap();
        let report = a.encounter(&mut b, SimTime::from_secs(1), EncounterBudget::unlimited());
        assert_eq!(report.delivered, 2, "both directions deliver");
        assert_eq!(report.duplicates, 0);
        assert_eq!(a.inbox().len(), 1);
        assert_eq!(b.inbox().len(), 1);
        assert_eq!(report.delivered_to_a.len(), 1);
        assert_eq!(report.delivered_to_b.len(), 1);
    }

    #[test]
    fn encounter_budget_is_shared_across_directions() {
        let mut a = node(1, "a", PolicyKind::Epidemic);
        let mut b = node(2, "b", PolicyKind::Epidemic);
        for i in 0..3 {
            a.send("b", vec![i], SimTime::ZERO).unwrap();
            b.send("a", vec![i], SimTime::ZERO).unwrap();
        }
        let report = a.encounter(
            &mut b,
            SimTime::from_secs(1),
            EncounterBudget::max_messages(1),
        );
        assert_eq!(report.transmitted, 1, "one message per encounter total");
        // Repeated encounters eventually drain the backlog.
        let mut total = report.delivered;
        for t in 2..20 {
            let r = a.encounter(
                &mut b,
                SimTime::from_secs(t),
                EncounterBudget::max_messages(1),
            );
            total += r.delivered;
        }
        assert_eq!(total, 6);
    }

    #[test]
    fn extra_filter_addresses_relay_without_delivering() {
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut c = node(3, "c", PolicyKind::Direct);
        c.set_extra_filter_addresses(["b"]);
        a.send("b", b"m".to_vec(), SimTime::ZERO).unwrap();
        let report = a.encounter(&mut c, SimTime::from_secs(1), EncounterBudget::unlimited());
        assert_eq!(
            report.transmitted, 1,
            "c's widened filter pulls the message"
        );
        assert!(c.inbox().is_empty(), "not addressed to c itself");

        // c later meets b and delivers.
        let mut b = node(2, "b", PolicyKind::Direct);
        let report = c.encounter(&mut b, SimTime::from_secs(2), EncounterBudget::unlimited());
        assert_eq!(report.delivered, 1);
        assert_eq!(b.inbox().len(), 1);
    }

    #[test]
    fn daily_address_reassignment() {
        let mut bus = node(1, "bus-1", PolicyKind::Direct);
        bus.set_addresses(["bus-1", "alice"]);
        let mut other = node(2, "bus-2", PolicyKind::Direct);
        other
            .send("alice", b"mail".to_vec(), SimTime::ZERO)
            .unwrap();
        other.encounter(
            &mut bus,
            SimTime::from_secs(5),
            EncounterBudget::unlimited(),
        );
        assert_eq!(bus.inbox().len(), 1, "bus hosting alice receives her mail");

        // Next day alice moves away; bus-1 no longer receives for her.
        bus.set_addresses(["bus-1"]);
        assert!(bus.inbox().is_empty());
    }

    #[test]
    fn policies_usable_as_trait_objects() {
        for kind in PolicyKind::ALL {
            let mut a = node(1, "a", kind);
            let mut b = node(2, "b", kind);
            a.send("b", b"x".to_vec(), SimTime::ZERO).unwrap();
            let report = a.encounter(&mut b, SimTime::from_secs(1), EncounterBudget::unlimited());
            assert_eq!(report.delivered, 1, "policy {kind} delivers directly");
            assert_eq!(report.duplicates, 0);
        }
    }

    #[test]
    fn expired_messages_stop_moving() {
        use pfr::SimDuration;
        let mut a = node(1, "a", PolicyKind::Epidemic);
        let mut b = node(2, "b", PolicyKind::Epidemic);
        let mut z = node(9, "z", PolicyKind::Epidemic);
        let id = a
            .send_with_lifetime(
                "z",
                b"short-lived".to_vec(),
                SimTime::ZERO,
                SimDuration::from_hours(1),
            )
            .unwrap();

        // Within the lifetime, the message relays normally.
        a.encounter(
            &mut b,
            SimTime::from_hms(0, 0, 30, 0),
            EncounterBudget::unlimited(),
        );
        assert!(b.replica().contains_item(id));

        // Past the lifetime, b's relay copy is purged and a tombstones its
        // original, so z never sees the message.
        let late = SimTime::from_hms(0, 2, 0, 0);
        b.encounter(&mut z, late, EncounterBudget::unlimited());
        assert!(!b.replica().contains_item(id), "relay copy purged");
        assert!(z.inbox().is_empty());
        a.encounter(
            &mut z,
            SimTime::from_hms(0, 3, 0, 0),
            EncounterBudget::unlimited(),
        );
        assert!(z.inbox().is_empty(), "origin tombstoned its own message");
        assert!(a.replica().item(id).unwrap().is_deleted());
    }

    #[test]
    fn unexpired_lifetime_messages_deliver_normally() {
        use pfr::SimDuration;
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut b = node(2, "b", PolicyKind::Direct);
        a.send_with_lifetime(
            "b",
            b"in time".to_vec(),
            SimTime::ZERO,
            SimDuration::from_days(1),
        )
        .unwrap();
        let report = a.encounter(
            &mut b,
            SimTime::from_hms(0, 5, 0, 0),
            EncounterBudget::unlimited(),
        );
        assert_eq!(report.delivered, 1);
        assert_eq!(b.inbox().len(), 1);
    }

    #[test]
    fn multicast_delivers_to_each_recipient_once() {
        for kind in PolicyKind::ALL {
            let mut a = node(1, "a", kind);
            let mut b = node(2, "b", kind);
            let mut c = node(3, "c", kind);
            let id = a
                .send_multicast(&["b", "c"], b"to both".to_vec(), SimTime::ZERO)
                .unwrap();
            let r1 = a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());
            let r2 = a.encounter(
                &mut c,
                SimTime::from_secs(120),
                EncounterBudget::unlimited(),
            );
            assert_eq!(r1.delivered + r2.delivered, 2, "policy {kind}");
            assert_eq!(b.inbox().len(), 1, "policy {kind}");
            assert_eq!(c.inbox().len(), 1, "policy {kind}");
            assert_eq!(b.inbox()[0].id, id);
            assert_eq!(b.inbox()[0].dest, vec!["b".to_string(), "c".to_string()]);
            // Re-encounters move nothing.
            let r3 = a.encounter(
                &mut b,
                SimTime::from_secs(180),
                EncounterBudget::unlimited(),
            );
            assert_eq!(r3.transmitted, 0, "policy {kind}");
        }
    }

    #[test]
    fn multicast_relays_through_predictive_policies() {
        // PROPHET forwards a multicast message when the peer is a better
        // custodian for either recipient.
        let mut a = node(1, "a", PolicyKind::Prophet);
        let mut relay = node(2, "r", PolicyKind::Prophet);
        let mut b = node(3, "b", PolicyKind::Prophet);
        // relay repeatedly meets b, becoming a good custodian for it.
        for t in 1..4 {
            relay.encounter(
                &mut b,
                SimTime::from_secs(t * 60),
                EncounterBudget::unlimited(),
            );
        }
        let id = a
            .send_multicast(&["b", "z"], b"m".to_vec(), SimTime::ZERO)
            .unwrap();
        a.encounter(
            &mut relay,
            SimTime::from_secs(600),
            EncounterBudget::unlimited(),
        );
        assert!(
            relay.replica().contains_item(id),
            "custody accepted for dest b"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip_per_policy() {
        for kind in PolicyKind::ALL {
            let mut a = node(1, "a", kind);
            let mut b = node(2, "b", kind);
            a.set_extra_filter_addresses(["friend"]);
            a.send("b", b"m1".to_vec(), SimTime::ZERO).unwrap();
            b.send("a", b"m2".to_vec(), SimTime::ZERO).unwrap();
            a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());

            let restored = DtnNode::restore(&a.snapshot())
                .unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));
            assert_eq!(restored.id(), a.id());
            assert_eq!(restored.policy().name(), kind.label());
            assert_eq!(restored.inbox(), a.inbox());
            assert_eq!(
                restored.addresses().collect::<Vec<_>>(),
                a.addresses().collect::<Vec<_>>()
            );
            assert_eq!(restored.replica().item_ids(), a.replica().item_ids());
        }
    }

    #[test]
    fn restored_node_keeps_routing_state() {
        // PROPHET: predictability toward a partner survives the restart.
        let mut a = node(1, "a", PolicyKind::Prophet);
        let mut b = node(2, "b", PolicyKind::Prophet);
        for t in 1..4 {
            a.encounter(
                &mut b,
                SimTime::from_secs(t * 60),
                EncounterBudget::unlimited(),
            );
        }
        let mut restored = DtnNode::restore(&a.snapshot()).unwrap();

        // A message for b should flow from a third node to the restored a?
        // Simpler observable: the restored node still *forwards* toward b
        // better than a cold node would. Check via another encounter: a
        // cold node would not forward c's message for b; warm a does.
        let mut c = node(3, "c", PolicyKind::Prophet);
        let id = c.send("b", b"for b".to_vec(), SimTime::ZERO).unwrap();
        c.encounter(
            &mut restored,
            SimTime::from_secs(300),
            EncounterBudget::unlimited(),
        );
        assert!(
            restored.replica().contains_item(id),
            "restored predictability made the node a custodian"
        );

        let mut cold = node(4, "d", PolicyKind::Prophet);
        let mut c2 = node(5, "e", PolicyKind::Prophet);
        let id2 = c2.send("b", b"for b".to_vec(), SimTime::ZERO).unwrap();
        c2.encounter(
            &mut cold,
            SimTime::from_secs(300),
            EncounterBudget::unlimited(),
        );
        assert!(
            !cold.replica().contains_item(id2),
            "cold node declines custody"
        );
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(DtnNode::restore(&[]).is_err());
        assert!(DtnNode::restore(&[1, 2, 3]).is_err());
        let a = node(1, "a", PolicyKind::Direct);
        let mut snapshot = a.snapshot();
        snapshot.truncate(snapshot.len() / 2);
        assert!(DtnNode::restore(&snapshot).is_err());
    }

    #[test]
    fn restore_with_policy_validates_the_persisted_name() {
        let a = node(1, "a", PolicyKind::MaxProp);
        // Matching instance: state flows through.
        let restored =
            DtnNode::restore_with_policy(&a.snapshot(), PolicyKind::MaxProp.build()).unwrap();
        assert_eq!(restored.policy().name(), "maxprop");
        assert_eq!(restored.id(), a.id());
        // Mismatched instance: typed rejection, not silent state corruption.
        let err =
            DtnNode::restore_with_policy(&a.snapshot(), PolicyKind::Epidemic.build()).unwrap_err();
        assert!(
            matches!(
                &err,
                RestoreError::PolicyMismatch { persisted, expected }
                    if persisted == "maxprop" && expected == "epidemic"
            ),
            "got {err:?}"
        );
        assert!(err.to_string().contains("maxprop"));
    }

    #[test]
    fn restore_overriding_policy_discards_routing_state() {
        let a = node(1, "a", PolicyKind::MaxProp);
        let restored =
            DtnNode::restore_overriding_policy(&a.snapshot(), PolicyKind::Epidemic.build())
                .unwrap();
        assert_eq!(restored.policy().name(), "epidemic");
        assert_eq!(restored.id(), a.id());
    }

    #[test]
    fn debug_shows_policy() {
        let a = node(1, "a", PolicyKind::MaxProp);
        assert!(format!("{a:?}").contains("maxprop"));
    }
}
