//! A DTN host: one replica bundled with its routing policy and addresses.

use std::borrow::Cow;
use std::collections::BTreeSet;
use std::fmt;

use obs::{DropReason, Event, Span};
use pfr::digest::{
    self, DigestRequest, PendingExchange, ReconStats, SummaryOutcome, VersionAnswer, VersionQuery,
};
use pfr::sync::{self, SyncReport};
use pfr::{
    DigestPolicy, Filter, ItemId, PfrError, ReconState, Replica, ReplicaId, SimTime, SyncLimits,
    SyncMode,
};

use crate::durable::RestoreError;
use crate::messaging::{self, Message};
use crate::policy::{DtnPolicy, PolicyKind};
use crate::recon::{DigestExt, RoutingLinks};

/// Resource limits applied to one encounter (paper §VI-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EncounterBudget {
    /// Maximum messages exchanged across both syncs of the encounter
    /// (`None` = unlimited). The paper's bandwidth-constrained experiment
    /// uses `Some(1)`.
    pub max_messages: Option<usize>,
}

impl EncounterBudget {
    /// No limits.
    pub fn unlimited() -> Self {
        EncounterBudget::default()
    }

    /// At most `n` messages across the whole encounter.
    pub fn max_messages(n: usize) -> Self {
        EncounterBudget {
            max_messages: Some(n),
        }
    }
}

/// Reusable encode buffers for [`DtnNode::snapshot_with`]: the replica's
/// inner snapshot and the node wrapper each keep their allocation across
/// calls, so steady-state snapshotting allocates nothing per node.
#[derive(Debug, Default)]
pub struct SnapshotScratch {
    pub(crate) replica: pfr::wire::Writer,
    pub(crate) node: pfr::wire::Writer,
}

impl SnapshotScratch {
    /// Empty scratch buffers.
    pub fn new() -> Self {
        SnapshotScratch::default()
    }
}

/// The result of one encounter (two syncs with roles alternating).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EncounterReport {
    /// Items transmitted in both directions.
    pub transmitted: usize,
    /// Deliveries into each side's filtered store.
    pub delivered: usize,
    /// Ids delivered to the first host of the pair.
    pub delivered_to_a: Vec<ItemId>,
    /// Ids delivered to the second host of the pair.
    pub delivered_to_b: Vec<ItemId>,
    /// Duplicate receipts (must stay zero).
    pub duplicates: usize,
}

impl EncounterReport {
    fn absorb(&mut self, report: SyncReport, to_a: bool) {
        self.transmitted += report.transmitted;
        self.delivered += report.delivered;
        self.duplicates += report.duplicates;
        if to_a {
            self.delivered_to_a.extend(report.delivered_ids);
        } else {
            self.delivered_to_b.extend(report.delivered_ids);
        }
    }
}

/// Target-side continuation of a digest-mode network session: created by
/// [`DtnNode::begin_digest_session`], held by the transport across the
/// wire round trip, and consumed by [`DtnNode::commit_digest_session`]
/// once the batch is applied. Dropping it (a torn session) leaves the
/// snapshot caches untouched, which the next exchange repairs with one
/// fallback round.
#[derive(Debug)]
pub struct DigestSessionState {
    pending: PendingExchange,
    full: pfr::sync::SyncRequest<'static>,
    full_bytes: u64,
    kind: &'static str,
}

impl DigestSessionState {
    /// The equivalent full-mode request — what the target retransmits
    /// when the source cannot resolve the digest.
    pub fn full_request(&self) -> &pfr::sync::SyncRequest<'static> {
        &self.full
    }

    /// Encoded size of the full-mode request: the bytes full mode would
    /// have spent where the digest went instead.
    pub fn full_bytes(&self) -> u64 {
        self.full_bytes
    }

    /// Summary kind of the digest request (`"full"`, `"unchanged"`,
    /// `"delta"`, or `"bloom"`).
    pub fn summary_kind(&self) -> &'static str {
        self.kind
    }
}

/// What a digest request resolved to on the source side of a network
/// session (see [`DtnNode::respond_digest`]).
#[derive(Debug)]
pub enum DigestResponse {
    /// Candidates resolved exactly; this batch closes the exchange.
    Batch(pfr::sync::SyncBatch),
    /// Bloom screening left these versions uncertain: send the query,
    /// feed the answer to [`DtnNode::respond_digest_answer`].
    NeedVersions(VersionQuery),
    /// The summary references state this side does not hold; the target
    /// must retransmit a plain full request
    /// ([`DtnNode::respond_digest_resync`] serves it).
    Resync,
}

/// One device in the DTN: a replica, a routing policy, and the set of
/// addresses it answers for.
///
/// # Examples
///
/// ```
/// use dtn::{DtnNode, EncounterBudget, PolicyKind};
/// use pfr::{ReplicaId, SimTime};
///
/// let mut a = DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic);
/// let mut b = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
/// a.send("b", b"hello".to_vec(), SimTime::ZERO)?;
/// a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());
/// assert_eq!(b.inbox().len(), 1);
/// # Ok::<(), pfr::PfrError>(())
/// ```
pub struct DtnNode {
    replica: Replica,
    policy: Box<dyn DtnPolicy>,
    addresses: BTreeSet<String>,
    extra_filter_addrs: BTreeSet<String>,
    pub(crate) store: Option<store::Store>,
    /// Expiry watermark for [`DtnNode::expire_messages`]: `None` = unknown
    /// (items may have arrived; the next call must scan), `Some(None)` =
    /// no stored message expires, `Some(Some(t))` = nothing expires before
    /// `t`. Purely an acceleration cache — never snapshotted.
    next_expiry: Option<Option<SimTime>>,
    /// How encounters exchange metadata. Runtime configuration, not
    /// snapshotted — a restored node starts in [`SyncMode::Full`] until
    /// its host application reapplies the mode.
    sync_mode: SyncMode,
    /// Reconciliation snapshots for digest-mode knowledge exchange.
    recon: ReconState,
    /// Per-peer routing-state envelope caches (digest mode only).
    links: RoutingLinks,
}

impl DtnNode {
    /// Creates a node with one address and a bundled policy.
    pub fn new(id: ReplicaId, address: &str, policy: PolicyKind) -> Self {
        DtnNode::with_policy(id, address, policy.build())
    }

    /// Creates a node with a custom policy instance.
    pub fn with_policy(id: ReplicaId, address: &str, policy: Box<dyn DtnPolicy>) -> Self {
        let addresses: BTreeSet<String> = [address.to_string()].into_iter().collect();
        let mut node = DtnNode {
            replica: Replica::new(id, Filter::None),
            policy,
            addresses,
            extra_filter_addrs: BTreeSet::new(),
            store: None,
            next_expiry: None,
            sync_mode: SyncMode::default(),
            recon: ReconState::new(),
            links: RoutingLinks::default(),
        };
        node.refresh_filter();
        node
    }

    /// The node's replica id.
    pub fn id(&self) -> ReplicaId {
        self.replica.id()
    }

    /// The addresses this node is final destination for.
    pub fn addresses(&self) -> impl Iterator<Item = &str> {
        self.addresses.iter().map(String::as_str)
    }

    /// Read access to the underlying replica.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    /// Mutable access to the underlying replica (for storage limits etc.).
    pub fn replica_mut(&mut self) -> &mut Replica {
        // The caller can insert items behind our back; force the next
        // expire_messages to rescan.
        self.next_expiry = None;
        &mut self.replica
    }

    /// Read access to the routing policy.
    pub fn policy(&self) -> &dyn DtnPolicy {
        self.policy.as_ref()
    }

    /// The node's metadata exchange mode (see [`DtnNode::set_sync_mode`]).
    pub fn sync_mode(&self) -> SyncMode {
        self.sync_mode
    }

    /// Selects how encounters exchange sync metadata. In
    /// [`SyncMode::Digest`], knowledge vectors travel as compact
    /// reconciliation digests and routing state is delta-encoded against
    /// the last copy the peer saw — but only when *both* encounter
    /// parties run digest mode; a mixed pair falls back to full requests.
    /// Switching modes drops the per-peer digest caches, so the first
    /// digest exchange with each peer starts from scratch.
    pub fn set_sync_mode(&mut self, mode: SyncMode) {
        if self.sync_mode != mode {
            self.sync_mode = mode;
            self.recon.clear_peers();
            self.links.clear();
        }
    }

    /// Overrides the digest summary policy (defaults to
    /// [`DigestPolicy::Auto`]); only meaningful in [`SyncMode::Digest`].
    pub fn set_digest_policy(&mut self, policy: DigestPolicy) {
        self.recon.set_policy(policy);
    }

    /// Overrides the Bloom filter density in bits per version (the
    /// false-positive / digest-size trade; see
    /// [`pfr::digest::ReconState::set_bloom_bits_per_item`]).
    pub fn set_bloom_bits_per_item(&mut self, bits: u32) {
        self.recon.set_bloom_bits_per_item(bits);
    }

    /// Cumulative digest-mode exchange counters for this node's source
    /// role (zero while the node syncs in [`SyncMode::Full`]).
    pub fn recon_stats(&self) -> ReconStats {
        self.recon.stats()
    }

    /// Drops all digest caches — reconciliation snapshots and routing
    /// envelope bases — as a crash that lost in-memory state would. The
    /// next digest exchange with every peer resolves through the
    /// fallback path and reseeds the caches; deliveries are unaffected.
    pub fn clear_recon_state(&mut self) {
        self.recon.clear_peers();
        self.links.clear();
    }

    /// Swaps in a new policy instance, discarding the old one's in-memory
    /// state (models a reboot on a device that never called
    /// [`DtnPolicy::save_state`]). The replica is untouched.
    pub fn replace_policy(&mut self, mut policy: Box<dyn DtnPolicy>) {
        policy.set_local_addresses(self.addresses.clone());
        self.policy = policy;
    }

    /// Replaces the set of addresses this node answers for (the vehicular
    /// experiments re-assign users to buses every day).
    pub fn set_addresses<I, S>(&mut self, addrs: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.addresses = addrs.into_iter().map(Into::into).collect();
        self.refresh_filter();
    }

    /// Sets the extra forwarding addresses in this node's filter — the
    /// multi-address strategies of §IV-B. These addresses receive and
    /// store messages but do not count as deliveries.
    pub fn set_extra_filter_addresses<I, S>(&mut self, addrs: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.extra_filter_addrs = addrs.into_iter().map(Into::into).collect();
        self.refresh_filter();
    }

    fn refresh_filter(&mut self) {
        let filter = messaging::host_filter(
            self.addresses.iter().map(String::as_str),
            self.extra_filter_addrs.iter().map(String::as_str),
        );
        self.replica.set_filter(filter);
        self.policy.set_local_addresses(self.addresses.clone());
    }

    /// Sends a unicast message from this node's first address.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send(&mut self, dest: &str, payload: Vec<u8>, now: SimTime) -> Result<ItemId, PfrError> {
        let src = self
            .addresses
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| self.replica.id().to_string());
        messaging::send_message(&mut self.replica, &src, dest, payload, now)
    }

    /// Sends a unicast message from an explicit source address.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send_from(
        &mut self,
        src: &str,
        dest: &str,
        payload: Vec<u8>,
        now: SimTime,
    ) -> Result<ItemId, PfrError> {
        messaging::send_message(&mut self.replica, src, dest, payload, now)
    }

    /// Sends a multicast message from this node's first address to every
    /// listed recipient; each recipient's filter selects the single shared
    /// item and at-most-once delivery applies per recipient.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send_multicast(
        &mut self,
        dests: &[&str],
        payload: Vec<u8>,
        now: SimTime,
    ) -> Result<ItemId, PfrError> {
        let src = self
            .addresses
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| self.replica.id().to_string());
        messaging::send_multicast(&mut self.replica, &src, dests, payload, now)
    }

    /// Sends a unicast message with a bounded lifetime (see
    /// [`messaging::send_message_with_lifetime`]).
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the replica.
    pub fn send_with_lifetime(
        &mut self,
        dest: &str,
        payload: Vec<u8>,
        now: SimTime,
        lifetime: pfr::SimDuration,
    ) -> Result<ItemId, PfrError> {
        let src = self
            .addresses
            .iter()
            .next()
            .cloned()
            .unwrap_or_else(|| self.replica.id().to_string());
        self.next_expiry = None;
        messaging::send_message_with_lifetime(&mut self.replica, &src, dest, payload, now, lifetime)
    }

    /// Live messages addressed to any of this node's addresses.
    pub fn inbox(&self) -> Vec<Message> {
        self.addresses
            .iter()
            .flat_map(|addr| messaging::inbox(&self.replica, addr))
            .collect()
    }

    /// Drops expired messages (those past their
    /// [`ATTR_EXPIRES_AT`](messaging::ATTR_EXPIRES_AT) time): relayed
    /// copies are purged outright; messages this node originated are
    /// deleted, so their tombstones chase down the remaining copies.
    /// Returns how many messages were expired locally.
    ///
    /// [`DtnNode::encounter`] calls this on both parties before syncing, so
    /// applications using bounded lifetimes need no extra bookkeeping.
    pub fn expire_messages(&mut self, now: SimTime) -> usize {
        // Watermark fast path: skip the store scan entirely when nothing
        // can have expired since the last one. Item arrivals (syncs,
        // lifetime sends, external replica mutation) reset the watermark.
        match self.next_expiry {
            Some(None) => return 0,
            Some(Some(next)) if now < next => return 0,
            _ => {}
        }
        let mut earliest: Option<SimTime> = None;
        let mut expired: Vec<(ItemId, bool)> = Vec::new();
        for item in self.replica.iter_items() {
            if item.is_deleted() {
                continue;
            }
            match messaging::expires_at(item) {
                Some(t) if now >= t => {
                    expired.push((item.id(), item.id().origin() == self.replica.id()));
                }
                Some(t) => earliest = Some(earliest.map_or(t, |e| e.min(t))),
                None => {}
            }
        }
        let mut count = 0;
        let replica_id = self.replica.id().as_u64();
        for (id, is_origin) in expired {
            let dropped = if is_origin {
                self.replica.delete(id).is_ok()
            } else {
                self.replica.purge_relay(id)
            };
            if dropped {
                count += 1;
                self.replica.observer().emit(|| Event::ItemExpired {
                    replica: replica_id,
                    origin: id.origin().as_u64(),
                    seq: id.seq(),
                    at_secs: now.as_secs(),
                });
                self.replica.observer().emit(|| Event::MessageDropped {
                    replica: replica_id,
                    origin: id.origin().as_u64(),
                    seq: id.seq(),
                    reason: DropReason::Expired,
                });
            }
        }
        self.next_expiry = Some(earliest);
        count
    }

    /// Runs one encounter with `other`: two pairwise syncs, alternating the
    /// source/target roles (as the paper's experiments do), under a shared
    /// message budget.
    ///
    /// When the budget is limited, destination-addressed (filter-matched)
    /// messages claim the channel first in both directions — the priority
    /// every studied DTN protocol gives deliveries over relay handoffs —
    /// and relay traffic chosen by the routing policy fills whatever
    /// capacity remains.
    pub fn encounter(
        &mut self,
        other: &mut DtnNode,
        now: SimTime,
        budget: EncounterBudget,
    ) -> EncounterReport {
        let mut report = EncounterReport::default();
        let span = Span::start(
            self.replica.observer(),
            "encounter",
            self.replica.id().as_u64(),
            other.replica.id().as_u64(),
        );

        // Bounded-lifetime housekeeping before anything moves.
        self.expire_messages(now);
        other.expire_messages(now);

        let mut remaining = budget.max_messages;
        if remaining.is_some() {
            // Phase 1 (budgeted encounters only): deliveries first. Plain
            // filtered replication in both directions, so routing-policy
            // hooks fire exactly once per encounter (in phase 2).
            let r = node_sync(self, other, false, limits_for(remaining), now);
            spend(&mut remaining, r.transmitted);
            // Phase-1 deliveries bypass the policy's on_delivered hook via
            // NoExtension; replay them so acknowledgement schemes see them.
            other.notify_delivered(now, &r.delivered_ids, self.replica.id());
            report.absorb(r, false);

            let r = node_sync(other, self, false, limits_for(remaining), now);
            spend(&mut remaining, r.transmitted);
            self.notify_delivered(now, &r.delivered_ids, other.replica.id());
            report.absorb(r, true);
        }

        // Policy phase: self is source, other is target, then roles swap.
        let r1 = node_sync(self, other, true, limits_for(remaining), now);
        spend(&mut remaining, r1.transmitted);
        report.absorb(r1, false);

        let r2 = node_sync(other, self, true, limits_for(remaining), now);
        report.absorb(r2, true);
        if report.transmitted > 0 {
            // Either side may now hold items with earlier expiry times.
            self.next_expiry = None;
            other.next_expiry = None;
        }
        let (a, b) = (self.replica.id().as_u64(), other.replica.id().as_u64());
        let (transmitted, delivered, duplicates) = (
            report.transmitted as u64,
            report.delivered as u64,
            report.duplicates as u64,
        );
        self.replica.observer().emit(|| Event::EncounterCompleted {
            a,
            b,
            transmitted,
            delivered,
            duplicates,
            at_secs: now.as_secs(),
        });
        span.finish();
        report
    }

    /// Begins a sync session in which this node is the *target* (the side
    /// that receives items): produces the request to send to the source.
    /// Used by network transports; local encounters use
    /// [`DtnNode::encounter`].
    pub fn begin_sync_session(
        &mut self,
        source: ReplicaId,
        now: SimTime,
    ) -> pfr::sync::SyncRequest<'_> {
        sync::begin_sync(&mut self.replica, self.policy.as_mut(), now, Some(source))
    }

    /// Answers a sync request as the *source*: selects, orders, and limits
    /// the batch of items for the requesting target.
    pub fn respond_sync(
        &mut self,
        request: &pfr::sync::SyncRequest,
        limits: SyncLimits,
        now: SimTime,
    ) -> pfr::sync::SyncBatch {
        sync::prepare_batch(
            &mut self.replica,
            self.policy.as_mut(),
            request,
            limits,
            now,
        )
    }

    /// Applies a received batch as the *target*, completing the session.
    pub fn apply_sync(&mut self, batch: pfr::sync::SyncBatch, now: SimTime) -> SyncReport {
        if !batch.entries.is_empty() {
            // Arriving items may carry expiry times; rescan next time.
            self.next_expiry = None;
        }
        sync::apply_batch(&mut self.replica, self.policy.as_mut(), batch, now)
    }

    // --- Digest-mode network sessions -----------------------------------
    //
    // The in-process encounter path drives both parties through
    // [`pfr::digest::sync_with_digest`]; a network transport holds only
    // one side, so the same exchange is split into target-role
    // ([`DtnNode::begin_digest_session`] .. [`DtnNode::commit_digest_session`])
    // and source-role ([`DtnNode::respond_digest`] and friends) calls with
    // the wire round trips in between. Routing state rides verbatim here —
    // the delta envelopes of the local path need a same-process back
    // channel to recover from cache loss, which a socket does not offer.
    //
    // Snapshot caches advance independently per side (the target commits
    // after applying the batch, the source when it serves one). A session
    // torn between the two leaves the caches disagreeing, which the next
    // exchange detects by checksum and resolves as a fallback round —
    // degraded bandwidth once, never wrong candidates.

    /// Begins a digest-mode sync session in which this node is the
    /// *target*: produces the compact request to send to the source, plus
    /// the continuation the transport holds across the round trip.
    pub fn begin_digest_session(
        &mut self,
        source: ReplicaId,
        now: SimTime,
    ) -> (DigestRequest, DigestSessionState) {
        let full = sync::begin_sync(&mut self.replica, self.policy.as_mut(), now, Some(source))
            .into_owned();
        let full_bytes = pfr::wire::to_bytes(&full).len() as u64;
        let (request, pending) = self.recon.build_request(source, &full);
        let kind = request.summary.kind();
        (
            request,
            DigestSessionState {
                pending,
                full,
                full_bytes,
                kind,
            },
        )
    }

    /// Answers the exact-membership round of a Bloom digest session (the
    /// source asks about versions its filter screening left uncertain).
    pub fn answer_digest_query(&self, query: &VersionQuery) -> VersionAnswer {
        digest::answer_query(self.replica.knowledge(), query)
    }

    /// Completes a digest session as the *target*: advances the snapshot
    /// cache (only when the exchange conveyed the exact knowledge set —
    /// Bloom rounds are lossy and must not seed deltas), folds the byte
    /// accounting into [`DtnNode::recon_stats`], and emits the session's
    /// `ReconDigest` event.
    pub fn commit_digest_session(
        &mut self,
        source: ReplicaId,
        state: DigestSessionState,
        knowledge_shared: bool,
        digest_bytes: u64,
        fallback_rounds: u64,
        false_positives: u64,
    ) {
        // A resync that retransmitted the full request is accounted as a
        // "full" exchange, mirroring the in-process driver.
        let kind = if fallback_rounds > 0 && knowledge_shared {
            "full"
        } else {
            state.kind
        };
        self.replica.observer().emit(|| Event::ReconDigest {
            replica: self.replica.id().as_u64(),
            peer: source.as_u64(),
            kind,
            digest_bytes,
            full_bytes: state.full_bytes,
            fallback_rounds,
            false_positives,
        });
        self.recon.note_exchange(
            digest_bytes,
            state.full_bytes,
            fallback_rounds,
            false_positives,
        );
        self.recon.commit_sent(state.pending, knowledge_shared);
    }

    /// Answers a digest request as the *source*. A [`DigestResponse::Batch`]
    /// closes the exchange in one reply; the other variants need a further
    /// round trip ([`DtnNode::respond_digest_answer`] after the target
    /// answers a version query, [`DtnNode::respond_digest_resync`] after
    /// it retransmits a full request).
    pub fn respond_digest(
        &mut self,
        request: &DigestRequest,
        limits: SyncLimits,
        now: SimTime,
    ) -> DigestResponse {
        let Some(filter) = self.recon.effective_filter(request.target, request) else {
            // The peer elided a filter we never cached: protocol desync.
            return DigestResponse::Resync;
        };
        match self
            .recon
            .resolve(&self.replica, request.target, &request.summary)
        {
            SummaryOutcome::Resolved(knowledge) => {
                // Bloom-resolved knowledge is a conservative subset, not
                // the peer's exact set; it must not seed the delta cache.
                let exact = request.summary.kind() != "bloom";
                let batch =
                    self.prepare_digest_batch(request, knowledge.clone(), &filter, limits, now);
                self.recon.commit_peer(
                    request.target,
                    exact.then_some(knowledge),
                    request.filter_fingerprint,
                    &filter,
                );
                DigestResponse::Batch(batch)
            }
            SummaryOutcome::NeedVersions(query) => DigestResponse::NeedVersions(query),
            SummaryOutcome::Resync => DigestResponse::Resync,
        }
    }

    /// Continues a [`DigestResponse::NeedVersions`] exchange as the
    /// *source* once the target's answer arrives. `None` when the answer
    /// does not match the query (the caller should fall back to a resync
    /// round).
    pub fn respond_digest_answer(
        &mut self,
        request: &DigestRequest,
        query: &VersionQuery,
        answer: &VersionAnswer,
        limits: SyncLimits,
        now: SimTime,
    ) -> Option<pfr::sync::SyncBatch> {
        let filter = self.recon.effective_filter(request.target, request)?;
        let (known, _false_positives) = digest::knowledge_from_answer(query, answer)?;
        let batch = self.prepare_digest_batch(request, known, &filter, limits, now);
        // Query rounds convey a lossy knowledge view: cache the filter only.
        self.recon
            .commit_peer(request.target, None, request.filter_fingerprint, &filter);
        Some(batch)
    }

    /// Serves the full request a target retransmits after a
    /// [`DigestResponse::Resync`], caching the now exactly-known peer
    /// state so the *next* exchange can summarize again.
    pub fn respond_digest_resync(
        &mut self,
        request: &pfr::sync::SyncRequest,
        limits: SyncLimits,
        now: SimTime,
    ) -> pfr::sync::SyncBatch {
        let batch = self.respond_sync(request, limits, now);
        self.recon.commit_peer(
            request.target,
            Some(request.knowledge.as_ref().clone()),
            request.filter.fingerprint(),
            request.filter.as_ref(),
        );
        batch
    }

    /// Source-role batch preparation shared by the digest reply paths.
    fn prepare_digest_batch(
        &mut self,
        request: &DigestRequest,
        knowledge: pfr::Knowledge,
        filter: &Filter,
        limits: SyncLimits,
        now: SimTime,
    ) -> pfr::sync::SyncBatch {
        let full = pfr::sync::SyncRequest {
            target: request.target,
            knowledge: Cow::Owned(knowledge),
            filter: Cow::Owned(filter.clone()),
            routing: request.routing.clone(),
        };
        sync::prepare_batch(&mut self.replica, self.policy.as_mut(), &full, limits, now)
    }

    /// Serializes the node's full durable state: replica snapshot, address
    /// sets, policy name, and the policy's persistent routing state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut scratch = SnapshotScratch::new();
        self.snapshot_with(&mut scratch).to_vec()
    }

    /// Serializes the node into a caller-owned [`SnapshotScratch`],
    /// returning the encoded bytes (valid until the scratch's next use).
    /// Snapshot-heavy callers — the sharded emulator spills thousands of
    /// nodes per run — reuse one scratch instead of allocating two
    /// buffers per snapshot.
    pub fn snapshot_with<'s>(&self, scratch: &'s mut SnapshotScratch) -> &'s [u8] {
        self.replica.snapshot_into(&mut scratch.replica);
        let w = &mut scratch.node;
        w.clear();
        w.put_bytes(scratch.replica.as_slice());
        w.put_varint(self.addresses.len() as u64);
        for addr in &self.addresses {
            w.put_str(addr);
        }
        w.put_varint(self.extra_filter_addrs.len() as u64);
        for addr in &self.extra_filter_addrs {
            w.put_str(addr);
        }
        w.put_str(self.policy.name());
        w.put_bytes(&self.policy.save_state());
        w.as_slice()
    }

    /// Restores a node from a snapshot, rebuilding the named bundled
    /// policy and its routing state.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for corrupt bytes,
    /// [`RestoreError::UnknownPolicy`] when the persisted policy name is
    /// not in the bundled registry (restore custom policies with
    /// [`DtnNode::restore_with_policy`]).
    pub fn restore(bytes: &[u8]) -> Result<DtnNode, RestoreError> {
        let (replica, addresses, extra, policy_name, policy_state) = Self::parse_snapshot(bytes)?;
        let kind: PolicyKind = policy_name
            .parse()
            .map_err(|_: String| RestoreError::UnknownPolicy(policy_name.clone()))?;
        let mut policy = kind.build();
        policy.restore_state(&policy_state);
        Ok(Self::assemble(replica, addresses, extra, policy))
    }

    /// Restores a node from a snapshot using a caller-provided policy
    /// instance (for policies outside the bundled registry). The policy's
    /// saved state is still applied, so the instance's name must match
    /// the one persisted in the snapshot — feeding one policy's state to
    /// another would silently corrupt routing decisions. To deliberately
    /// switch policies on restore, use
    /// [`DtnNode::restore_overriding_policy`].
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for corrupt bytes,
    /// [`RestoreError::PolicyMismatch`] when the snapshot was written by
    /// a differently-named policy.
    pub fn restore_with_policy(
        bytes: &[u8],
        mut policy: Box<dyn DtnPolicy>,
    ) -> Result<DtnNode, RestoreError> {
        let (replica, addresses, extra, name, policy_state) = Self::parse_snapshot(bytes)?;
        if policy.name() != name {
            return Err(RestoreError::PolicyMismatch {
                persisted: name,
                expected: policy.name().to_string(),
            });
        }
        policy.restore_state(&policy_state);
        Ok(Self::assemble(replica, addresses, extra, policy))
    }

    /// Restores a node from a snapshot with a *different* policy,
    /// discarding the persisted policy name and routing state (the
    /// device was reconfigured across the restart). The replica — items,
    /// knowledge, inbox — is restored in full.
    ///
    /// # Errors
    ///
    /// [`RestoreError::Snapshot`] for corrupt bytes.
    pub fn restore_overriding_policy(
        bytes: &[u8],
        policy: Box<dyn DtnPolicy>,
    ) -> Result<DtnNode, RestoreError> {
        let (replica, addresses, extra, _name, _state) = Self::parse_snapshot(bytes)?;
        Ok(Self::assemble(replica, addresses, extra, policy))
    }

    #[allow(clippy::type_complexity)]
    fn parse_snapshot(
        bytes: &[u8],
    ) -> Result<(Replica, BTreeSet<String>, BTreeSet<String>, String, Vec<u8>), RestoreError> {
        let mut r = pfr::wire::Reader::new(bytes);
        let read = |r: &mut pfr::wire::Reader<'_>| -> Result<_, pfr::wire::WireError> {
            let replica_bytes = r.get_bytes()?.to_vec();
            let mut addresses = BTreeSet::new();
            for _ in 0..r.get_len(1)? {
                addresses.insert(r.get_str()?);
            }
            let mut extra = BTreeSet::new();
            for _ in 0..r.get_len(1)? {
                extra.insert(r.get_str()?);
            }
            let name = r.get_str()?;
            let state = r.get_bytes()?.to_vec();
            Ok((replica_bytes, addresses, extra, name, state))
        };
        let (replica_bytes, addresses, extra, name, state) =
            read(&mut r).map_err(|e| PfrError::SnapshotDecode {
                message: e.to_string(),
            })?;
        let replica = Replica::restore(&replica_bytes)?;
        Ok((replica, addresses, extra, name, state))
    }

    fn assemble(
        replica: Replica,
        addresses: BTreeSet<String>,
        extra_filter_addrs: BTreeSet<String>,
        mut policy: Box<dyn DtnPolicy>,
    ) -> DtnNode {
        policy.set_local_addresses(addresses.clone());
        DtnNode {
            replica,
            policy,
            addresses,
            extra_filter_addrs,
            store: None,
            next_expiry: None,
            sync_mode: SyncMode::default(),
            recon: ReconState::new(),
            links: RoutingLinks::default(),
        }
    }

    /// Ensures `addr` is among this node's addresses (used when a
    /// restored node is reopened under a configured address the snapshot
    /// predates).
    pub(crate) fn ensure_address(&mut self, addr: &str) {
        if !self.addresses.contains(addr) {
            self.addresses.insert(addr.to_string());
            self.refresh_filter();
        }
    }

    fn notify_delivered(&mut self, now: SimTime, delivered: &[ItemId], peer: ReplicaId) {
        if delivered.is_empty() {
            return;
        }
        let mut cx = sync::HostContext::new(&mut self.replica, now, Some(peer));
        self.policy.on_delivered(&mut cx, delivered);
    }
}

/// One directional sync between two co-located nodes, routed through the
/// digest layer when *both* sides run [`SyncMode::Digest`] (a mixed pair
/// speaks the lowest common denominator: full requests). `with_policy`
/// selects the routing-policy extensions; phase-1 delivery syncs pass
/// `false` and run plain filtered replication.
fn node_sync(
    source: &mut DtnNode,
    target: &mut DtnNode,
    with_policy: bool,
    limits: SyncLimits,
    now: SimTime,
) -> SyncReport {
    if source.sync_mode != SyncMode::Digest || target.sync_mode != SyncMode::Digest {
        let (mut none_s, mut none_t) = (sync::NoExtension, sync::NoExtension);
        return if with_policy {
            sync::sync_with(
                &mut source.replica,
                source.policy.as_mut(),
                &mut target.replica,
                target.policy.as_mut(),
                limits,
                now,
            )
        } else {
            sync::sync_with(
                &mut source.replica,
                &mut none_s,
                &mut target.replica,
                &mut none_t,
                limits,
                now,
            )
        };
    }

    let source_id = source.replica.id();
    let target_id = target.replica.id();
    let (report, routing_desync) = if with_policy {
        let mut source_ext = DigestExt::new(source.policy.as_mut(), source.links.link(target_id));
        let mut target_ext = DigestExt::new(target.policy.as_mut(), target.links.link(source_id));
        let report = digest::sync_with_digest(
            &mut source.replica,
            &mut source_ext,
            &mut source.recon,
            &mut target.replica,
            &mut target_ext,
            &mut target.recon,
            limits,
            now,
        );
        (report, source_ext.decode_failed)
    } else {
        let (mut none_s, mut none_t) = (sync::NoExtension, sync::NoExtension);
        let report = digest::sync_with_digest(
            &mut source.replica,
            &mut none_s,
            &mut source.recon,
            &mut target.replica,
            &mut none_t,
            &mut target.recon,
            limits,
            now,
        );
        (report, false)
    };
    if routing_desync {
        // The source could not reconstruct the target's routing envelope
        // (the target's delta assumed a base this side no longer holds);
        // make the target resend the full payload at the next meeting.
        target.links.reset_tx(source_id);
    }
    report
}

fn limits_for(remaining: Option<usize>) -> SyncLimits {
    match remaining {
        Some(n) => SyncLimits::max_items(n),
        None => SyncLimits::unlimited(),
    }
}

fn spend(remaining: &mut Option<usize>, transmitted: usize) {
    if let Some(n) = remaining {
        *n = n.saturating_sub(transmitted);
    }
}

impl fmt::Debug for DtnNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DtnNode")
            .field("id", &self.replica.id())
            .field("policy", &self.policy.name())
            .field("addresses", &self.addresses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u64, addr: &str, kind: PolicyKind) -> DtnNode {
        DtnNode::new(ReplicaId::new(n), addr, kind)
    }

    #[test]
    fn direct_delivery_on_encounter() {
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut b = node(2, "b", PolicyKind::Direct);
        a.send("b", b"hi".to_vec(), SimTime::ZERO).unwrap();
        b.send("a", b"yo".to_vec(), SimTime::ZERO).unwrap();
        let report = a.encounter(&mut b, SimTime::from_secs(1), EncounterBudget::unlimited());
        assert_eq!(report.delivered, 2, "both directions deliver");
        assert_eq!(report.duplicates, 0);
        assert_eq!(a.inbox().len(), 1);
        assert_eq!(b.inbox().len(), 1);
        assert_eq!(report.delivered_to_a.len(), 1);
        assert_eq!(report.delivered_to_b.len(), 1);
    }

    #[test]
    fn encounter_budget_is_shared_across_directions() {
        let mut a = node(1, "a", PolicyKind::Epidemic);
        let mut b = node(2, "b", PolicyKind::Epidemic);
        for i in 0..3 {
            a.send("b", vec![i], SimTime::ZERO).unwrap();
            b.send("a", vec![i], SimTime::ZERO).unwrap();
        }
        let report = a.encounter(
            &mut b,
            SimTime::from_secs(1),
            EncounterBudget::max_messages(1),
        );
        assert_eq!(report.transmitted, 1, "one message per encounter total");
        // Repeated encounters eventually drain the backlog.
        let mut total = report.delivered;
        for t in 2..20 {
            let r = a.encounter(
                &mut b,
                SimTime::from_secs(t),
                EncounterBudget::max_messages(1),
            );
            total += r.delivered;
        }
        assert_eq!(total, 6);
    }

    #[test]
    fn extra_filter_addresses_relay_without_delivering() {
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut c = node(3, "c", PolicyKind::Direct);
        c.set_extra_filter_addresses(["b"]);
        a.send("b", b"m".to_vec(), SimTime::ZERO).unwrap();
        let report = a.encounter(&mut c, SimTime::from_secs(1), EncounterBudget::unlimited());
        assert_eq!(
            report.transmitted, 1,
            "c's widened filter pulls the message"
        );
        assert!(c.inbox().is_empty(), "not addressed to c itself");

        // c later meets b and delivers.
        let mut b = node(2, "b", PolicyKind::Direct);
        let report = c.encounter(&mut b, SimTime::from_secs(2), EncounterBudget::unlimited());
        assert_eq!(report.delivered, 1);
        assert_eq!(b.inbox().len(), 1);
    }

    #[test]
    fn daily_address_reassignment() {
        let mut bus = node(1, "bus-1", PolicyKind::Direct);
        bus.set_addresses(["bus-1", "alice"]);
        let mut other = node(2, "bus-2", PolicyKind::Direct);
        other
            .send("alice", b"mail".to_vec(), SimTime::ZERO)
            .unwrap();
        other.encounter(
            &mut bus,
            SimTime::from_secs(5),
            EncounterBudget::unlimited(),
        );
        assert_eq!(bus.inbox().len(), 1, "bus hosting alice receives her mail");

        // Next day alice moves away; bus-1 no longer receives for her.
        bus.set_addresses(["bus-1"]);
        assert!(bus.inbox().is_empty());
    }

    #[test]
    fn policies_usable_as_trait_objects() {
        for kind in PolicyKind::ALL {
            let mut a = node(1, "a", kind);
            let mut b = node(2, "b", kind);
            a.send("b", b"x".to_vec(), SimTime::ZERO).unwrap();
            let report = a.encounter(&mut b, SimTime::from_secs(1), EncounterBudget::unlimited());
            assert_eq!(report.delivered, 1, "policy {kind} delivers directly");
            assert_eq!(report.duplicates, 0);
        }
    }

    #[test]
    fn expired_messages_stop_moving() {
        use pfr::SimDuration;
        let mut a = node(1, "a", PolicyKind::Epidemic);
        let mut b = node(2, "b", PolicyKind::Epidemic);
        let mut z = node(9, "z", PolicyKind::Epidemic);
        let id = a
            .send_with_lifetime(
                "z",
                b"short-lived".to_vec(),
                SimTime::ZERO,
                SimDuration::from_hours(1),
            )
            .unwrap();

        // Within the lifetime, the message relays normally.
        a.encounter(
            &mut b,
            SimTime::from_hms(0, 0, 30, 0),
            EncounterBudget::unlimited(),
        );
        assert!(b.replica().contains_item(id));

        // Past the lifetime, b's relay copy is purged and a tombstones its
        // original, so z never sees the message.
        let late = SimTime::from_hms(0, 2, 0, 0);
        b.encounter(&mut z, late, EncounterBudget::unlimited());
        assert!(!b.replica().contains_item(id), "relay copy purged");
        assert!(z.inbox().is_empty());
        a.encounter(
            &mut z,
            SimTime::from_hms(0, 3, 0, 0),
            EncounterBudget::unlimited(),
        );
        assert!(z.inbox().is_empty(), "origin tombstoned its own message");
        assert!(a.replica().item(id).unwrap().is_deleted());
    }

    #[test]
    fn unexpired_lifetime_messages_deliver_normally() {
        use pfr::SimDuration;
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut b = node(2, "b", PolicyKind::Direct);
        a.send_with_lifetime(
            "b",
            b"in time".to_vec(),
            SimTime::ZERO,
            SimDuration::from_days(1),
        )
        .unwrap();
        let report = a.encounter(
            &mut b,
            SimTime::from_hms(0, 5, 0, 0),
            EncounterBudget::unlimited(),
        );
        assert_eq!(report.delivered, 1);
        assert_eq!(b.inbox().len(), 1);
    }

    #[test]
    fn multicast_delivers_to_each_recipient_once() {
        for kind in PolicyKind::ALL {
            let mut a = node(1, "a", kind);
            let mut b = node(2, "b", kind);
            let mut c = node(3, "c", kind);
            let id = a
                .send_multicast(&["b", "c"], b"to both".to_vec(), SimTime::ZERO)
                .unwrap();
            let r1 = a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());
            let r2 = a.encounter(
                &mut c,
                SimTime::from_secs(120),
                EncounterBudget::unlimited(),
            );
            assert_eq!(r1.delivered + r2.delivered, 2, "policy {kind}");
            assert_eq!(b.inbox().len(), 1, "policy {kind}");
            assert_eq!(c.inbox().len(), 1, "policy {kind}");
            assert_eq!(b.inbox()[0].id, id);
            assert_eq!(b.inbox()[0].dest, vec!["b".to_string(), "c".to_string()]);
            // Re-encounters move nothing.
            let r3 = a.encounter(
                &mut b,
                SimTime::from_secs(180),
                EncounterBudget::unlimited(),
            );
            assert_eq!(r3.transmitted, 0, "policy {kind}");
        }
    }

    #[test]
    fn multicast_relays_through_predictive_policies() {
        // PROPHET forwards a multicast message when the peer is a better
        // custodian for either recipient.
        let mut a = node(1, "a", PolicyKind::Prophet);
        let mut relay = node(2, "r", PolicyKind::Prophet);
        let mut b = node(3, "b", PolicyKind::Prophet);
        // relay repeatedly meets b, becoming a good custodian for it.
        for t in 1..4 {
            relay.encounter(
                &mut b,
                SimTime::from_secs(t * 60),
                EncounterBudget::unlimited(),
            );
        }
        let id = a
            .send_multicast(&["b", "z"], b"m".to_vec(), SimTime::ZERO)
            .unwrap();
        a.encounter(
            &mut relay,
            SimTime::from_secs(600),
            EncounterBudget::unlimited(),
        );
        assert!(
            relay.replica().contains_item(id),
            "custody accepted for dest b"
        );
    }

    #[test]
    fn snapshot_restore_roundtrip_per_policy() {
        for kind in PolicyKind::ALL {
            let mut a = node(1, "a", kind);
            let mut b = node(2, "b", kind);
            a.set_extra_filter_addresses(["friend"]);
            a.send("b", b"m1".to_vec(), SimTime::ZERO).unwrap();
            b.send("a", b"m2".to_vec(), SimTime::ZERO).unwrap();
            a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());

            let restored = DtnNode::restore(&a.snapshot())
                .unwrap_or_else(|e| panic!("{kind}: restore failed: {e}"));
            assert_eq!(restored.id(), a.id());
            assert_eq!(restored.policy().name(), kind.label());
            assert_eq!(restored.inbox(), a.inbox());
            assert_eq!(
                restored.addresses().collect::<Vec<_>>(),
                a.addresses().collect::<Vec<_>>()
            );
            assert_eq!(restored.replica().item_ids(), a.replica().item_ids());
        }
    }

    #[test]
    fn snapshot_with_scratch_is_byte_identical() {
        let mut a = node(1, "a", PolicyKind::Prophet);
        let mut b = node(2, "b", PolicyKind::Prophet);
        a.send("b", b"payload".to_vec(), SimTime::ZERO).unwrap();
        a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());
        let mut scratch = SnapshotScratch::new();
        for node in [&a, &b] {
            // Same scratch across differently-sized nodes: the bytes must
            // match the allocating path exactly, with no stale residue.
            assert_eq!(node.snapshot_with(&mut scratch), node.snapshot());
        }
    }

    #[test]
    fn restored_node_keeps_routing_state() {
        // PROPHET: predictability toward a partner survives the restart.
        let mut a = node(1, "a", PolicyKind::Prophet);
        let mut b = node(2, "b", PolicyKind::Prophet);
        for t in 1..4 {
            a.encounter(
                &mut b,
                SimTime::from_secs(t * 60),
                EncounterBudget::unlimited(),
            );
        }
        let mut restored = DtnNode::restore(&a.snapshot()).unwrap();

        // A message for b should flow from a third node to the restored a?
        // Simpler observable: the restored node still *forwards* toward b
        // better than a cold node would. Check via another encounter: a
        // cold node would not forward c's message for b; warm a does.
        let mut c = node(3, "c", PolicyKind::Prophet);
        let id = c.send("b", b"for b".to_vec(), SimTime::ZERO).unwrap();
        c.encounter(
            &mut restored,
            SimTime::from_secs(300),
            EncounterBudget::unlimited(),
        );
        assert!(
            restored.replica().contains_item(id),
            "restored predictability made the node a custodian"
        );

        let mut cold = node(4, "d", PolicyKind::Prophet);
        let mut c2 = node(5, "e", PolicyKind::Prophet);
        let id2 = c2.send("b", b"for b".to_vec(), SimTime::ZERO).unwrap();
        c2.encounter(
            &mut cold,
            SimTime::from_secs(300),
            EncounterBudget::unlimited(),
        );
        assert!(
            !cold.replica().contains_item(id2),
            "cold node declines custody"
        );
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(DtnNode::restore(&[]).is_err());
        assert!(DtnNode::restore(&[1, 2, 3]).is_err());
        let a = node(1, "a", PolicyKind::Direct);
        let mut snapshot = a.snapshot();
        snapshot.truncate(snapshot.len() / 2);
        assert!(DtnNode::restore(&snapshot).is_err());
    }

    #[test]
    fn restore_with_policy_validates_the_persisted_name() {
        let a = node(1, "a", PolicyKind::MaxProp);
        // Matching instance: state flows through.
        let restored =
            DtnNode::restore_with_policy(&a.snapshot(), PolicyKind::MaxProp.build()).unwrap();
        assert_eq!(restored.policy().name(), "maxprop");
        assert_eq!(restored.id(), a.id());
        // Mismatched instance: typed rejection, not silent state corruption.
        let err =
            DtnNode::restore_with_policy(&a.snapshot(), PolicyKind::Epidemic.build()).unwrap_err();
        assert!(
            matches!(
                &err,
                RestoreError::PolicyMismatch { persisted, expected }
                    if persisted == "maxprop" && expected == "epidemic"
            ),
            "got {err:?}"
        );
        assert!(err.to_string().contains("maxprop"));
    }

    #[test]
    fn restore_overriding_policy_discards_routing_state() {
        let a = node(1, "a", PolicyKind::MaxProp);
        let restored =
            DtnNode::restore_overriding_policy(&a.snapshot(), PolicyKind::Epidemic.build())
                .unwrap();
        assert_eq!(restored.policy().name(), "epidemic");
        assert_eq!(restored.id(), a.id());
    }

    #[test]
    fn debug_shows_policy() {
        let a = node(1, "a", PolicyKind::MaxProp);
        assert!(format!("{a:?}").contains("maxprop"));
    }

    /// Two identical worlds, one per sync mode: every encounter must
    /// deliver the same messages to the same inboxes.
    #[test]
    fn digest_encounters_deliver_identically_to_full() {
        for kind in PolicyKind::ALL {
            let build = |mode: SyncMode| {
                let mut nodes: Vec<DtnNode> = (1..=3)
                    .map(|n| {
                        let addr = ["a", "b", "c"][n as usize - 1];
                        let mut node = DtnNode::new(ReplicaId::new(n), addr, kind);
                        node.set_sync_mode(mode);
                        node
                    })
                    .collect();
                for i in 0..4u8 {
                    nodes[0].send("c", vec![i], SimTime::ZERO).unwrap();
                    nodes[1].send("a", vec![i], SimTime::ZERO).unwrap();
                }
                nodes
            };
            let mut full = build(SyncMode::Full);
            let mut dig = build(SyncMode::Digest);
            for run in [&mut full, &mut dig] {
                let [a, b, c] = &mut run[..] else {
                    unreachable!()
                };
                for round in 0..3u64 {
                    let t = |s| SimTime::from_secs(round * 600 + s);
                    a.encounter(b, t(0), EncounterBudget::unlimited());
                    b.encounter(c, t(60), EncounterBudget::unlimited());
                }
            }
            for (f, d) in full.iter().zip(dig.iter()) {
                assert_eq!(f.inbox(), d.inbox(), "policy {kind}");
                assert_eq!(
                    f.replica().item_ids(),
                    d.replica().item_ids(),
                    "policy {kind}: stores diverged"
                );
            }
            let digested: u64 = dig.iter().map(|n| n.recon_stats().exchanges).sum();
            assert!(digested > 0, "policy {kind}: digest path never ran");
        }
    }

    #[test]
    fn mixed_mode_pairs_fall_back_to_full_requests() {
        let mut a = node(1, "a", PolicyKind::Epidemic);
        let mut b = node(2, "b", PolicyKind::Epidemic);
        a.set_sync_mode(SyncMode::Digest);
        // b stays in full mode: deliveries work, no digests are spoken.
        a.send("b", b"m".to_vec(), SimTime::ZERO).unwrap();
        let report = a.encounter(&mut b, SimTime::from_secs(1), EncounterBudget::unlimited());
        assert_eq!(report.delivered, 1);
        assert_eq!(a.recon_stats().exchanges, 0);
        assert_eq!(b.recon_stats().exchanges, 0);
    }

    /// The routing envelope is transparent: PROPHET learns exactly the
    /// same predictabilities through delta-encoded vectors as through raw
    /// ones.
    #[test]
    fn digest_mode_preserves_prophet_routing_state() {
        let run = |mode: SyncMode| {
            let mut a = node(1, "a", PolicyKind::Prophet);
            let mut b = node(2, "b", PolicyKind::Prophet);
            let mut c = node(3, "c", PolicyKind::Prophet);
            for n in [&mut a, &mut b, &mut c] {
                n.set_sync_mode(mode);
            }
            for t in 1..5 {
                b.encounter(
                    &mut c,
                    SimTime::from_secs(t * 60),
                    EncounterBudget::unlimited(),
                );
                a.encounter(
                    &mut b,
                    SimTime::from_secs(t * 60 + 30),
                    EncounterBudget::unlimited(),
                );
            }
            (a.policy.save_state(), b.policy.save_state())
        };
        assert_eq!(run(SyncMode::Full), run(SyncMode::Digest));
    }

    /// Steady-state digests must cost a fraction of full metadata. The
    /// no-forwarding baseline with alternating destinations leaves
    /// permanent gaps in the peer's knowledge (every "x" version is a
    /// lasting exception), which is exactly the case where full requests
    /// stay large while repeat digests collapse to "unchanged".
    #[test]
    fn repeat_digest_encounters_cost_less_than_full() {
        let mut a = node(1, "a", PolicyKind::Direct);
        let mut b = node(2, "b", PolicyKind::Direct);
        a.set_sync_mode(SyncMode::Digest);
        b.set_sync_mode(SyncMode::Digest);
        for i in 0..300u32 {
            let dest = if i % 2 == 0 { "b" } else { "x" };
            a.send(dest, vec![i as u8], SimTime::ZERO).unwrap();
        }
        for t in 1..30 {
            a.encounter(
                &mut b,
                SimTime::from_secs(t * 60),
                EncounterBudget::unlimited(),
            );
        }
        let stats = [a.recon_stats(), b.recon_stats()];
        let digest: u64 = stats.iter().map(|s| s.digest_bytes).sum();
        let full: u64 = stats.iter().map(|s| s.full_bytes).sum();
        assert!(
            digest * 3 <= full,
            "steady-state digests should cost <= 1/3 of full metadata: {digest} vs {full}"
        );
    }

    /// Losing one side's digest caches mid-conversation (a crash) makes
    /// the next exchange fall back — and still deliver.
    #[test]
    fn lost_digest_state_degrades_gracefully() {
        let mut a = node(1, "a", PolicyKind::Prophet);
        let mut b = node(2, "b", PolicyKind::Prophet);
        a.set_sync_mode(SyncMode::Digest);
        b.set_sync_mode(SyncMode::Digest);
        for t in 1..4 {
            a.encounter(
                &mut b,
                SimTime::from_secs(t * 60),
                EncounterBudget::unlimited(),
            );
        }
        let fallbacks_before = a.recon_stats().fallback_rounds + b.recon_stats().fallback_rounds;
        b.clear_recon_state();
        a.send("b", b"after the crash".to_vec(), SimTime::from_secs(290))
            .unwrap();
        let report = a.encounter(
            &mut b,
            SimTime::from_secs(300),
            EncounterBudget::unlimited(),
        );
        assert_eq!(report.delivered, 1, "delivery survives the cache loss");
        let fallbacks_after = a.recon_stats().fallback_rounds + b.recon_stats().fallback_rounds;
        assert!(
            fallbacks_after > fallbacks_before,
            "the desynchronized exchange must resolve via fallback"
        );
        // The pair recovers: later encounters digest again without falling
        // back.
        a.encounter(
            &mut b,
            SimTime::from_secs(360),
            EncounterBudget::unlimited(),
        );
        let settled = a.recon_stats().fallback_rounds + b.recon_stats().fallback_rounds;
        a.encounter(
            &mut b,
            SimTime::from_secs(420),
            EncounterBudget::unlimited(),
        );
        assert_eq!(
            a.recon_stats().fallback_rounds + b.recon_stats().fallback_rounds,
            settled,
            "recovered pairs stop falling back"
        );
    }
}
