//! PROPHET: probabilistic routing using delivery predictabilities
//! (Lindgren et al., 2004).

use std::collections::{BTreeMap, BTreeSet};

use pfr::sync::{HostContext, SendDecision, SyncRequest};
use pfr::wire::Writer;
use pfr::{ItemId, Priority, PriorityClass, RoutingState, SimDuration, SimTime, SyncExtension};

use crate::codec;
use crate::policy::{DtnPolicy, PolicySummary};

/// Tunable parameters for [`ProphetPolicy`].
///
/// Defaults are the paper's Table II values: `P_init = 0.75`, `β = 0.25`,
/// `γ = 0.98` (aged once per hour).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProphetParams {
    /// Additive predictability boost on a direct encounter (`P_init`).
    pub p_init: f64,
    /// Transitivity scaling factor (`β`).
    pub beta: f64,
    /// Aging factor applied per aging interval (`γ`).
    pub gamma: f64,
    /// How much elapsed time counts as one aging unit.
    pub aging_interval: SimDuration,
    /// Predictabilities that age below this floor are dropped (treated as
    /// zero). Pruning keeps the vector — which travels in every sync
    /// request — compact, and stops vanishingly small transitive values
    /// from triggering forwarding: without a floor the `P_target >
    /// P_source` rule degenerates into flooding along noise gradients.
    pub floor: f64,
}

impl Default for ProphetParams {
    fn default() -> Self {
        ProphetParams {
            p_init: 0.75,
            beta: 0.25,
            gamma: 0.98,
            aging_interval: SimDuration::from_mins(10),
            floor: 0.3,
        }
    }
}

/// PROPHET as a replication policy (paper §V-C3).
///
/// Each host maintains a *delivery predictability* `P[d] ∈ [0, 1]` per
/// destination address. When hosts meet, predictabilities for the peer's
/// addresses are boosted; all predictabilities age down over time; and the
/// peer's vector (carried in the sync request) is folded in transitively.
/// A message is forwarded only to peers with strictly greater
/// predictability for its destination.
///
/// Each encounter runs two syncs with the roles swapped; a host updates
/// its vector when acting as *source* (in `process_request`), so each
/// host's vector is updated exactly once per encounter — matching §V-C3.
///
/// # Examples
///
/// ```
/// use dtn::{DtnPolicy, ProphetPolicy};
///
/// let policy = ProphetPolicy::default();
/// assert_eq!(policy.name(), "prophet");
/// assert_eq!(policy.params().p_init, 0.75);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ProphetPolicy {
    params: ProphetParams,
    /// Own delivery predictabilities, keyed by destination address.
    predictability: BTreeMap<String, f64>,
    /// The peer's vector from the most recent request (used by `to_send`).
    peer_predictability: BTreeMap<String, f64>,
    /// Addresses this host is final destination for.
    local_addrs: BTreeSet<String>,
    /// Last time the vector was aged.
    last_aged: SimTime,
}

impl ProphetPolicy {
    /// Creates the policy with explicit parameters.
    pub fn new(params: ProphetParams) -> Self {
        ProphetPolicy {
            params,
            ..ProphetPolicy::default()
        }
    }

    /// The policy's parameters.
    pub fn params(&self) -> ProphetParams {
        self.params
    }

    /// The current delivery predictability for an address (0 if never
    /// encountered).
    pub fn predictability(&self, addr: &str) -> f64 {
        self.predictability.get(addr).copied().unwrap_or(0.0)
    }

    /// Ages all predictabilities: `P *= γ^k` where `k` is the number of
    /// whole aging intervals elapsed (paper: "aged down while disconnected").
    fn age(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_aged);
        let units = elapsed.as_secs() / self.params.aging_interval.as_secs().max(1);
        if units == 0 {
            return;
        }
        let factor = self.params.gamma.powi(units.min(10_000) as i32);
        for p in self.predictability.values_mut() {
            *p *= factor;
        }
        let floor = self.params.floor;
        self.predictability.retain(|_, p| *p >= floor);
        self.last_aged = now;
    }

    /// Direct-encounter update for one peer address:
    /// `P = P + (1 - P) * P_init`.
    fn boost_direct(&mut self, addr: &str) {
        let p = self.predictability.entry(addr.to_string()).or_insert(0.0);
        *p += (1.0 - *p) * self.params.p_init;
    }

    /// Transitive update through the peer: for each destination `c` the
    /// peer predicts with `p_bc`, `P[c] += (1 - P[c]) * P[peer] * p_bc * β`.
    fn fold_transitive(&mut self, p_peer_link: f64, peer_vector: &BTreeMap<String, f64>) {
        for (addr, &p_bc) in peer_vector {
            if self.local_addrs.contains(addr) {
                continue;
            }
            let p = self.predictability.entry(addr.clone()).or_insert(0.0);
            *p += (1.0 - *p) * p_peer_link * p_bc * self.params.beta;
        }
    }
}

impl SyncExtension for ProphetPolicy {
    fn label(&self) -> &'static str {
        "prophet"
    }

    fn generate_request(&mut self, cx: &mut HostContext<'_>) -> RoutingState {
        self.age(cx.now());
        let mut w = Writer::new();
        codec::put_addrs(&mut w, &self.local_addrs);
        codec::put_addr_probs(&mut w, &self.predictability);
        codec::finish(w)
    }

    fn process_request(&mut self, cx: &mut HostContext<'_>, request: &SyncRequest) {
        self.age(cx.now());
        let mut r = codec::open(&request.routing);
        let (peer_addrs, peer_vector) =
            match (codec::get_addrs(&mut r), codec::get_addr_probs(&mut r)) {
                (Ok(a), Ok(v)) => (a, v),
                _ => return, // peer runs a different policy; no routing data
            };

        // Direct component: meeting the peer boosts its addresses.
        for addr in &peer_addrs {
            self.boost_direct(addr);
        }
        // Link strength to the peer = best predictability over its
        // addresses (after the boost).
        let p_peer_link = peer_addrs
            .iter()
            .map(|a| self.predictability(a))
            .fold(0.0f64, f64::max);
        // Transitive component through the peer's own vector.
        self.fold_transitive(p_peer_link, &peer_vector);
        // Prune sub-floor values immediately: weak transitive traces must
        // not open forwarding gradients (see [`ProphetParams::floor`]).
        let floor = self.params.floor;
        self.predictability.retain(|_, p| *p >= floor);
        // Cache the peer's vector for the forwarding decisions that follow
        // in this same sync.
        self.peer_predictability = peer_vector;
        for addr in peer_addrs {
            // The peer trivially delivers to itself.
            self.peer_predictability.insert(addr, 1.0);
        }
    }

    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        _request: &SyncRequest,
    ) -> SendDecision {
        let Some(item) = cx.replica().item(item_id) else {
            return SendDecision::Skip;
        };
        if item.is_deleted() {
            return SendDecision::Send(Priority::normal());
        }
        let dests = crate::messaging::dest_addresses(item);
        if dests.is_empty() {
            return SendDecision::Skip;
        }
        // Multicast: forward if the peer is a better custodian for *any*
        // remaining destination; urgency follows the best such gain.
        let mut best_gain: Option<f64> = None;
        for dest in dests {
            let mine = self.predictability(dest);
            let theirs = self.peer_predictability.get(dest).copied().unwrap_or(0.0);
            if theirs > mine {
                best_gain = Some(best_gain.map_or(theirs, |g: f64| g.max(theirs)));
            }
        }
        match best_gain {
            // Higher peer confidence transmits earlier.
            Some(theirs) => SendDecision::Send(Priority::new(PriorityClass::Normal, 1.0 - theirs)),
            None => SendDecision::Skip,
        }
    }
}

impl DtnPolicy for ProphetPolicy {
    fn name(&self) -> &'static str {
        "prophet"
    }

    fn summary(&self) -> PolicySummary {
        PolicySummary {
            protocol: "PROPHET",
            routing_state: "vector of delivery predictabilities: P[d] for each dest d",
            added_to_sync_request: "target's P vector",
            source_forwarding_policy: "messages addressed to dest when target's P[dest] > source's",
            parameters: vec![
                ("Pinit".to_string(), format!("{}", self.params.p_init)),
                ("beta".to_string(), format!("{}", self.params.beta)),
                ("gamma".to_string(), format!("{}", self.params.gamma)),
            ],
        }
    }

    fn set_local_addresses(&mut self, addrs: BTreeSet<String>) {
        self.local_addrs = addrs;
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        codec::put_addr_probs(&mut w, &self.predictability);
        w.put_varint(self.last_aged.as_secs());
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        let mut r = pfr::wire::Reader::new(bytes);
        if let (Ok(probs), Ok(secs)) = (codec::get_addr_probs(&mut r), r.get_varint()) {
            self.predictability = probs;
            self.last_aged = SimTime::from_secs(secs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messaging::ATTR_DEST;
    use pfr::{sync, AttributeMap, Filter, Replica, ReplicaId, SyncLimits};

    fn host(n: u64, addr: &str) -> (Replica, ProphetPolicy) {
        let replica = Replica::new(ReplicaId::new(n), Filter::address(ATTR_DEST, addr));
        let mut policy = ProphetPolicy::default();
        policy.set_local_addresses([addr.to_string()].into_iter().collect());
        (replica, policy)
    }

    fn encounter(a: &mut (Replica, ProphetPolicy), b: &mut (Replica, ProphetPolicy), t: u64) {
        let now = SimTime::from_secs(t);
        sync::sync_with(
            &mut a.0,
            &mut a.1,
            &mut b.0,
            &mut b.1,
            SyncLimits::unlimited(),
            now,
        );
        sync::sync_with(
            &mut b.0,
            &mut b.1,
            &mut a.0,
            &mut a.1,
            SyncLimits::unlimited(),
            now,
        );
    }

    #[test]
    fn direct_encounters_boost_predictability() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        assert_eq!(a.1.predictability("b"), 0.0);
        encounter(&mut a, &mut b, 0);
        let p1 = a.1.predictability("b");
        assert!(
            (p1 - 0.75).abs() < 1e-9,
            "first meeting gives P_init, got {p1}"
        );
        encounter(&mut a, &mut b, 10);
        let p2 = a.1.predictability("b");
        assert!(p2 > p1 && p2 < 1.0, "repeat meetings increase P: {p2}");
        // Symmetric on b's side.
        assert!(b.1.predictability("a") >= 0.75 - 1e-9);
    }

    #[test]
    fn predictability_ages_down() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        encounter(&mut a, &mut b, 0);
        let before = a.1.predictability("b");
        // Two hours later (12 ten-minute aging units), an encounter with an
        // unrelated host triggers aging.
        let mut c = host(3, "c");
        encounter(&mut a, &mut c, 2 * 3600);
        let after = a.1.predictability("b");
        let expected = before * 0.98f64.powi(12);
        assert!(
            (after - expected).abs() < 1e-9,
            "expected {expected}, got {after}"
        );
    }

    #[test]
    fn predictability_prunes_below_floor() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        encounter(&mut a, &mut b, 0);
        assert!(a.1.predictability("b") > 0.0);
        // Long enough for 0.75 to age under the 0.3 floor (gamma^k < 0.4).
        let mut c = host(3, "c");
        encounter(&mut a, &mut c, 10 * 3600);
        assert_eq!(
            a.1.predictability("b"),
            0.0,
            "sub-floor predictabilities must be dropped"
        );
    }

    #[test]
    fn transitivity_builds_indirect_predictability() {
        // Use a zero floor so weak transitive values are observable.
        let params = ProphetParams {
            floor: 0.0,
            ..ProphetParams::default()
        };
        let mk = |n: u64, addr: &str| {
            let replica = Replica::new(ReplicaId::new(n), Filter::address(ATTR_DEST, addr));
            let mut policy = ProphetPolicy::new(params);
            policy.set_local_addresses([addr.to_string()].into_iter().collect());
            (replica, policy)
        };
        let mut a = mk(1, "a");
        let mut b = mk(2, "b");
        let mut c = mk(3, "c");
        // b meets c, then a meets b: a should learn about c through b.
        encounter(&mut b, &mut c, 0);
        encounter(&mut a, &mut b, 60);
        let p_ac = a.1.predictability("c");
        assert!(p_ac > 0.0, "transitive predictability must appear");
        assert!(
            p_ac < a.1.predictability("b"),
            "indirect < direct: {p_ac} vs {}",
            a.1.predictability("b")
        );
    }

    #[test]
    fn forwards_only_to_better_custodians() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut c = host(3, "c");
        let mut d = host(4, "d");

        // b frequently meets d; c never does.
        for i in 0..3 {
            encounter(&mut b, &mut d, i * 60);
        }
        // a holds a message for d.
        let mut attrs = AttributeMap::new();
        attrs.set(ATTR_DEST, "d");
        let id = a.0.insert(attrs, vec![]).unwrap();

        // a meets c (P_c[d] = 0 = P_a[d]): no forwarding.
        encounter(&mut a, &mut c, 1000);
        assert!(
            !c.0.contains_item(id),
            "equal predictability must not forward"
        );

        // a meets b (P_b[d] > 0 = P_a[d]): forward.
        encounter(&mut a, &mut b, 2000);
        assert!(
            b.0.contains_item(id),
            "better custodian receives the message"
        );
    }

    #[test]
    fn peer_self_addresses_count_as_certain_delivery() {
        // A host's predictability for its own address is treated as 1.0,
        // so messages addressed to the peer itself always flow (they also
        // match the peer's filter, but relayed copies of multi-address
        // items rely on this).
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        encounter(&mut a, &mut b, 0);
        assert_eq!(a.1.peer_predictability.get("b"), Some(&1.0));
    }

    #[test]
    fn summary_matches_tables() {
        let s = ProphetPolicy::default().summary();
        assert!(s.added_to_sync_request.contains("P vector"));
        assert_eq!(
            s.parameters,
            vec![
                ("Pinit".to_string(), "0.75".to_string()),
                ("beta".to_string(), "0.25".to_string()),
                ("gamma".to_string(), "0.98".to_string()),
            ]
        );
    }
}
