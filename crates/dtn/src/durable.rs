//! Durability seam: a [`DtnNode`] backed by the crash-safe [`store`]
//! engine, so replica items, knowledge, addresses, and routing state all
//! survive `kill -9`.
//!
//! The node's whole state serializes to one snapshot (see
//! [`DtnNode::snapshot`]); persistence writes that snapshot as a single
//! `Put` into the store's WAL. Whole-value puts make replay idempotent,
//! so a crash between fsync and anything else costs at most the syncs
//! since the last [`DtnNode::persist`] — and at-most-once delivery still
//! holds, because a restored node's knowledge matches its restored items
//! and the protocol simply re-replicates whatever was lost.

use std::path::Path;

use obs::Obs;
use pfr::{PfrError, ReplicaId, SimTime};
use store::{RecoveryReport, Store, StoreConfig, StoreError};

use crate::host::DtnNode;
use crate::policy::PolicyKind;

/// Store key holding the node snapshot.
const KEY_NODE: &[u8] = b"node";
/// Store key holding the sim time of the last persist (varint seconds).
const KEY_PERSISTED_AT: &[u8] = b"meta/persisted_at";

/// Why a persisted node could not be brought back.
#[derive(Debug)]
#[non_exhaustive]
pub enum RestoreError {
    /// The snapshot bytes were corrupt (see the inner [`PfrError`]).
    Snapshot(PfrError),
    /// The snapshot names a policy outside the bundled registry.
    UnknownPolicy(String),
    /// The snapshot was written under a different policy than the one
    /// now configured; routing state is not transferable between
    /// policies, so this is an error rather than a silent reset.
    PolicyMismatch {
        /// Policy name stored in the snapshot.
        persisted: String,
        /// Policy name the caller configured.
        expected: String,
    },
    /// The persisted node has a different replica id than the one now
    /// configured — almost certainly a data directory mix-up, and
    /// resuming under a new id would violate at-most-once delivery.
    IdMismatch {
        /// Replica id stored in the data directory.
        persisted: ReplicaId,
        /// Replica id the caller configured.
        expected: ReplicaId,
    },
    /// The storage engine failed (I/O, not corruption — corruption is
    /// tolerated by recovery and surfaces in the [`RecoveryReport`]).
    Store(StoreError),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Snapshot(e) => write!(f, "node snapshot: {e}"),
            RestoreError::UnknownPolicy(name) => {
                write!(f, "snapshot names unknown policy {name:?}")
            }
            RestoreError::PolicyMismatch {
                persisted,
                expected,
            } => write!(
                f,
                "persisted policy {persisted:?} does not match configured policy {expected:?}"
            ),
            RestoreError::IdMismatch {
                persisted,
                expected,
            } => write!(
                f,
                "data directory belongs to replica {persisted}, not {expected}"
            ),
            RestoreError::Store(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RestoreError::Snapshot(e) => Some(e),
            RestoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PfrError> for RestoreError {
    fn from(e: PfrError) -> Self {
        RestoreError::Snapshot(e)
    }
}

impl From<StoreError> for RestoreError {
    fn from(e: StoreError) -> Self {
        RestoreError::Store(e)
    }
}

impl DtnNode {
    /// Opens (creating if necessary) a durable node whose state lives in
    /// `dir`. A fresh directory yields a new node with `id`, `address`,
    /// and `kind`; an existing one restores the persisted node — items,
    /// knowledge, addresses, routing state — after validating that the
    /// configured policy and replica id match what was persisted. The
    /// configured `address` is added to a restored node's address set if
    /// the snapshot predates it.
    ///
    /// # Errors
    ///
    /// See [`RestoreError`]. Torn WAL tails and corrupt checkpoints are
    /// *not* errors — the engine recovers past them; inspect
    /// [`DtnNode::store`]'s [`RecoveryReport`] for what was tolerated.
    ///
    /// # Examples
    ///
    /// ```
    /// use dtn::{DtnNode, PolicyKind};
    /// use pfr::{ReplicaId, SimTime};
    ///
    /// let dir = std::env::temp_dir().join("dtn-open-doc");
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let mut node = DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic)?;
    /// node.send("b", b"durable".to_vec(), SimTime::ZERO).unwrap();
    /// node.persist(SimTime::ZERO)?;
    /// drop(node); // or kill -9
    ///
    /// let node = DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic)?;
    /// assert_eq!(node.replica().item_ids().len(), 1);
    /// # std::fs::remove_dir_all(&dir).unwrap();
    /// # Ok::<(), dtn::RestoreError>(())
    /// ```
    pub fn open(
        dir: impl AsRef<Path>,
        id: ReplicaId,
        address: &str,
        kind: PolicyKind,
    ) -> Result<DtnNode, RestoreError> {
        DtnNode::open_observed(dir, id, address, kind, Obs::none())
    }

    /// [`DtnNode::open`] with an observer receiving the store's WAL,
    /// checkpoint, and recovery events. The observer is *not* attached
    /// to the replica — wire that separately via
    /// [`pfr::Replica::set_observer`].
    ///
    /// # Errors
    ///
    /// See [`DtnNode::open`].
    pub fn open_observed(
        dir: impl AsRef<Path>,
        id: ReplicaId,
        address: &str,
        kind: PolicyKind,
        obs: Obs,
    ) -> Result<DtnNode, RestoreError> {
        let store = Store::open_with(dir, StoreConfig::default(), obs)?;
        let mut node = match store.get(KEY_NODE) {
            Some(bytes) => {
                let node = DtnNode::restore(bytes)?;
                if node.policy().name() != kind.label() {
                    return Err(RestoreError::PolicyMismatch {
                        persisted: node.policy().name().to_string(),
                        expected: kind.label().to_string(),
                    });
                }
                if node.id() != id {
                    return Err(RestoreError::IdMismatch {
                        persisted: node.id(),
                        expected: id,
                    });
                }
                node
            }
            None => DtnNode::new(id, address, kind),
        };
        node.ensure_address(address);
        node.store = Some(store);
        Ok(node)
    }

    /// Attaches an already-opened store, making [`DtnNode::persist`]
    /// write there. Used when nodes are built some other way (e.g. the
    /// emulator) and durability is bolted on afterwards.
    pub fn attach_store(&mut self, store: Store) {
        self.store = Some(store);
    }

    /// The attached store, if this node is durable.
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Writes the node's full snapshot to the attached store — WAL
    /// append, fsynced under the default config — plus the persist
    /// timestamp. Returns `false` (doing nothing) when no store is
    /// attached, so callers can persist unconditionally.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on I/O failure; in-memory state is unaffected.
    pub fn persist(&mut self, now: SimTime) -> Result<bool, StoreError> {
        if self.store.is_none() {
            return Ok(false);
        }
        let snapshot = self.snapshot();
        let mut w = pfr::wire::Writer::new();
        w.put_varint(now.as_secs());
        let stamp = w.into_bytes();
        let store = self.store.as_mut().expect("checked above");
        store.put(KEY_NODE, &snapshot)?;
        store.put(KEY_PERSISTED_AT, &stamp)?;
        Ok(true)
    }

    /// The sim time of the last [`DtnNode::persist`] recorded in the
    /// attached store, if any.
    pub fn persisted_at(&self) -> Option<SimTime> {
        let bytes = self.store.as_ref()?.get(KEY_PERSISTED_AT)?;
        let mut r = pfr::wire::Reader::new(bytes);
        r.get_varint().ok().map(SimTime::from_secs)
    }

    /// What the storage engine's recovery found when this node's store
    /// was opened (`None` for non-durable nodes).
    pub fn recovery(&self) -> Option<&RecoveryReport> {
        self.store.as_ref().map(Store::recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::EncounterBudget;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dtn-durable-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_persist_reopen_preserves_inbox_and_knowledge() {
        let dir = tmp_dir("roundtrip");
        {
            let mut peer = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
            let mut node =
                DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
            assert!(node.recovery().is_some());
            peer.send("a", b"to a".to_vec(), SimTime::ZERO).unwrap();
            node.encounter(
                &mut peer,
                SimTime::from_secs(60),
                EncounterBudget::unlimited(),
            );
            assert_eq!(node.inbox().len(), 1);
            assert!(node.persist(SimTime::from_secs(60)).unwrap());
            // Dropped without any orderly shutdown: the WAL already has it.
        }
        let node = DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
        assert_eq!(node.inbox().len(), 1);
        assert_eq!(node.inbox()[0].payload, b"to a");
        assert_eq!(node.persisted_at(), Some(SimTime::from_secs(60)));
        assert!(node.recovery().unwrap().recovered_state());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopened_node_does_not_accept_duplicates() {
        let dir = tmp_dir("amo");
        let mut peer = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
        {
            let mut node =
                DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
            peer.send("a", b"once".to_vec(), SimTime::ZERO).unwrap();
            node.encounter(
                &mut peer,
                SimTime::from_secs(1),
                EncounterBudget::unlimited(),
            );
            node.persist(SimTime::from_secs(1)).unwrap();
        }
        let mut node = DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
        let report = node.encounter(
            &mut peer,
            SimTime::from_secs(2),
            EncounterBudget::unlimited(),
        );
        assert_eq!(report.transmitted, 0, "knowledge survived the restart");
        assert_eq!(report.duplicates, 0);
        assert_eq!(node.inbox().len(), 1, "exactly once, not twice");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unpersisted_tail_is_rereplicated_not_duplicated() {
        // Crash *after* receiving but *before* persisting: the restored
        // node is behind, and the protocol re-sends without duplicating.
        let dir = tmp_dir("tail");
        let mut peer = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
        {
            let mut node =
                DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
            peer.send("a", b"early".to_vec(), SimTime::ZERO).unwrap();
            node.encounter(
                &mut peer,
                SimTime::from_secs(1),
                EncounterBudget::unlimited(),
            );
            node.persist(SimTime::from_secs(1)).unwrap();
            peer.send("a", b"late".to_vec(), SimTime::ZERO).unwrap();
            node.encounter(
                &mut peer,
                SimTime::from_secs(2),
                EncounterBudget::unlimited(),
            );
            assert_eq!(node.inbox().len(), 2);
            // Crash without persisting the second delivery.
        }
        let mut node = DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
        assert_eq!(node.inbox().len(), 1, "rolled back to the persist point");
        let report = node.encounter(
            &mut peer,
            SimTime::from_secs(3),
            EncounterBudget::unlimited(),
        );
        assert_eq!(report.duplicates, 0);
        assert_eq!(node.inbox().len(), 2, "lost delivery re-replicated");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_policy_and_id_mismatches() {
        let dir = tmp_dir("mismatch");
        {
            let mut node =
                DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Prophet).unwrap();
            node.persist(SimTime::ZERO).unwrap();
        }
        let err = DtnNode::open(&dir, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap_err();
        assert!(
            matches!(
                &err,
                RestoreError::PolicyMismatch { persisted, expected }
                    if persisted == "prophet" && expected == "epidemic"
            ),
            "got {err:?}"
        );
        let err = DtnNode::open(&dir, ReplicaId::new(9), "a", PolicyKind::Prophet).unwrap_err();
        assert!(
            matches!(
                &err,
                RestoreError::IdMismatch { persisted, expected }
                    if *persisted == ReplicaId::new(1) && *expected == ReplicaId::new(9)
            ),
            "got {err:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn configured_address_is_added_to_a_restored_node() {
        let dir = tmp_dir("addr");
        {
            let mut node =
                DtnNode::open(&dir, ReplicaId::new(1), "old", PolicyKind::Direct).unwrap();
            node.persist(SimTime::ZERO).unwrap();
        }
        let node = DtnNode::open(&dir, ReplicaId::new(1), "new", PolicyKind::Direct).unwrap();
        let addrs: Vec<&str> = node.addresses().collect();
        assert!(
            addrs.contains(&"old") && addrs.contains(&"new"),
            "{addrs:?}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_without_store_is_a_cheap_no_op() {
        let mut node = DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Direct);
        assert!(!node.persist(SimTime::ZERO).unwrap());
        assert!(node.store().is_none());
        assert!(node.persisted_at().is_none());
    }
}
