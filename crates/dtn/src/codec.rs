//! Encodings for policy routing state carried in sync requests.
//!
//! Each policy defines its own routing payload (paper §V-A, requirement 2);
//! these helpers encode the common shapes — probability vectors keyed by
//! address or replica, address sets, and acknowledgement lists — with the
//! same compact wire primitives as the substrate.

use std::collections::{BTreeMap, BTreeSet};

use pfr::wire::{Decode, Encode, Reader, WireError, Writer};
use pfr::{ItemId, ReplicaId, RoutingState};

/// A probability vector keyed by destination address.
pub(crate) fn put_addr_probs(w: &mut Writer, probs: &BTreeMap<String, f64>) {
    w.put_varint(probs.len() as u64);
    for (addr, p) in probs {
        w.put_str(addr);
        w.put_f64(*p);
    }
}

pub(crate) fn get_addr_probs(r: &mut Reader<'_>) -> Result<BTreeMap<String, f64>, WireError> {
    let len = r.get_len(2)?;
    let mut out = BTreeMap::new();
    for _ in 0..len {
        let addr = r.get_str()?;
        let p = r.get_f64()?;
        out.insert(addr, p);
    }
    Ok(out)
}

/// A probability vector keyed by replica (node) id.
pub(crate) fn put_node_probs(w: &mut Writer, probs: &BTreeMap<ReplicaId, f64>) {
    w.put_varint(probs.len() as u64);
    for (node, p) in probs {
        node.encode(w);
        w.put_f64(*p);
    }
}

pub(crate) fn get_node_probs(r: &mut Reader<'_>) -> Result<BTreeMap<ReplicaId, f64>, WireError> {
    let len = r.get_len(2)?;
    let mut out = BTreeMap::new();
    for _ in 0..len {
        let node = ReplicaId::decode(r)?;
        let p = r.get_f64()?;
        out.insert(node, p);
    }
    Ok(out)
}

/// A set of addresses (the sender's current local addresses).
pub(crate) fn put_addrs(w: &mut Writer, addrs: &BTreeSet<String>) {
    w.put_varint(addrs.len() as u64);
    for a in addrs {
        w.put_str(a);
    }
}

pub(crate) fn get_addrs(r: &mut Reader<'_>) -> Result<BTreeSet<String>, WireError> {
    let len = r.get_len(1)?;
    let mut out = BTreeSet::new();
    for _ in 0..len {
        out.insert(r.get_str()?);
    }
    Ok(out)
}

/// A set of item ids (MaxProp delivery acknowledgements).
pub(crate) fn put_item_ids(w: &mut Writer, ids: &BTreeSet<ItemId>) {
    w.put_varint(ids.len() as u64);
    for id in ids {
        id.encode(w);
    }
}

pub(crate) fn get_item_ids(r: &mut Reader<'_>) -> Result<BTreeSet<ItemId>, WireError> {
    let len = r.get_len(2)?;
    let mut out = BTreeSet::new();
    for _ in 0..len {
        out.insert(ItemId::decode(r)?);
    }
    Ok(out)
}

/// Finishes a writer into a [`RoutingState`].
pub(crate) fn finish(w: Writer) -> RoutingState {
    RoutingState::from_bytes(w.into_bytes())
}

/// Opens a routing state for reading; a decode failure means the peer runs
/// a different (or corrupt) policy — callers treat it as "no routing data".
pub(crate) fn open(state: &RoutingState) -> Reader<'_> {
    Reader::new(state.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_probs_roundtrip() {
        let mut probs = BTreeMap::new();
        probs.insert("a".to_string(), 0.5);
        probs.insert("b".to_string(), 0.125);
        let mut w = Writer::new();
        put_addr_probs(&mut w, &probs);
        let state = finish(w);
        let mut r = open(&state);
        assert_eq!(get_addr_probs(&mut r).unwrap(), probs);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn node_probs_roundtrip() {
        let mut probs = BTreeMap::new();
        probs.insert(ReplicaId::new(1), 0.25);
        probs.insert(ReplicaId::new(9), 0.75);
        let mut w = Writer::new();
        put_node_probs(&mut w, &probs);
        let bytes = w.into_bytes();
        assert_eq!(get_node_probs(&mut Reader::new(&bytes)).unwrap(), probs);
    }

    #[test]
    fn addrs_and_ids_roundtrip() {
        let addrs: BTreeSet<String> = ["u1", "u2"].iter().map(|s| s.to_string()).collect();
        let ids: BTreeSet<ItemId> = [
            ItemId::new(ReplicaId::new(1), 1),
            ItemId::new(ReplicaId::new(2), 7),
        ]
        .into_iter()
        .collect();
        let mut w = Writer::new();
        put_addrs(&mut w, &addrs);
        put_item_ids(&mut w, &ids);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_addrs(&mut r).unwrap(), addrs);
        assert_eq!(get_item_ids(&mut r).unwrap(), ids);
    }

    #[test]
    fn corrupt_state_fails_cleanly() {
        let state = RoutingState::from_bytes(vec![0xff, 0xff, 0xff]);
        let mut r = open(&state);
        assert!(get_addr_probs(&mut r).is_err());
    }
}
