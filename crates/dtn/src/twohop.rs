//! Two-hop relay routing (Grossglauser & Tse, 2002) — an extension beyond
//! the paper's four case studies.
//!
//! The oldest bound on DTN copy spread: the *source* hands a copy to every
//! node it meets, but relays never re-forward — every delivery path has at
//! most two hops (source → relay → destination). Expressed as a
//! replication policy it is a two-line forwarding rule, which makes it a
//! nice demonstration of how little code a new protocol needs on this
//! substrate.

use pfr::sync::{HostContext, SendDecision, SyncRequest};
use pfr::{ItemId, Priority, ReplicaId, SyncExtension};

use crate::policy::{DtnPolicy, PolicySummary};

/// Two-hop relay as a replication policy.
///
/// `to_send` forwards a message only when the local node *originated* it;
/// received copies wait for a direct encounter with the destination
/// (which the substrate serves through the filter match, outside the
/// policy).
///
/// # Examples
///
/// ```
/// use dtn::{DtnPolicy, TwoHopRelayPolicy};
///
/// let policy = TwoHopRelayPolicy::new();
/// assert_eq!(policy.name(), "twohop");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TwoHopRelayPolicy;

impl TwoHopRelayPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        TwoHopRelayPolicy
    }
}

impl SyncExtension for TwoHopRelayPolicy {
    fn label(&self) -> &'static str {
        "twohop"
    }

    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        _request: &SyncRequest,
    ) -> SendDecision {
        let Some(item) = cx.replica().item(item_id) else {
            return SendDecision::Skip;
        };
        if item.is_deleted() {
            return SendDecision::Send(Priority::normal());
        }
        // Hop 1 happens only at the origin; relays hold their copy for a
        // direct (filter-matched) delivery.
        if item.id().origin() == cx.id() {
            SendDecision::Send(Priority::normal())
        } else {
            SendDecision::Skip
        }
    }

    fn prepare_outgoing(
        &mut self,
        _cx: &mut HostContext<'_>,
        _item: &mut pfr::Item,
        _target: ReplicaId,
        _matched_filter: bool,
    ) {
    }
}

impl DtnPolicy for TwoHopRelayPolicy {
    fn name(&self) -> &'static str {
        "twohop"
    }

    fn summary(&self) -> PolicySummary {
        PolicySummary {
            protocol: "Two-hop relay",
            routing_state: "none",
            added_to_sync_request: "nothing",
            source_forwarding_policy: "only messages this node originated",
            parameters: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DtnNode, EncounterBudget, PolicyKind};
    use pfr::SimTime;

    fn node(n: u64, addr: &str) -> DtnNode {
        DtnNode::new(ReplicaId::new(n), addr, PolicyKind::TwoHopRelay)
    }

    #[test]
    fn source_spreads_relays_do_not() {
        let mut src = node(1, "a");
        let mut r1 = node(2, "b");
        let mut r2 = node(3, "c");
        let mut far = node(4, "d");
        let id = src.send("z", b"m".to_vec(), SimTime::ZERO).unwrap();

        // Source hands copies to both relays.
        src.encounter(
            &mut r1,
            SimTime::from_secs(60),
            EncounterBudget::unlimited(),
        );
        src.encounter(
            &mut r2,
            SimTime::from_secs(120),
            EncounterBudget::unlimited(),
        );
        assert!(r1.replica().contains_item(id));
        assert!(r2.replica().contains_item(id));

        // Relays never re-forward: the copy stays within two hops.
        r1.encounter(
            &mut far,
            SimTime::from_secs(180),
            EncounterBudget::unlimited(),
        );
        assert!(!far.replica().contains_item(id), "third hop forbidden");
    }

    #[test]
    fn relay_still_delivers_to_destination() {
        let mut src = node(1, "a");
        let mut relay = node(2, "b");
        let mut dest = node(9, "z");
        let id = src.send("z", b"m".to_vec(), SimTime::ZERO).unwrap();
        src.encounter(
            &mut relay,
            SimTime::from_secs(60),
            EncounterBudget::unlimited(),
        );
        let report = relay.encounter(
            &mut dest,
            SimTime::from_secs(120),
            EncounterBudget::unlimited(),
        );
        assert_eq!(report.delivered, 1, "hop 2 is the filter-matched delivery");
        assert!(dest.replica().contains_item(id));
    }

    #[test]
    fn summary_is_stateless() {
        let s = TwoHopRelayPolicy::new().summary();
        assert_eq!(s.routing_state, "none");
        assert!(s.parameters.is_empty());
    }
}
