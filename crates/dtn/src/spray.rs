//! Binary Spray and Wait (Spyropoulos et al., 2005).

use pfr::sync::{HostContext, SendDecision, SyncRequest};
use pfr::{Item, ItemId, Priority, ReplicaId, SyncExtension};

use crate::policy::{DtnPolicy, PolicySummary};

/// Transient attribute holding the number of logical copies this physical
/// copy represents.
pub const ATTR_COPIES: &str = "dtn.copies";

/// Binary Spray and Wait as a replication policy (paper §V-C2).
///
/// Each message is allocated a fixed budget of logical copies when it first
/// leaves its source. A holder with `n >= 2` copies hands `floor(n/2)` to
/// each new encounter and keeps the rest ("spray"); holders with a single
/// copy wait for a direct encounter with the destination ("wait" — direct
/// delivery happens through the filter match, outside the policy).
///
/// The copy count is transient metadata: handing copies away adjusts the
/// stored value through the substrate's no-new-version channel, so the
/// adjustment never replicates as an update (the paper's "internal
/// Cimbiosys interface").
///
/// # Examples
///
/// ```
/// use dtn::{DtnPolicy, SprayAndWaitPolicy};
///
/// let policy = SprayAndWaitPolicy::new(8); // Table II: copies = 8
/// assert_eq!(policy.initial_copies(), 8);
/// assert_eq!(policy.name(), "spray");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SprayAndWaitPolicy {
    initial_copies: i64,
}

impl SprayAndWaitPolicy {
    /// Creates the policy with a per-message copy budget.
    pub fn new(initial_copies: u32) -> Self {
        SprayAndWaitPolicy {
            initial_copies: i64::from(initial_copies).max(1),
        }
    }

    /// The copy budget each message starts with.
    pub fn initial_copies(&self) -> u32 {
        self.initial_copies as u32
    }

    fn copies_of(&self, item: &Item) -> i64 {
        item.transient()
            .get_i64(ATTR_COPIES)
            .unwrap_or(self.initial_copies)
    }
}

impl Default for SprayAndWaitPolicy {
    /// The paper's Table II parameter: 8 copies per message.
    fn default() -> Self {
        SprayAndWaitPolicy::new(8)
    }
}

impl SyncExtension for SprayAndWaitPolicy {
    fn label(&self) -> &'static str {
        "spray"
    }

    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        _request: &SyncRequest,
    ) -> SendDecision {
        let Some(item) = cx.replica().item(item_id) else {
            return SendDecision::Skip;
        };
        if item.is_deleted() {
            return SendDecision::Send(Priority::normal());
        }
        let copies = self.copies_of(item);
        if !item.transient().contains(ATTR_COPIES) {
            let _ = cx.set_transient(item_id, ATTR_COPIES, self.initial_copies);
        }
        if copies >= 2 {
            SendDecision::Send(Priority::normal())
        } else {
            SendDecision::Skip
        }
    }

    fn prepare_outgoing(
        &mut self,
        cx: &mut HostContext<'_>,
        item: &mut Item,
        _target: ReplicaId,
        matched_filter: bool,
    ) {
        if matched_filter || item.is_deleted() {
            return;
        }
        let copies = self.copies_of(item);
        let handed = copies / 2;
        let kept = copies - handed;
        // Binary spray: half the copies travel, half stay (both adjusted
        // without generating new versions).
        item.transient_mut().set(ATTR_COPIES, handed.max(1));
        let _ = cx.set_transient(item.id(), ATTR_COPIES, kept.max(1));
    }
}

impl DtnPolicy for SprayAndWaitPolicy {
    fn name(&self) -> &'static str {
        "spray"
    }

    fn summary(&self) -> PolicySummary {
        PolicySummary {
            protocol: "Spray&Wait",
            routing_state: "# copies per message",
            added_to_sync_request: "nothing",
            source_forwarding_policy: "when # copies >= 2",
            parameters: vec![(
                "copies per message".to_string(),
                self.initial_copies.to_string(),
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::{sync, AttributeMap, Filter, Replica, SimTime, SyncLimits};

    fn host(n: u64, addr: &str) -> Replica {
        Replica::new(ReplicaId::new(n), Filter::address("dest", addr))
    }

    fn send_msg(r: &mut Replica, dest: &str) -> ItemId {
        let mut attrs = AttributeMap::new();
        attrs.set("dest", dest);
        r.insert(attrs, b"m".to_vec()).unwrap()
    }

    fn spray_sync(
        src: &mut Replica,
        sp: &mut SprayAndWaitPolicy,
        tgt: &mut Replica,
        tp: &mut SprayAndWaitPolicy,
        t: u64,
    ) {
        sync::sync_with(
            src,
            sp,
            tgt,
            tp,
            SyncLimits::unlimited(),
            SimTime::from_secs(t),
        );
    }

    #[test]
    fn binary_spray_halves_copies() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let id = send_msg(&mut a, "z");
        let mut pa = SprayAndWaitPolicy::new(8);
        let mut pb = SprayAndWaitPolicy::new(8);
        spray_sync(&mut a, &mut pa, &mut b, &mut pb, 0);
        assert_eq!(
            a.item(id).unwrap().transient().get_i64(ATTR_COPIES),
            Some(4)
        );
        assert_eq!(
            b.item(id).unwrap().transient().get_i64(ATTR_COPIES),
            Some(4)
        );
    }

    #[test]
    fn copy_conservation_across_spray_tree() {
        // Spray through a line of hosts; the total logical copies across
        // all holders never exceeds the initial allocation.
        let initial = 8u32;
        let mut hosts: Vec<Replica> = (0..6).map(|i| host(i + 1, &format!("h{i}"))).collect();
        let mut policies: Vec<SprayAndWaitPolicy> =
            (0..6).map(|_| SprayAndWaitPolicy::new(initial)).collect();
        let id = send_msg(&mut hosts[0], "nowhere");

        for step in 0..5 {
            let (left, right) = hosts.split_at_mut(step + 1);
            let (pl, pr) = policies.split_at_mut(step + 1);
            spray_sync(
                &mut left[step],
                &mut pl[step],
                &mut right[0],
                &mut pr[0],
                step as u64,
            );
        }
        let total: i64 = hosts
            .iter()
            .filter_map(|h| h.item(id))
            .filter_map(|i| i.transient().get_i64(ATTR_COPIES))
            .sum();
        assert!(total <= i64::from(initial), "copies inflated: {total}");
        // And the message stopped spreading once budgets hit 1.
        let holders = hosts.iter().filter(|h| h.contains_item(id)).count();
        assert!(
            holders <= 4,
            "8 copies spray to at most 4 holders in a line, got {holders}"
        );
    }

    #[test]
    fn single_copy_holders_wait() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut c = host(3, "c");
        let id = send_msg(&mut a, "z");
        let mut pa = SprayAndWaitPolicy::new(2);
        let mut pb = SprayAndWaitPolicy::new(2);
        let mut pc = SprayAndWaitPolicy::new(2);
        spray_sync(&mut a, &mut pa, &mut b, &mut pb, 0);
        assert_eq!(
            b.item(id).unwrap().transient().get_i64(ATTR_COPIES),
            Some(1)
        );
        // b has one copy: it must not spray to c.
        spray_sync(&mut b, &mut pb, &mut c, &mut pc, 1);
        assert!(!c.contains_item(id), "wait phase forwards nothing");
        // But b still delivers directly to the destination.
        let mut z = host(9, "z");
        let mut pz = SprayAndWaitPolicy::new(2);
        spray_sync(&mut b, &mut pb, &mut z, &mut pz, 2);
        assert!(z.contains_item(id), "direct delivery always allowed");
    }

    #[test]
    fn summary_matches_table_one() {
        let s = SprayAndWaitPolicy::default().summary();
        assert_eq!(s.routing_state, "# copies per message");
        assert_eq!(s.source_forwarding_policy, "when # copies >= 2");
        assert_eq!(
            s.parameters,
            vec![("copies per message".to_string(), "8".to_string())]
        );
    }
}
