//! The DTN routing-policy abstraction and its registry.

use std::collections::BTreeSet;
use std::fmt;

use pfr::SyncExtension;

/// A pluggable DTN routing policy: the paper's `IDTNPolicy` (§V-B) plus
/// descriptive metadata.
///
/// The protocol hooks themselves come from the supertrait
/// [`pfr::SyncExtension`] — `generate_request`, `process_request`,
/// `to_send`, and `prepare_outgoing` correspond directly to the paper's
/// `generateReq()`, `processReq()`, and `toSend()` methods (the outgoing
/// transform is folded out of `toSend` so that in-flight copies can be
/// edited without touching the store).
///
/// Implementations additionally report what they keep and exchange, which
/// is how the benchmark harness regenerates the paper's Table I.
pub trait DtnPolicy: SyncExtension + Send {
    /// Short machine-friendly protocol name ("epidemic", "maxprop", ...).
    fn name(&self) -> &'static str;

    /// The protocol's Table I row and Table II parameters.
    fn summary(&self) -> PolicySummary;

    /// Informs the policy of the addresses this host is the final
    /// destination for. Called at startup and whenever the assignment
    /// changes (the vehicular experiments re-assign users to buses daily).
    ///
    /// Policies that estimate per-destination utility (PROPHET, MaxProp)
    /// use this to advertise their addresses to encountered peers; the
    /// default implementation ignores it.
    fn set_local_addresses(&mut self, addrs: BTreeSet<String>) {
        let _ = addrs;
    }

    /// Serializes the policy's persistent routing state (paper §V-A,
    /// requirement 1: "DTN routing policies can define persistent data
    /// structures which are serialized to disk").
    ///
    /// Epidemic and Spray and Wait keep their state (TTLs, copy counts) in
    /// per-item transient attributes, which the *replica* snapshot already
    /// persists — their implementation is the empty default. PROPHET and
    /// MaxProp persist their probability tables and acknowledgement sets.
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores state produced by [`DtnPolicy::save_state`]. Undecodable
    /// bytes are ignored (the policy simply starts cold), so a corrupt
    /// routing-state file can never prevent a node from rejoining.
    fn restore_state(&mut self, bytes: &[u8]) {
        let _ = bytes;
    }
}

/// A human-readable description of a routing policy, mirroring one row of
/// the paper's Table I plus the Table II parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySummary {
    /// Protocol name as the paper spells it.
    pub protocol: &'static str,
    /// "Routing state" column: what each host persists.
    pub routing_state: &'static str,
    /// "Added to sync request" column: what the target attaches.
    pub added_to_sync_request: &'static str,
    /// "Source forwarding policy" column: when non-matching items are sent.
    pub source_forwarding_policy: &'static str,
    /// Table II parameters as `(name, value)` pairs.
    pub parameters: Vec<(String, String)>,
}

impl fmt::Display for PolicySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: state=[{}] request=[{}] policy=[{}]",
            self.protocol,
            self.routing_state,
            self.added_to_sync_request,
            self.source_forwarding_policy
        )
    }
}

/// Identifies one of the bundled routing policies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyKind {
    /// No forwarding: plain filtered replication ("basic Cimbiosys").
    Direct,
    /// TTL-limited flooding (Vahdat & Becker).
    Epidemic,
    /// Binary Spray and Wait (Spyropoulos et al.).
    SprayAndWait,
    /// Delivery-predictability routing (Lindgren et al.).
    Prophet,
    /// Meeting-probability path routing (Burgess et al.).
    MaxProp,
    /// Two-hop relay (Grossglauser & Tse) — an extension beyond the
    /// paper's four case studies; not part of [`PolicyKind::ALL`].
    TwoHopRelay,
}

impl PolicyKind {
    /// The paper's five systems (baseline + four DTN protocols), in the
    /// order its figures list them.
    pub const ALL: [PolicyKind; 5] = [
        PolicyKind::Direct,
        PolicyKind::Prophet,
        PolicyKind::SprayAndWait,
        PolicyKind::Epidemic,
        PolicyKind::MaxProp,
    ];

    /// Every bundled policy, including extensions beyond the paper.
    pub const EXTENDED: [PolicyKind; 6] = [
        PolicyKind::Direct,
        PolicyKind::TwoHopRelay,
        PolicyKind::Prophet,
        PolicyKind::SprayAndWait,
        PolicyKind::Epidemic,
        PolicyKind::MaxProp,
    ];

    /// The paper's display name for the policy.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Direct => "cimbiosys",
            PolicyKind::Epidemic => "epidemic",
            PolicyKind::SprayAndWait => "spray",
            PolicyKind::Prophet => "prophet",
            PolicyKind::MaxProp => "maxprop",
            PolicyKind::TwoHopRelay => "twohop",
        }
    }

    /// Instantiates the policy with the paper's Table II parameters.
    pub fn build(self) -> Box<dyn DtnPolicy> {
        match self {
            PolicyKind::Direct => Box::new(crate::DirectDelivery::new()),
            PolicyKind::Epidemic => Box::new(crate::EpidemicPolicy::default()),
            PolicyKind::SprayAndWait => Box::new(crate::SprayAndWaitPolicy::default()),
            PolicyKind::Prophet => Box::new(crate::ProphetPolicy::default()),
            PolicyKind::MaxProp => Box::new(crate::MaxPropPolicy::default()),
            PolicyKind::TwoHopRelay => Box::new(crate::TwoHopRelayPolicy::new()),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "direct" | "cimbiosys" | "none" => Ok(PolicyKind::Direct),
            "epidemic" | "flood" => Ok(PolicyKind::Epidemic),
            "spray" | "spray-and-wait" | "spraywait" => Ok(PolicyKind::SprayAndWait),
            "prophet" => Ok(PolicyKind::Prophet),
            "maxprop" => Ok(PolicyKind::MaxProp),
            "twohop" | "two-hop" | "two-hop-relay" => Ok(PolicyKind::TwoHopRelay),
            other => Err(format!("unknown policy {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_display() {
        for kind in PolicyKind::EXTENDED {
            let parsed: PolicyKind = kind.label().parse().expect("parse own label");
            assert_eq!(parsed, kind);
        }
        assert!("warp-drive".parse::<PolicyKind>().is_err());
    }

    #[test]
    fn build_produces_named_policies() {
        for kind in PolicyKind::EXTENDED {
            let policy = kind.build();
            assert!(!policy.name().is_empty());
            let summary = policy.summary();
            assert!(!summary.protocol.is_empty());
            assert!(!format!("{summary}").is_empty());
        }
    }

    #[test]
    fn all_contains_each_kind_once() {
        let mut labels: Vec<&str> = PolicyKind::EXTENDED.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
        assert!(
            !PolicyKind::ALL.contains(&PolicyKind::TwoHopRelay),
            "the paper's figure set stays as published"
        );
    }
}
