//! # dtn — delay-tolerant messaging over filtered replication
//!
//! The primary contribution of the ICDCS 2011 paper "Peer-to-peer Data
//! Replication Meets Delay Tolerant Networking", re-implemented in Rust:
//!
//! * a **messaging application** ([`messaging`]) in which messages are
//!   replicated items and host filters express addressing (paper §IV);
//! * a **pluggable routing-policy interface** ([`DtnPolicy`], built on
//!   [`pfr::SyncExtension`]) mirroring the paper's `IDTNPolicy` (§V-B);
//! * the four representative DTN routing protocols of §V-C as policies:
//!   [`EpidemicPolicy`], [`SprayAndWaitPolicy`], [`ProphetPolicy`], and
//!   [`MaxPropPolicy`], plus the [`DirectDelivery`] baseline;
//! * a node bundle ([`DtnNode`]) tying a replica, a policy, and a set of
//!   addresses together and running budgeted encounters.
//!
//! The underlying replication guarantees — eventual filter consistency,
//! at-most-once delivery, compact knowledge — come from the [`pfr`] crate
//! and hold unchanged under every policy.
//!
//! ## Quick example
//!
//! ```
//! use dtn::{DtnNode, EncounterBudget, PolicyKind};
//! use pfr::{ReplicaId, SimTime};
//!
//! // Three buses; a message from "a" to "c" routed through "b".
//! let mut a = DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic);
//! let mut b = DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic);
//! let mut c = DtnNode::new(ReplicaId::new(3), "c", PolicyKind::Epidemic);
//!
//! a.send("c", b"multi-hop".to_vec(), SimTime::ZERO)?;
//! a.encounter(&mut b, SimTime::from_secs(60), EncounterBudget::unlimited());
//! b.encounter(&mut c, SimTime::from_secs(120), EncounterBudget::unlimited());
//! assert_eq!(c.inbox().len(), 1);
//! # Ok::<(), pfr::PfrError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adhoc;

mod codec;
mod direct;
mod durable;
mod epidemic;
mod host;
mod maxprop;
mod policy;
mod prophet;
mod recon;
mod spray;
mod twohop;

pub mod messaging;

pub use direct::DirectDelivery;
pub use durable::RestoreError;
pub use epidemic::{EpidemicPolicy, ATTR_TTL};
pub use host::{
    DigestResponse, DigestSessionState, DtnNode, EncounterBudget, EncounterReport, SnapshotScratch,
};
pub use maxprop::{MaxPropPolicy, ATTR_HOPLIST};
pub use messaging::{FilterStrategy, Message};
pub use policy::{DtnPolicy, PolicyKind, PolicySummary};
pub use prophet::{ProphetParams, ProphetPolicy};
pub use spray::{SprayAndWaitPolicy, ATTR_COPIES};
pub use twohop::TwoHopRelayPolicy;
