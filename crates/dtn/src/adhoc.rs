//! A classic, replication-free DTN node for comparison.
//!
//! Before the replication substrate, DTN protocols built their own
//! duplicate suppression: "store identifiers of recently seen messages and
//! compare this information with a communication partner before exchanging
//! messages" (paper §II-A) — the *summary vector* of Epidemic routing.
//! This module implements that classic design faithfully so the repository
//! can quantify the paper's §III claim: the replication substrate's
//! knowledge provides the same suppression with metadata proportional to
//! the number of *replicas*, while summary vectors grow with the number of
//! *messages*.
//!
//! [`AdhocNode`] is deliberately minimal: epidemic flooding, summary-vector
//! exchange, per-message ids. It delivers the same messages as the
//! substrate-based epidemic policy; what differs is the metadata each
//! encounter must ship, measured by [`AdhocNode::summary_vector_bytes`]
//! versus the encoded size of [`pfr::Knowledge`].

use std::collections::{BTreeMap, BTreeSet};

use pfr::wire::Writer;
use pfr::{ItemId, ReplicaId, SimTime};

/// A message in the ad-hoc store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdhocMessage {
    /// Globally unique message id (origin + sequence, like the substrate's
    /// item ids).
    pub id: ItemId,
    /// Sender address.
    pub src: String,
    /// Destination address.
    pub dest: String,
    /// Body.
    pub payload: Vec<u8>,
}

/// A DTN node implemented the pre-replication way: a message store plus a
/// summary vector of every message id ever seen.
///
/// # Examples
///
/// ```
/// use dtn::adhoc::AdhocNode;
/// use pfr::{ReplicaId, SimTime};
///
/// let mut a = AdhocNode::new(ReplicaId::new(1), "a");
/// let mut b = AdhocNode::new(ReplicaId::new(2), "b");
/// a.send("b", b"hi".to_vec());
/// a.encounter(&mut b, SimTime::ZERO);
/// assert_eq!(b.inbox().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct AdhocNode {
    id: ReplicaId,
    address: String,
    next_seq: u64,
    store: BTreeMap<ItemId, AdhocMessage>,
    /// The summary vector: ids of every message this node has seen.
    seen: BTreeSet<ItemId>,
}

impl AdhocNode {
    /// Creates a node with one address.
    pub fn new(id: ReplicaId, address: &str) -> Self {
        AdhocNode {
            id,
            address: address.to_string(),
            next_seq: 0,
            store: BTreeMap::new(),
            seen: BTreeSet::new(),
        }
    }

    /// The node's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Queues a message for `dest`.
    pub fn send(&mut self, dest: &str, payload: Vec<u8>) -> ItemId {
        self.next_seq += 1;
        let id = ItemId::new(self.id, self.next_seq);
        let message = AdhocMessage {
            id,
            src: self.address.clone(),
            dest: dest.to_string(),
            payload,
        };
        self.store.insert(id, message);
        self.seen.insert(id);
        id
    }

    /// Messages addressed to this node.
    pub fn inbox(&self) -> Vec<&AdhocMessage> {
        self.store
            .values()
            .filter(|m| m.dest == self.address)
            .collect()
    }

    /// Number of stored messages.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// The classic epidemic encounter: the nodes exchange summary vectors,
    /// then each sends the messages the other has not seen. Returns the
    /// number of messages transferred (both directions).
    pub fn encounter(&mut self, other: &mut AdhocNode, _now: SimTime) -> usize {
        let to_other: Vec<AdhocMessage> = self
            .store
            .values()
            .filter(|m| !other.seen.contains(&m.id))
            .cloned()
            .collect();
        let to_self: Vec<AdhocMessage> = other
            .store
            .values()
            .filter(|m| !self.seen.contains(&m.id))
            .cloned()
            .collect();
        let transferred = to_other.len() + to_self.len();
        for m in to_other {
            other.seen.insert(m.id);
            other.store.insert(m.id, m);
        }
        for m in to_self {
            self.seen.insert(m.id);
            self.store.insert(m.id, m);
        }
        transferred
    }

    /// The encoded size of this node's summary vector — the metadata it
    /// must ship at each encounter. Grows with every message ever seen.
    pub fn summary_vector_bytes(&self) -> usize {
        let mut w = Writer::new();
        w.put_varint(self.seen.len() as u64);
        for id in &self.seen {
            use pfr::wire::Encode as _;
            id.encode(&mut w);
        }
        w.into_bytes().len()
    }

    /// Number of entries in the summary vector.
    pub fn summary_vector_len(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u64, addr: &str) -> AdhocNode {
        AdhocNode::new(ReplicaId::new(n), addr)
    }

    #[test]
    fn flooding_delivers_multi_hop() {
        let mut a = node(1, "a");
        let mut b = node(2, "b");
        let mut c = node(3, "c");
        a.send("c", b"m".to_vec());
        a.encounter(&mut b, SimTime::ZERO);
        b.encounter(&mut c, SimTime::from_secs(60));
        assert_eq!(c.inbox().len(), 1);
        assert_eq!(c.inbox()[0].src, "a");
    }

    #[test]
    fn summary_vectors_suppress_duplicates() {
        let mut a = node(1, "a");
        let mut b = node(2, "b");
        a.send("b", b"m".to_vec());
        assert_eq!(a.encounter(&mut b, SimTime::ZERO), 1);
        assert_eq!(a.encounter(&mut b, SimTime::from_secs(1)), 0, "suppressed");
        // Even via a third party, b never re-receives.
        let mut c = node(3, "c");
        a.encounter(&mut c, SimTime::from_secs(2));
        assert_eq!(c.encounter(&mut b, SimTime::from_secs(3)), 0);
    }

    #[test]
    fn summary_vector_grows_with_messages() {
        let mut a = node(1, "a");
        let mut b = node(2, "b");
        let empty = b.summary_vector_bytes();
        for i in 0..100 {
            a.send(&format!("d{i}"), vec![0]);
        }
        a.encounter(&mut b, SimTime::ZERO);
        assert_eq!(b.summary_vector_len(), 100);
        assert!(
            b.summary_vector_bytes() >= empty + 100,
            "metadata grows with message count"
        );
    }

    #[test]
    fn ids_never_collide_across_nodes() {
        let mut a = node(1, "a");
        let mut b = node(2, "b");
        let ia = a.send("x", vec![]);
        let ib = b.send("x", vec![]);
        assert_ne!(ia, ib);
    }
}
