//! Epidemic routing: TTL-limited flooding (Vahdat & Becker, 2000).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use pfr::sync::{HostContext, SendDecision, SyncRequest};
use pfr::{AttributeMap, Item, ItemId, Priority, ReplicaId, SyncExtension};

use crate::policy::{DtnPolicy, PolicySummary};

/// Transient attribute holding the remaining hop budget of a copy.
pub const ATTR_TTL: &str = "dtn.ttl";

/// Process-wide interned `{dtn.ttl: n}` transient maps. TTLs take a tiny
/// closed set of values, so every in-flight copy at the same remaining
/// budget can share one map: stamping an outgoing copy is an `Arc` bump
/// instead of a per-copy map privatization (see
/// [`Item::replace_transient`]).
fn ttl_map(ttl: i64) -> Arc<AttributeMap> {
    static MAPS: OnceLock<Mutex<HashMap<i64, Arc<AttributeMap>>>> = OnceLock::new();
    let maps = MAPS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut maps = maps.lock().unwrap_or_else(|e| e.into_inner());
    maps.entry(ttl)
        .or_insert_with(|| {
            let mut m = AttributeMap::new();
            m.set(ATTR_TTL, ttl);
            Arc::new(m)
        })
        .clone()
}

/// Epidemic routing as a replication policy (paper §V-C1).
///
/// Every item with remaining TTL is forwarded at every encounter; the TTL
/// is a *transient* per-copy attribute, initialized lazily on first
/// forwarding and decremented on the in-flight copy only, so the stored
/// copy's budget is unaffected — exactly the paper's description.
///
/// The original protocol's summary vectors are unnecessary: the
/// substrate's knowledge already guarantees at-most-once delivery.
///
/// # Examples
///
/// ```
/// use dtn::{DtnPolicy, EpidemicPolicy};
///
/// let policy = EpidemicPolicy::new(10); // Table II: TTL = 10
/// assert_eq!(policy.initial_ttl(), 10);
/// assert_eq!(policy.name(), "epidemic");
/// ```
#[derive(Clone, Copy, Debug)]
pub struct EpidemicPolicy {
    initial_ttl: i64,
}

impl EpidemicPolicy {
    /// Creates the policy with an initial per-message hop budget.
    pub fn new(initial_ttl: u32) -> Self {
        EpidemicPolicy {
            initial_ttl: i64::from(initial_ttl),
        }
    }

    /// The hop budget new messages start with.
    pub fn initial_ttl(&self) -> u32 {
        self.initial_ttl as u32
    }

    /// Reads a copy's remaining TTL, treating a missing field as "fresh".
    fn ttl_of(&self, item: &Item) -> i64 {
        item.transient()
            .get_i64(ATTR_TTL)
            .unwrap_or(self.initial_ttl)
    }
}

impl Default for EpidemicPolicy {
    /// The paper's Table II parameter: TTL = 10.
    fn default() -> Self {
        EpidemicPolicy::new(10)
    }
}

impl SyncExtension for EpidemicPolicy {
    fn label(&self) -> &'static str {
        "epidemic"
    }

    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        _request: &SyncRequest,
    ) -> SendDecision {
        let Some(item) = cx.replica().item(item_id) else {
            return SendDecision::Skip;
        };
        if item.is_deleted() {
            // Tombstones flood freely: they only shrink state downstream.
            return SendDecision::Send(Priority::normal());
        }
        let ttl = self.ttl_of(item);
        let had_field = item.transient().contains(ATTR_TTL);
        if !had_field {
            // Lazily stamp fresh messages with the initial budget (the
            // paper's "updates the stored message to add a TTL field").
            let _ = cx.set_transient(item_id, ATTR_TTL, self.initial_ttl);
        }
        if ttl > 0 {
            SendDecision::Send(Priority::normal())
        } else {
            SendDecision::Skip
        }
    }

    fn prepare_outgoing(
        &mut self,
        _cx: &mut HostContext<'_>,
        item: &mut Item,
        _target: ReplicaId,
        matched_filter: bool,
    ) {
        if matched_filter || item.is_deleted() {
            return;
        }
        let ttl = self.ttl_of(item);
        // Decrement affects the in-flight copy only (paper: "does not
        // affect the TTL values for messages stored in the source"). When
        // the TTL is the copy's whole transient state — the common case —
        // the stamp swaps in the interned map for the new budget; only
        // copies carrying extra transient attributes pay a privatization.
        let next = (ttl - 1).max(0);
        let t = item.transient();
        if t.len() == 1 && t.contains(ATTR_TTL) {
            item.replace_transient(ttl_map(next));
        } else {
            item.transient_mut().set(ATTR_TTL, next);
        }
    }
}

impl DtnPolicy for EpidemicPolicy {
    fn name(&self) -> &'static str {
        "epidemic"
    }

    fn summary(&self) -> PolicySummary {
        PolicySummary {
            protocol: "Epidemic",
            routing_state: "TTL per message",
            added_to_sync_request: "nothing",
            source_forwarding_policy: "when TTL > 0",
            parameters: vec![("TTL".to_string(), self.initial_ttl.to_string())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::{sync, AttributeMap, Filter, Replica, SimTime, SyncLimits};

    fn host(n: u64, addr: &str) -> Replica {
        Replica::new(ReplicaId::new(n), Filter::address("dest", addr))
    }

    fn send_msg(r: &mut Replica, dest: &str) -> ItemId {
        let mut attrs = AttributeMap::new();
        attrs.set("dest", dest);
        r.insert(attrs, b"m".to_vec()).unwrap()
    }

    fn relay_sync(
        src: &mut Replica,
        sp: &mut EpidemicPolicy,
        tgt: &mut Replica,
        tp: &mut EpidemicPolicy,
        t: u64,
    ) {
        sync::sync_with(
            src,
            sp,
            tgt,
            tp,
            SyncLimits::unlimited(),
            SimTime::from_secs(t),
        );
    }

    #[test]
    fn floods_with_decrementing_ttl() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut c = host(3, "c");
        let id = send_msg(&mut a, "z");
        let mut pa = EpidemicPolicy::new(2);
        let mut pb = EpidemicPolicy::new(2);
        let mut pc = EpidemicPolicy::new(2);

        relay_sync(&mut a, &mut pa, &mut b, &mut pb, 0);
        assert_eq!(b.item(id).unwrap().transient().get_i64(ATTR_TTL), Some(1));
        // The source's stored copy keeps the full budget.
        assert_eq!(a.item(id).unwrap().transient().get_i64(ATTR_TTL), Some(2));

        relay_sync(&mut b, &mut pb, &mut c, &mut pc, 1);
        assert_eq!(c.item(id).unwrap().transient().get_i64(ATTR_TTL), Some(0));

        // c's copy is exhausted: it won't be forwarded further.
        let mut d = host(4, "d");
        let mut pd = EpidemicPolicy::new(2);
        relay_sync(&mut c, &mut pc, &mut d, &mut pd, 2);
        assert!(!d.contains_item(id), "TTL-0 copies stop flooding");
    }

    #[test]
    fn delivery_ignores_ttl() {
        // Even a TTL-0 copy is delivered to a host whose filter matches it:
        // filter matches bypass the policy entirely.
        let mut c = host(3, "c");
        let mut z = host(9, "z");
        let mut a = host(1, "a");
        let id = send_msg(&mut a, "z");
        let mut pa = EpidemicPolicy::new(1);
        let mut pc = EpidemicPolicy::new(1);
        let mut pz = EpidemicPolicy::new(1);
        relay_sync(&mut a, &mut pa, &mut c, &mut pc, 0);
        assert_eq!(c.item(id).unwrap().transient().get_i64(ATTR_TTL), Some(0));
        relay_sync(&mut c, &mut pc, &mut z, &mut pz, 1);
        assert!(z.contains_item(id), "delivery is not an expansion hop");
    }

    #[test]
    fn stamps_stored_items_lazily() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let id = send_msg(&mut a, "z");
        assert!(a.item(id).unwrap().transient().get_i64(ATTR_TTL).is_none());
        let mut pa = EpidemicPolicy::default();
        let mut pb = EpidemicPolicy::default();
        relay_sync(&mut a, &mut pa, &mut b, &mut pb, 0);
        assert_eq!(
            a.item(id).unwrap().transient().get_i64(ATTR_TTL),
            Some(10),
            "stored copy stamped with Table II default"
        );
    }

    #[test]
    fn summary_matches_table_one() {
        let p = EpidemicPolicy::default();
        let s = p.summary();
        assert_eq!(s.routing_state, "TTL per message");
        assert_eq!(s.source_forwarding_policy, "when TTL > 0");
        assert_eq!(s.parameters, vec![("TTL".to_string(), "10".to_string())]);
    }
}
