//! Digest-mode sync support: routing-state delta envelopes.
//!
//! In [`pfr::SyncMode::Digest`] encounters, knowledge vectors are already
//! compressed by the reconciliation layer ([`pfr::digest`]). The other
//! recurring payload in every sync request is the *routing state* — a
//! PROPHET predictability vector or a MaxProp meeting table — which
//! changes only incrementally between consecutive meetings of the same
//! pair. This module delta-encodes that payload against the last copy
//! exchanged with the peer, and transparently restores the raw bytes
//! before the routing policy sees them.
//!
//! The envelope is strictly an optimization: any decode failure (lost
//! cache after a restart, corrupt bytes) degrades to "no routing data
//! this round" — the same contract policies already honour for peers
//! running a different protocol — and the encounter driver clears the
//! sender's cache so the next exchange carries the full payload again.

use std::borrow::Cow;
use std::collections::BTreeMap;

use pfr::sync::{HostContext, SendDecision, SyncRequest};
use pfr::wire::{Reader, Writer};
use pfr::{Item, ItemId, ReplicaId, RoutingState, SyncExtension};

/// Envelope format version.
const ENVELOPE_VERSION: u8 = 1;
/// The payload follows verbatim.
const KIND_FULL: u8 = 0;
/// The payload is a prefix/suffix diff against the last exchanged copy.
const KIND_DELTA: u8 = 1;

/// FNV-1a over the payload; guards the delta base and the reconstruction.
fn sum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes `raw` for the wire, as a prefix/suffix delta against
/// `last_sent` when that is actually smaller, else verbatim.
pub(crate) fn encode_envelope(last_sent: Option<&[u8]>, raw: &[u8]) -> Vec<u8> {
    let mut full = Writer::new();
    full.put_u8(ENVELOPE_VERSION);
    full.put_u8(KIND_FULL);
    full.put_bytes(raw);
    let full = full.into_bytes();

    let Some(base) = last_sent else {
        return full;
    };
    let prefix = base
        .iter()
        .zip(raw.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let suffix = base[prefix..]
        .iter()
        .rev()
        .zip(raw[prefix..].iter().rev())
        .take_while(|(a, b)| a == b)
        .count();
    let mut delta = Writer::new();
    delta.put_u8(ENVELOPE_VERSION);
    delta.put_u8(KIND_DELTA);
    delta.put_u64(sum64(base));
    delta.put_u64(sum64(raw));
    delta.put_varint(prefix as u64);
    delta.put_varint(suffix as u64);
    delta.put_bytes(&raw[prefix..raw.len() - suffix]);
    let delta = delta.into_bytes();
    if delta.len() < full.len() {
        delta
    } else {
        full
    }
}

/// Decodes an envelope produced by [`encode_envelope`], resolving deltas
/// against `last_received`. `None` means the payload cannot be recovered
/// this round (unknown version, checksum mismatch, missing base).
pub(crate) fn decode_envelope(last_received: Option<&[u8]>, bytes: &[u8]) -> Option<Vec<u8>> {
    let mut r = Reader::new(bytes);
    if r.get_u8().ok()? != ENVELOPE_VERSION {
        return None;
    }
    match r.get_u8().ok()? {
        KIND_FULL => Some(r.get_bytes().ok()?.to_vec()),
        KIND_DELTA => {
            let base_sum = r.get_u64().ok()?;
            let full_sum = r.get_u64().ok()?;
            let prefix = r.get_varint().ok()? as usize;
            let suffix = r.get_varint().ok()? as usize;
            let middle = r.get_bytes().ok()?;
            let base = last_received?;
            if sum64(base) != base_sum || prefix.checked_add(suffix)? > base.len() {
                return None;
            }
            let mut raw = Vec::with_capacity(prefix + middle.len() + suffix);
            raw.extend_from_slice(&base[..prefix]);
            raw.extend_from_slice(middle);
            raw.extend_from_slice(&base[base.len() - suffix..]);
            (sum64(&raw) == full_sum).then_some(raw)
        }
        _ => None,
    }
}

/// The per-peer routing-envelope caches: the raw payload last sent to
/// (`tx`) and last decoded from (`rx`) the peer. Purely in-memory — never
/// snapshotted; a restart simply costs one full-size routing payload per
/// peer.
#[derive(Debug, Default)]
pub(crate) struct PeerLink {
    pub(crate) tx: Option<Vec<u8>>,
    pub(crate) rx: Option<Vec<u8>>,
}

/// All of a node's digest-mode state that lives outside [`pfr`]: one
/// [`PeerLink`] per peer (the reconciliation snapshots themselves are in
/// the node's [`pfr::ReconState`]).
#[derive(Debug, Default)]
pub(crate) struct RoutingLinks {
    links: BTreeMap<ReplicaId, PeerLink>,
}

impl RoutingLinks {
    pub(crate) fn link(&mut self, peer: ReplicaId) -> &mut PeerLink {
        self.links.entry(peer).or_default()
    }

    /// Forgets the payload last sent to `peer`, forcing the next envelope
    /// to carry the full routing state (the peer reported a decode miss).
    pub(crate) fn reset_tx(&mut self, peer: ReplicaId) {
        if let Some(link) = self.links.get_mut(&peer) {
            link.tx = None;
        }
    }

    pub(crate) fn clear(&mut self) {
        self.links.clear();
    }
}

/// Wraps a routing policy for one digest-mode sync with one peer:
/// envelopes the routing state this side generates, and unwraps the
/// peer's envelope before the inner policy reads it. Every other hook
/// passes straight through.
pub(crate) struct DigestExt<'a> {
    inner: &'a mut dyn SyncExtension,
    link: &'a mut PeerLink,
    /// Set when the peer's routing envelope could not be decoded; the
    /// encounter driver clears the peer's `tx` cache in response.
    pub(crate) decode_failed: bool,
}

impl<'a> DigestExt<'a> {
    pub(crate) fn new(inner: &'a mut dyn SyncExtension, link: &'a mut PeerLink) -> Self {
        DigestExt {
            inner,
            link,
            decode_failed: false,
        }
    }
}

impl SyncExtension for DigestExt<'_> {
    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn generate_request(&mut self, cx: &mut HostContext<'_>) -> RoutingState {
        let raw = self.inner.generate_request(cx);
        if raw.as_bytes().is_empty() {
            // Stateless policies (epidemic, spray, direct) pay nothing.
            return raw;
        }
        let enveloped = encode_envelope(self.link.tx.as_deref(), raw.as_bytes());
        self.link.tx = Some(raw.as_bytes().to_vec());
        RoutingState::from_bytes(enveloped)
    }

    fn process_request(&mut self, cx: &mut HostContext<'_>, request: &SyncRequest<'_>) {
        if request.routing.as_bytes().is_empty() {
            self.inner.process_request(cx, request);
            return;
        }
        let routing = match decode_envelope(self.link.rx.as_deref(), request.routing.as_bytes()) {
            Some(raw) => {
                self.link.rx = Some(raw.clone());
                RoutingState::from_bytes(raw)
            }
            None => {
                // Unrecoverable this round: surface "no routing data" to
                // the policy and flag the driver to resynchronize.
                self.decode_failed = true;
                self.link.rx = None;
                RoutingState::empty()
            }
        };
        let unwrapped = SyncRequest {
            target: request.target,
            knowledge: Cow::Borrowed(request.knowledge.as_ref()),
            filter: Cow::Borrowed(request.filter.as_ref()),
            routing,
        };
        self.inner.process_request(cx, &unwrapped);
    }

    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        request: &SyncRequest<'_>,
    ) -> SendDecision {
        // Policies read routing state in process_request, never here, so
        // the enveloped request passes through untranslated.
        self.inner.to_send(cx, item_id, request)
    }

    fn prepare_outgoing(
        &mut self,
        cx: &mut HostContext<'_>,
        item: &mut Item,
        target: ReplicaId,
        matched_filter: bool,
    ) {
        self.inner
            .prepare_outgoing(cx, item, target, matched_filter);
    }

    fn on_delivered(&mut self, cx: &mut HostContext<'_>, delivered: &[ItemId]) {
        self.inner.on_delivered(cx, delivered);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_envelope_roundtrips() {
        let raw = b"routing-bytes".to_vec();
        let enc = encode_envelope(None, &raw);
        assert_eq!(decode_envelope(None, &enc), Some(raw));
    }

    #[test]
    fn identical_payload_deltas_to_a_few_bytes() {
        let raw: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        let enc = encode_envelope(Some(&raw), &raw);
        assert!(
            enc.len() < 25,
            "unchanged payload should collapse, got {} bytes",
            enc.len()
        );
        assert_eq!(decode_envelope(Some(&raw), &enc), Some(raw));
    }

    #[test]
    fn small_edit_produces_small_delta() {
        let base: Vec<u8> = (0..200).map(|i| (i % 251) as u8).collect();
        let mut raw = base.clone();
        raw[100] = 0xff;
        let enc = encode_envelope(Some(&base), &raw);
        assert!(enc.len() < 30, "one-byte edit, got {} bytes", enc.len());
        assert_eq!(decode_envelope(Some(&base), &enc), Some(raw));
    }

    #[test]
    fn divergent_payload_falls_back_to_full() {
        let base: Vec<u8> = vec![1; 50];
        let raw: Vec<u8> = vec![2; 50];
        let enc = encode_envelope(Some(&base), &raw);
        // Nothing shared: the full form must win the size comparison.
        assert_eq!(decode_envelope(None, &enc), Some(raw));
    }

    #[test]
    fn delta_against_wrong_base_is_rejected() {
        let base: Vec<u8> = (0..100).collect();
        let mut raw = base.clone();
        raw[10] = 0xee;
        let enc = encode_envelope(Some(&base), &raw);
        let wrong: Vec<u8> = (100..200).collect();
        assert_eq!(decode_envelope(Some(&wrong), &enc), None);
        assert_eq!(decode_envelope(None, &enc), None);
    }

    #[test]
    fn corrupt_envelopes_never_panic() {
        let base: Vec<u8> = (0..100).collect();
        let enc = encode_envelope(Some(&base), &base);
        for i in 0..enc.len() {
            let mut bad = enc.clone();
            bad[i] ^= 0x41;
            // Any outcome but a panic is acceptable; a wrong Some would
            // need a 64-bit checksum collision.
            let _ = decode_envelope(Some(&base), &bad);
        }
        assert_eq!(decode_envelope(Some(&base), &[]), None);
        assert_eq!(decode_envelope(Some(&base), &[9, 9, 9]), None);
    }

    #[test]
    fn shared_prefix_and_suffix_both_collapse() {
        let mut base = vec![7u8; 300];
        let mut raw = base.clone();
        raw[150] = 1;
        base[150] = 2;
        let enc = encode_envelope(Some(&base), &raw);
        assert!(enc.len() < 30, "mid-edit delta, got {} bytes", enc.len());
        assert_eq!(decode_envelope(Some(&base), &enc), Some(raw));
    }
}
