//! The no-forwarding baseline: plain filtered replication.

use pfr::SyncExtension;

use crate::policy::{DtnPolicy, PolicySummary};

/// "Basic Cimbiosys": no out-of-filter forwarding at all. Messages are
/// delivered only when the sender (or another node whose filter happens to
/// select them) directly encounters the destination — the baseline in every
/// figure of the paper's evaluation.
///
/// # Examples
///
/// ```
/// use dtn::{DirectDelivery, DtnPolicy};
///
/// let policy = DirectDelivery::new();
/// assert_eq!(policy.name(), "cimbiosys");
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct DirectDelivery;

impl DirectDelivery {
    /// Creates the baseline policy.
    pub fn new() -> Self {
        DirectDelivery
    }
}

impl SyncExtension for DirectDelivery {
    fn label(&self) -> &'static str {
        "direct"
    }
}

impl DtnPolicy for DirectDelivery {
    fn name(&self) -> &'static str {
        "cimbiosys"
    }

    fn summary(&self) -> PolicySummary {
        PolicySummary {
            protocol: "Cimbiosys (baseline)",
            routing_state: "none",
            added_to_sync_request: "nothing",
            source_forwarding_policy: "never (filter matches only)",
            parameters: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pfr::{sync, AttributeMap, Filter, Replica, ReplicaId, SimTime, SyncLimits};

    #[test]
    fn never_forwards_out_of_filter() {
        let mut a = Replica::new(ReplicaId::new(1), Filter::address("dest", "a"));
        let mut c = Replica::new(ReplicaId::new(3), Filter::address("dest", "c"));
        let mut attrs = AttributeMap::new();
        attrs.set("dest", "b");
        a.insert(attrs, vec![]).unwrap();

        let mut pa = DirectDelivery::new();
        let mut pc = DirectDelivery::new();
        let report = sync::sync_with(
            &mut a,
            &mut pa,
            &mut c,
            &mut pc,
            SyncLimits::unlimited(),
            SimTime::ZERO,
        );
        assert_eq!(report.transmitted, 0);
        assert_eq!(report.withheld, 1);
        assert_eq!(c.item_count(), 0);
    }
}
