//! MaxProp: prioritized routing over estimated meeting likelihoods
//! (Burgess et al., 2006).

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, HashMap};

use pfr::sync::{HostContext, SendDecision, SyncRequest};
use pfr::wire::Writer;
use pfr::{Item, ItemId, Priority, PriorityClass, ReplicaId, RoutingState, SyncExtension, Value};

use crate::codec;
use crate::policy::{DtnPolicy, PolicySummary};

/// Transient attribute holding the list of node ids a copy has traversed.
pub const ATTR_HOPLIST: &str = "dtn.hops";

/// MaxProp as a replication policy (paper §V-C4).
///
/// Every host maintains a normalized probability distribution over which
/// node it will meet next, incrementally averaged at each encounter, and
/// exchanges it (together with delivery acknowledgements) in sync
/// requests. All messages are offered at every encounter; *ordering* is
/// where the protocol lives:
///
/// 1. messages addressed to the neighbour (the substrate sends
///    filter-matched items first automatically),
/// 2. "new" messages whose hop count is below a threshold, sorted by hop
///    count,
/// 3. everything else, sorted by the lowest-cost path to the destination,
///    where a path's cost is the sum over its links of the probability
///    that the link does *not* occur (a modified Dijkstra search).
///
/// Delivery acknowledgements flood through the network and clear relay
/// buffers. MaxProp's hop lists are retained as copy metadata, but its
/// duplicate-suppression role is subsumed by the substrate's knowledge.
///
/// # Examples
///
/// ```
/// use dtn::{DtnPolicy, MaxPropPolicy};
///
/// let policy = MaxPropPolicy::default();
/// assert_eq!(policy.name(), "maxprop");
/// assert_eq!(policy.hop_threshold(), 3); // Table II
/// ```
#[derive(Clone, Debug)]
pub struct MaxPropPolicy {
    hop_threshold: usize,
    /// Whether delivery acknowledgements are originated, gossiped, and
    /// acted upon (protocol default: yes; disable for ablations).
    use_acks: bool,
    /// Own next-encounter probability distribution (normalized).
    meeting: BTreeMap<ReplicaId, f64>,
    /// Distributions learned from peers, keyed by peer.
    peer_meeting: BTreeMap<ReplicaId, BTreeMap<ReplicaId, f64>>,
    /// Which node currently owns each destination address.
    addr_owner: BTreeMap<String, ReplicaId>,
    /// Messages known to have reached their destinations.
    acks: BTreeSet<ItemId>,
    /// Addresses this host is final destination for.
    local_addrs: BTreeSet<String>,
    /// Per-sync cache of Dijkstra results, invalidated on each request.
    cost_cache: HashMap<ReplicaId, f64>,
}

impl MaxPropPolicy {
    /// Creates the policy with the given "new message" hop-count threshold.
    pub fn new(hop_threshold: usize) -> Self {
        MaxPropPolicy {
            hop_threshold,
            use_acks: true,
            meeting: BTreeMap::new(),
            peer_meeting: BTreeMap::new(),
            addr_owner: BTreeMap::new(),
            acks: BTreeSet::new(),
            local_addrs: BTreeSet::new(),
            cost_cache: HashMap::new(),
        }
    }

    /// The hop-count threshold below which messages ride the fast lane.
    pub fn hop_threshold(&self) -> usize {
        self.hop_threshold
    }

    /// Enables or disables the delivery-acknowledgement mechanism (for
    /// ablation studies; the protocol specifies acknowledgements).
    pub fn with_acks(mut self, enabled: bool) -> Self {
        self.use_acks = enabled;
        if !enabled {
            self.acks.clear();
        }
        self
    }

    /// Whether acknowledgements are in use.
    pub fn acks_enabled(&self) -> bool {
        self.use_acks
    }

    /// The current estimated probability of meeting `node` next.
    pub fn meeting_probability(&self, node: ReplicaId) -> f64 {
        self.meeting.get(&node).copied().unwrap_or(0.0)
    }

    /// Number of delivery acknowledgements currently held.
    pub fn ack_count(&self) -> usize {
        self.acks.len()
    }

    /// Incremental averaging: bump the met node and renormalize so the
    /// distribution sums to 1.
    fn record_meeting(&mut self, peer: ReplicaId) {
        *self.meeting.entry(peer).or_insert(0.0) += 1.0;
        let total: f64 = self.meeting.values().sum();
        if total > 0.0 {
            for p in self.meeting.values_mut() {
                *p /= total;
            }
        }
    }

    /// Lowest-cost path from `self` to `dest` over the learned meeting
    /// graph; cost of a link with probability `p` is `1 - p`.
    fn path_cost(&self, me: ReplicaId, dest: ReplicaId) -> f64 {
        if me == dest {
            return 0.0;
        }
        // Dijkstra over a graph of at most (1 + |peer_meeting|) sources.
        let mut dist: BTreeMap<ReplicaId, f64> = BTreeMap::new();
        let mut heap: BinaryHeap<std::cmp::Reverse<(OrdF64, ReplicaId)>> = BinaryHeap::new();
        dist.insert(me, 0.0);
        heap.push(std::cmp::Reverse((OrdF64(0.0), me)));
        while let Some(std::cmp::Reverse((OrdF64(d), node))) = heap.pop() {
            if node == dest {
                return d;
            }
            if dist.get(&node).copied().unwrap_or(f64::INFINITY) < d {
                continue;
            }
            let edges: Option<&BTreeMap<ReplicaId, f64>> = if node == me {
                Some(&self.meeting)
            } else {
                self.peer_meeting.get(&node)
            };
            let Some(edges) = edges else { continue };
            for (&next, &p) in edges {
                let nd = d + (1.0 - p.clamp(0.0, 1.0));
                if nd < dist.get(&next).copied().unwrap_or(f64::INFINITY) {
                    dist.insert(next, nd);
                    heap.push(std::cmp::Reverse((OrdF64(nd), next)));
                }
            }
        }
        f64::INFINITY
    }

    fn dest_cost(&mut self, me: ReplicaId, item: &Item) -> f64 {
        // Multicast: a message is as urgent as its cheapest destination.
        let dest_nodes: Vec<ReplicaId> = crate::messaging::dest_addresses(item)
            .iter()
            .filter_map(|addr| self.addr_owner.get(*addr).copied())
            .collect();
        let mut best = f64::INFINITY;
        for dest_node in dest_nodes {
            let cost = if let Some(&cached) = self.cost_cache.get(&dest_node) {
                cached
            } else {
                let cost = self.path_cost(me, dest_node);
                self.cost_cache.insert(dest_node, cost);
                cost
            };
            best = best.min(cost);
        }
        best
    }

    fn hop_count(item: &Item) -> usize {
        item.transient()
            .get(ATTR_HOPLIST)
            .and_then(Value::as_list)
            .map(<[Value]>::len)
            .unwrap_or(0)
    }

    /// Drops relay copies of acknowledged messages.
    fn purge_acked(&mut self, cx: &mut HostContext<'_>) {
        let acked: Vec<ItemId> = cx
            .replica()
            .iter_items()
            .filter(|i| self.acks.contains(&i.id()))
            .map(Item::id)
            .collect();
        for id in acked {
            cx.purge_relay(id);
        }
    }
}

impl Default for MaxPropPolicy {
    /// The paper's Table II parameter: hop-count priority threshold = 3.
    fn default() -> Self {
        MaxPropPolicy::new(3)
    }
}

/// Total-ordered f64 for the Dijkstra heap (costs are never NaN).
#[derive(Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl SyncExtension for MaxPropPolicy {
    fn label(&self) -> &'static str {
        "maxprop"
    }

    fn generate_request(&mut self, _cx: &mut HostContext<'_>) -> RoutingState {
        let mut w = Writer::new();
        codec::put_addrs(&mut w, &self.local_addrs);
        codec::put_node_probs(&mut w, &self.meeting);
        codec::put_item_ids(&mut w, &self.acks);
        codec::finish(w)
    }

    fn process_request(&mut self, cx: &mut HostContext<'_>, request: &SyncRequest) {
        let peer = request.target;
        self.record_meeting(peer);
        self.cost_cache.clear();

        let mut r = codec::open(&request.routing);
        let decoded = (
            codec::get_addrs(&mut r),
            codec::get_node_probs(&mut r),
            codec::get_item_ids(&mut r),
        );
        if let (Ok(addrs), Ok(probs), Ok(acks)) = decoded {
            for addr in addrs {
                self.addr_owner.insert(addr, peer);
            }
            self.peer_meeting.insert(peer, probs);
            if self.use_acks {
                self.acks.extend(acks);
            }
        }
        if self.use_acks {
            self.purge_acked(cx);
        }
    }

    fn to_send(
        &mut self,
        cx: &mut HostContext<'_>,
        item_id: ItemId,
        _request: &SyncRequest,
    ) -> SendDecision {
        let me = cx.id();
        let Some(item) = cx.replica().item(item_id) else {
            return SendDecision::Skip;
        };
        if item.is_deleted() {
            return SendDecision::Send(Priority::normal());
        }
        if self.acks.contains(&item_id) {
            // Already delivered somewhere: don't spend bandwidth on it.
            return SendDecision::Skip;
        }
        let hops = Self::hop_count(item);
        if hops < self.hop_threshold {
            // Fast lane for young messages, ordered by hop count.
            SendDecision::Send(Priority::new(PriorityClass::High, hops as f64))
        } else {
            let item = item.clone();
            let cost = self.dest_cost(me, &item);
            SendDecision::Send(Priority::new(PriorityClass::Normal, cost))
        }
    }

    fn prepare_outgoing(
        &mut self,
        cx: &mut HostContext<'_>,
        item: &mut Item,
        target: ReplicaId,
        matched_filter: bool,
    ) {
        if matched_filter || item.is_deleted() {
            return;
        }
        // Append ourselves and the receiving node to the copy's hop list.
        let mut hops: Vec<Value> = item
            .transient()
            .get(ATTR_HOPLIST)
            .and_then(Value::as_list)
            .map(<[Value]>::to_vec)
            .unwrap_or_default();
        let me = cx.id().as_u64() as i64;
        if hops.last().and_then(Value::as_i64) != Some(me) {
            hops.push(Value::Int(me));
        }
        hops.push(Value::Int(target.as_u64() as i64));
        item.transient_mut().set(ATTR_HOPLIST, Value::List(hops));
    }

    fn on_delivered(&mut self, cx: &mut HostContext<'_>, delivered: &[ItemId]) {
        // Originate an acknowledgement for every message that reached us;
        // acks flood through subsequent encounters and clear buffers.
        if self.use_acks {
            self.acks.extend(delivered.iter().copied());
        }
        let _ = cx;
    }
}

impl DtnPolicy for MaxPropPolicy {
    fn name(&self) -> &'static str {
        "maxprop"
    }

    fn summary(&self) -> PolicySummary {
        PolicySummary {
            protocol: "MaxProp",
            routing_state: "estimated meeting probabilities for all pairs",
            added_to_sync_request: "target's meeting probabilities",
            source_forwarding_policy:
                "all messages, ordered by priority (modified Dijkstra calculation)",
            parameters: vec![(
                "hopcount priority threshold".to_string(),
                self.hop_threshold.to_string(),
            )],
        }
    }

    fn set_local_addresses(&mut self, addrs: BTreeSet<String>) {
        self.local_addrs = addrs;
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = Writer::new();
        codec::put_node_probs(&mut w, &self.meeting);
        w.put_varint(self.peer_meeting.len() as u64);
        for (peer, probs) in &self.peer_meeting {
            use pfr::wire::Encode as _;
            peer.encode(&mut w);
            codec::put_node_probs(&mut w, probs);
        }
        w.put_varint(self.addr_owner.len() as u64);
        for (addr, node) in &self.addr_owner {
            use pfr::wire::Encode as _;
            w.put_str(addr);
            node.encode(&mut w);
        }
        codec::put_item_ids(&mut w, &self.acks);
        w.into_bytes()
    }

    fn restore_state(&mut self, bytes: &[u8]) {
        use pfr::wire::Decode as _;
        let mut r = pfr::wire::Reader::new(bytes);
        let restored = (|| -> Result<(), pfr::wire::WireError> {
            let meeting = codec::get_node_probs(&mut r)?;
            let n = r.get_len(2)?;
            let mut peer_meeting = BTreeMap::new();
            for _ in 0..n {
                let peer = ReplicaId::decode(&mut r)?;
                let probs = codec::get_node_probs(&mut r)?;
                peer_meeting.insert(peer, probs);
            }
            let n = r.get_len(2)?;
            let mut addr_owner = BTreeMap::new();
            for _ in 0..n {
                let addr = r.get_str()?;
                let node = ReplicaId::decode(&mut r)?;
                addr_owner.insert(addr, node);
            }
            let acks = codec::get_item_ids(&mut r)?;
            self.meeting = meeting;
            self.peer_meeting = peer_meeting;
            self.addr_owner = addr_owner;
            self.acks = acks;
            Ok(())
        })();
        let _ = restored; // corrupt state: start cold
        self.cost_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messaging::ATTR_DEST;
    use pfr::{sync, AttributeMap, Filter, Replica, SimTime, SyncLimits};

    fn host(n: u64, addr: &str) -> (Replica, MaxPropPolicy) {
        let replica = Replica::new(ReplicaId::new(n), Filter::address(ATTR_DEST, addr));
        let mut policy = MaxPropPolicy::default();
        policy.set_local_addresses([addr.to_string()].into_iter().collect());
        (replica, policy)
    }

    fn encounter(a: &mut (Replica, MaxPropPolicy), b: &mut (Replica, MaxPropPolicy), t: u64) {
        let now = SimTime::from_secs(t);
        sync::sync_with(
            &mut a.0,
            &mut a.1,
            &mut b.0,
            &mut b.1,
            SyncLimits::unlimited(),
            now,
        );
        sync::sync_with(
            &mut b.0,
            &mut b.1,
            &mut a.0,
            &mut a.1,
            SyncLimits::unlimited(),
            now,
        );
    }

    fn send_msg(r: &mut Replica, dest: &str) -> ItemId {
        let mut attrs = AttributeMap::new();
        attrs.set(ATTR_DEST, dest);
        r.insert(attrs, b"m".to_vec()).unwrap()
    }

    #[test]
    fn meeting_distribution_normalizes() {
        let mut p = MaxPropPolicy::default();
        p.record_meeting(ReplicaId::new(2));
        assert!((p.meeting_probability(ReplicaId::new(2)) - 1.0).abs() < 1e-12);
        p.record_meeting(ReplicaId::new(3));
        let total =
            p.meeting_probability(ReplicaId::new(2)) + p.meeting_probability(ReplicaId::new(3));
        assert!((total - 1.0).abs() < 1e-12);
        // 2 was met once of... weights 1 and 1 -> after normalize both 0.5?
        // record_meeting(2): {2:1} -> {2:1.0}
        // record_meeting(3): {2:1.0, 3:1.0} -> both 0.5
        assert!((p.meeting_probability(ReplicaId::new(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn floods_everything_unconstrained() {
        let mut a = host(1, "a");
        let mut c = host(3, "c");
        let id = send_msg(&mut a.0, "z");
        encounter(&mut a, &mut c, 0);
        assert!(c.0.contains_item(id), "maxprop offers all messages");
    }

    #[test]
    fn hoplist_grows_along_path() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut c = host(3, "c");
        let id = send_msg(&mut a.0, "z");
        encounter(&mut a, &mut b, 0);
        encounter(&mut b, &mut c, 60);
        let hops = c.0.item(id).unwrap().transient().get(ATTR_HOPLIST).unwrap();
        let hops = hops.as_list().unwrap();
        assert!(hops.len() >= 3, "path a->b->c recorded: {hops:?}");
        assert_eq!(hops[0].as_i64(), Some(1));
    }

    #[test]
    fn acks_clear_relay_buffers_and_stop_resends() {
        let mut a = host(1, "a");
        let mut b = host(2, "b");
        let mut z = host(9, "z");
        let id = send_msg(&mut a.0, "z");

        // Relay to b, deliver to z directly from a.
        encounter(&mut a, &mut b, 0);
        assert!(b.0.contains_item(id));
        encounter(&mut a, &mut z, 60);
        assert!(z.0.contains_item(id));
        assert_eq!(z.1.ack_count(), 1, "destination originates an ack");

        // z tells b (via an encounter) that the message was delivered.
        encounter(&mut z, &mut b, 120);
        assert!(b.1.acks.contains(&id));
        assert!(!b.0.contains_item(id), "relay copy purged by ack");

        // b no longer forwards it.
        let mut c = host(4, "c");
        encounter(&mut b, &mut c, 180);
        assert!(!c.0.contains_item(id));
    }

    #[test]
    fn ordering_prefers_destination_then_young_then_cheap_paths() {
        let mut me = host(1, "a");
        // Make the policy aware of a destination node for path costs.
        me.1.addr_owner.insert("far".to_string(), ReplicaId::new(7));
        me.1.meeting.insert(ReplicaId::new(7), 0.2);

        // One message addressed to the sync target, one young relay
        // message, one old relay message.
        let to_target = send_msg(&mut me.0, "tgt");
        let young = send_msg(&mut me.0, "far");
        let old = send_msg(&mut me.0, "far");
        me.0.set_transient(
            old,
            ATTR_HOPLIST,
            Value::List(vec![
                Value::Int(5),
                Value::Int(6),
                Value::Int(7),
                Value::Int(8),
            ]),
        )
        .unwrap();

        let mut tgt = host(2, "tgt");
        let request = sync::begin_sync(&mut tgt.0, &mut tgt.1, SimTime::ZERO, Some(me.0.id()));
        let batch = sync::prepare_batch(
            &mut me.0,
            &mut me.1,
            &request,
            SyncLimits::unlimited(),
            SimTime::ZERO,
        );
        let order: Vec<ItemId> = batch.entries.iter().map(|e| e.item.id()).collect();
        assert_eq!(order, vec![to_target, young, old]);
        assert!(batch.entries[0].matched_filter);
        assert_eq!(batch.entries[1].priority.class(), PriorityClass::High);
        assert_eq!(batch.entries[2].priority.class(), PriorityClass::Normal);
        assert!(
            batch.entries[2].priority.cost().is_finite(),
            "Dijkstra found a path"
        );
    }

    #[test]
    fn path_cost_uses_two_hop_routes() {
        let mut p = MaxPropPolicy::default();
        let me = ReplicaId::new(1);
        let mid = ReplicaId::new(2);
        let dest = ReplicaId::new(3);
        // Direct link is terrible (p=0.1 -> cost .9); via mid is cheap
        // (0.5 + 0.1 -> 0.6... link costs: me->mid 1-0.5=0.5, mid->dest 1-0.9=0.1).
        p.meeting.insert(dest, 0.1);
        p.meeting.insert(mid, 0.5);
        p.peer_meeting
            .insert(mid, [(dest, 0.9)].into_iter().collect());
        let cost = p.path_cost(me, dest);
        assert!((cost - 0.6).abs() < 1e-12, "expected 0.6, got {cost}");
        // Unknown destination: infinite cost.
        assert!(p.path_cost(me, ReplicaId::new(99)).is_infinite());
        assert_eq!(p.path_cost(me, me), 0.0);
    }

    #[test]
    fn summary_matches_tables() {
        let s = MaxPropPolicy::default().summary();
        assert!(s.routing_state.contains("meeting probabilities"));
        assert!(s.source_forwarding_policy.contains("Dijkstra"));
        assert_eq!(
            s.parameters,
            vec![("hopcount priority threshold".to_string(), "3".to_string())]
        );
    }
}
