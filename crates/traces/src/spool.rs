//! On-disk encounter spools: city-scale traces streamed from disk.
//!
//! An [`EncounterTrace`](crate::EncounterTrace) holds every encounter in
//! memory, which caps fleet size: a 30-day city-scale trace (thousands of
//! vehicles, millions of contacts) is gigabytes of `Vec<Encounter>`. A
//! [`SpooledTrace`] keeps only the *metadata* the emulation needs up
//! front — node set, day count, per-day schedules — resident, and streams
//! the encounters themselves from a fixed-width binary file in time
//! order, so peak memory is one [`std::io::BufReader`] regardless of
//! trace length.
//!
//! The file format is deliberately dumb: an 8-byte magic, a little-endian
//! `u64` record count, then one 32-byte record per encounter (`time`,
//! `a`, `b`, `duration`, all little-endian `u64` seconds/ids). Writers
//! ([`TraceSpool`]) enforce the same `(time, a, b)` sort order
//! [`EncounterTrace::from_encounters`](crate::EncounterTrace) guarantees,
//! so a reader is exactly the in-memory trace's iterator — a property the
//! emulation's differential tests pin byte-for-byte.

use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pfr::{ReplicaId, SimDuration, SimTime};

use crate::mobility::{Encounter, EncounterTrace};

/// Magic bytes opening every spool file (`RDTNSPL1`).
const MAGIC: &[u8; 8] = b"RDTNSPL1";
/// Bytes per encounter record: four little-endian `u64`s.
const RECORD_BYTES: usize = 32;

/// Incremental writer producing a [`SpooledTrace`].
///
/// Push encounters in `(time, a, b)` order (the order every generator and
/// [`EncounterTrace`](crate::EncounterTrace) already produce) and call
/// [`finish`](TraceSpool::finish); out-of-order pushes are rejected so a
/// spool can never silently desynchronize from its in-memory twin.
#[derive(Debug)]
pub struct TraceSpool {
    writer: BufWriter<File>,
    path: PathBuf,
    len: u64,
    last: Option<(SimTime, ReplicaId, ReplicaId)>,
    nodes: BTreeSet<ReplicaId>,
    day_nodes: BTreeMap<u64, BTreeSet<ReplicaId>>,
}

impl TraceSpool {
    /// Creates (truncating) a spool file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<TraceSpool> {
        let path = path.as_ref().to_path_buf();
        let mut writer = BufWriter::new(File::create(&path)?);
        writer.write_all(MAGIC)?;
        writer.write_all(&0u64.to_le_bytes())?; // record count, patched by finish()
        Ok(TraceSpool {
            writer,
            path,
            len: 0,
            last: None,
            nodes: BTreeSet::new(),
            day_nodes: BTreeMap::new(),
        })
    }

    /// Appends one encounter.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when the encounter sorts before the
    /// previous one (the file must stay in `(time, a, b)` order), plus any
    /// underlying write error.
    pub fn push(&mut self, e: Encounter) -> io::Result<()> {
        let key = (e.time, e.a, e.b);
        if let Some(last) = self.last {
            if key < last {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("spool push out of order: {key:?} after {last:?}"),
                ));
            }
        }
        self.last = Some(key);
        self.writer.write_all(&e.time.as_secs().to_le_bytes())?;
        self.writer.write_all(&e.a.as_u64().to_le_bytes())?;
        self.writer.write_all(&e.b.as_u64().to_le_bytes())?;
        self.writer.write_all(&e.duration.as_secs().to_le_bytes())?;
        self.len += 1;
        self.nodes.insert(e.a);
        self.nodes.insert(e.b);
        let day = self.day_nodes.entry(e.time.day()).or_default();
        day.insert(e.a);
        day.insert(e.b);
        Ok(())
    }

    /// Appends one day's worth of encounters, sorting them first (the
    /// write-side analogue of
    /// [`EncounterTrace::from_encounters`](crate::EncounterTrace) that
    /// only ever materializes a single day).
    pub fn push_day(&mut self, mut encounters: Vec<Encounter>) -> io::Result<()> {
        encounters.sort_by_key(|e| (e.time, e.a, e.b));
        for e in encounters {
            self.push(e)?;
        }
        Ok(())
    }

    /// Flushes, patches the record count into the header, and returns the
    /// readable trace.
    pub fn finish(mut self) -> io::Result<SpooledTrace> {
        self.writer.flush()?;
        let mut file = self.writer.into_inner().map_err(|e| e.into_error())?;
        file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        file.write_all(&self.len.to_le_bytes())?;
        file.sync_data()?;
        Ok(SpooledTrace {
            path: self.path,
            len: self.len,
            nodes: self.nodes,
            day_nodes: self.day_nodes,
        })
    }
}

/// A time-ordered encounter schedule living on disk: metadata (node sets,
/// day schedules) in memory, encounters streamed on demand.
#[derive(Clone, Debug)]
pub struct SpooledTrace {
    path: PathBuf,
    len: u64,
    nodes: BTreeSet<ReplicaId>,
    day_nodes: BTreeMap<u64, BTreeSet<ReplicaId>>,
}

impl SpooledTrace {
    /// Spools an in-memory trace to `path` (the streaming A/B twin of the
    /// trace: iterating the spool yields the identical sequence).
    pub fn spool(trace: &EncounterTrace, path: impl AsRef<Path>) -> io::Result<SpooledTrace> {
        let mut spool = TraceSpool::create(path)?;
        for e in trace.iter() {
            spool.push(*e)?;
        }
        spool.finish()
    }

    /// Opens an existing spool file, rebuilding the resident metadata
    /// (record count, node set, day schedules) with one sequential scan.
    /// The encounters themselves stay on disk, so a spool written by
    /// `gen-trace` in one process is a first-class trace source in the
    /// next.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for a bad magic or a file shorter
    /// than its header claims, plus any underlying read error.
    pub fn open(path: impl AsRef<Path>) -> io::Result<SpooledTrace> {
        let path = path.as_ref().to_path_buf();
        let mut reader = BufReader::new(File::open(&path)?);
        let mut header = [0u8; 16];
        reader.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a replidtn trace spool (bad magic)",
            ));
        }
        let len = u64::from_le_bytes(header[8..].try_into().expect("8 bytes"));
        let mut nodes = BTreeSet::new();
        let mut day_nodes: BTreeMap<u64, BTreeSet<ReplicaId>> = BTreeMap::new();
        let mut buf = [0u8; RECORD_BYTES];
        for record in 0..len {
            reader.read_exact(&mut buf).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("spool truncated at record {record}/{len}: {e}"),
                )
            })?;
            let word =
                |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().expect("8"));
            let (time, a, b) = (
                SimTime::from_secs(word(0)),
                ReplicaId::new(word(1)),
                ReplicaId::new(word(2)),
            );
            nodes.insert(a);
            nodes.insert(b);
            let day = day_nodes.entry(time.day()).or_default();
            day.insert(a);
            day.insert(b);
        }
        Ok(SpooledTrace {
            path,
            len,
            nodes,
            day_nodes,
        })
    }

    /// The spool file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of encounters on disk.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the spool holds no encounters.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The number of days spanned (day of the last encounter + 1).
    pub fn days(&self) -> u64 {
        self.day_nodes
            .last_key_value()
            .map(|(day, _)| day + 1)
            .unwrap_or(0)
    }

    /// Every node appearing anywhere in the trace.
    pub fn nodes(&self) -> &BTreeSet<ReplicaId> {
        &self.nodes
    }

    /// The nodes scheduled on one day (empty when no encounters that day).
    pub fn nodes_on_day(&self, day: u64) -> BTreeSet<ReplicaId> {
        self.day_nodes.get(&day).cloned().unwrap_or_default()
    }

    /// Per-day scheduled-node sets, keyed by day.
    pub fn day_nodes(&self) -> &BTreeMap<u64, BTreeSet<ReplicaId>> {
        &self.day_nodes
    }

    /// Opens a streaming reader over the encounters, in file (= time)
    /// order.
    pub fn iter(&self) -> io::Result<SpooledIter> {
        let mut reader = BufReader::new(File::open(&self.path)?);
        let mut header = [0u8; 16];
        reader.read_exact(&mut header)?;
        if &header[..8] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a replidtn trace spool (bad magic)",
            ));
        }
        let on_disk = u64::from_le_bytes(header[8..].try_into().expect("8 bytes"));
        if on_disk != self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "spool header says {on_disk} records, metadata says {}",
                    self.len
                ),
            ));
        }
        Ok(SpooledIter {
            reader,
            remaining: self.len,
        })
    }
}

/// Streaming reader over a [`SpooledTrace`].
///
/// Yields encounters in time order with one buffered read per record. An
/// I/O error or truncated file mid-stream panics: the spool was written
/// by this process moments ago, so a short read is a programming error
/// (or disk failure) the emulation cannot meaningfully continue past.
#[derive(Debug)]
pub struct SpooledIter {
    reader: BufReader<File>,
    remaining: u64,
}

impl Iterator for SpooledIter {
    type Item = Encounter;

    fn next(&mut self) -> Option<Encounter> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let mut buf = [0u8; RECORD_BYTES];
        self.reader
            .read_exact(&mut buf)
            .expect("trace spool truncated or unreadable mid-stream");
        let word = |i: usize| u64::from_le_bytes(buf[i * 8..(i + 1) * 8].try_into().expect("8"));
        Some(Encounter {
            time: SimTime::from_secs(word(0)),
            a: ReplicaId::new(word(1)),
            b: ReplicaId::new(word(2)),
            duration: SimDuration::from_secs(word(3)),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

/// A peekable prefetch window over any time-ordered encounter stream,
/// with a per-node *next-encounter* index.
///
/// Traces are fully known ahead of time (the property MaxProp exploits
/// for transfer ordering), so a consumer that streams encounters can
/// also see a bounded distance into the future for free: `Lookahead`
/// buffers up to `capacity` upcoming encounters and answers
/// [`next_need`](Lookahead::next_need) — "when is node X touched next?"
/// — in O(1). The sharded emulation engine uses this for Belady-style
/// eviction (spill the replica whose next encounter is farthest) and for
/// batch-unspilling replicas just ahead of their encounters.
///
/// Positions are *ordinals*: the index of an encounter in the underlying
/// stream, starting at 0. [`consumed`](Lookahead::consumed) is the
/// ordinal of the next encounter [`next`](Iterator::next) will yield, so
/// `next_need(id) - consumed()` is the distance (in encounters) until
/// `id` is touched again, when that lies inside the window.
#[derive(Debug)]
pub struct Lookahead<I: Iterator<Item = Encounter>> {
    inner: I,
    window: std::collections::VecDeque<Encounter>,
    /// `node -> ordinals of its windowed encounters`, each queue sorted
    /// ascending (encounters enter and leave the window in order).
    needs: std::collections::HashMap<ReplicaId, std::collections::VecDeque<u64>>,
    /// Ordinal of the window front (== encounters already yielded).
    head: u64,
    /// Ordinal the next pull from `inner` will get.
    filled: u64,
    capacity: usize,
}

impl<I: Iterator<Item = Encounter>> Lookahead<I> {
    /// Wraps `inner` with a prefetch window of `capacity` encounters
    /// (at least 1).
    pub fn new(inner: I, capacity: usize) -> Self {
        Lookahead {
            inner,
            window: std::collections::VecDeque::new(),
            needs: std::collections::HashMap::new(),
            head: 0,
            filled: 0,
            capacity: capacity.max(1),
        }
    }

    fn fill(&mut self) {
        while self.window.len() < self.capacity {
            let Some(e) = self.inner.next() else { break };
            let ord = self.filled;
            self.filled += 1;
            self.needs.entry(e.a).or_default().push_back(ord);
            if e.b != e.a {
                self.needs.entry(e.b).or_default().push_back(ord);
            }
            self.window.push_back(e);
        }
    }

    /// The next encounter without consuming it.
    pub fn peek(&mut self) -> Option<&Encounter> {
        self.fill();
        self.window.front()
    }

    /// Ordinal of the next encounter to be yielded (= encounters
    /// consumed so far).
    pub fn consumed(&self) -> u64 {
        self.head
    }

    /// The ordinal of `id`'s next encounter, when it falls inside the
    /// window; `None` means "not in the next [`window_len`] encounters"
    /// (or never again).
    ///
    /// [`window_len`]: Lookahead::window_len
    pub fn next_need(&self, id: ReplicaId) -> Option<u64> {
        self.needs.get(&id).and_then(|q| q.front().copied())
    }

    /// Encounters currently buffered ahead.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Iterates the buffered upcoming encounters in order (for
    /// prefetching state their endpoints will need). Call
    /// [`peek`](Lookahead::peek) first to fill the window.
    pub fn upcoming(&self) -> impl Iterator<Item = &Encounter> {
        self.window.iter()
    }
}

impl<I: Iterator<Item = Encounter>> Iterator for Lookahead<I> {
    type Item = Encounter;

    fn next(&mut self) -> Option<Encounter> {
        self.fill();
        let e = self.window.pop_front()?;
        let ord = self.head;
        self.head += 1;
        for id in [e.a, e.b] {
            let std::collections::hash_map::Entry::Occupied(mut slot) = self.needs.entry(id) else {
                unreachable!("windowed encounter indexed on entry")
            };
            if slot.get().front() == Some(&ord) {
                slot.get_mut().pop_front();
            }
            if slot.get().is_empty() {
                slot.remove();
            }
            if e.b == e.a {
                break;
            }
        }
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.size_hint();
        let buffered = self.window.len();
        (lo.saturating_add(buffered), hi.map(|h| h + buffered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DieselNetConfig;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("replidtn-spool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn spool_roundtrips_a_generated_trace() {
        let trace = DieselNetConfig::small().generate();
        let spooled = SpooledTrace::spool(&trace, tmp("roundtrip.spool")).expect("spool");
        assert_eq!(spooled.len(), trace.len() as u64);
        assert_eq!(spooled.days(), trace.days());
        assert_eq!(*spooled.nodes(), trace.nodes());
        for day in 0..trace.days() {
            assert_eq!(spooled.nodes_on_day(day), trace.nodes_on_day(day));
        }
        let from_disk: Vec<Encounter> = spooled.iter().expect("open").collect();
        let in_memory: Vec<Encounter> = trace.iter().copied().collect();
        assert_eq!(from_disk, in_memory);
    }

    #[test]
    fn open_rebuilds_the_exact_metadata() {
        let trace = DieselNetConfig::small().generate();
        let path = tmp("reopen.spool");
        let written = SpooledTrace::spool(&trace, &path).expect("spool");
        let reopened = SpooledTrace::open(&path).expect("open");
        assert_eq!(reopened.len(), written.len());
        assert_eq!(reopened.days(), written.days());
        assert_eq!(reopened.nodes(), written.nodes());
        assert_eq!(reopened.day_nodes(), written.day_nodes());
        let a: Vec<Encounter> = written.iter().expect("iter").collect();
        let b: Vec<Encounter> = reopened.iter().expect("iter").collect();
        assert_eq!(a, b);
    }

    #[test]
    fn open_rejects_garbage_and_truncation() {
        let garbage = tmp("garbage.spool");
        std::fs::write(&garbage, b"definitely not a spool").expect("write");
        assert_eq!(
            SpooledTrace::open(&garbage).expect_err("bad magic").kind(),
            io::ErrorKind::InvalidData
        );
        let trace = DieselNetConfig::small().generate();
        let path = tmp("truncated.spool");
        SpooledTrace::spool(&trace, &path).expect("spool");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate");
        assert_eq!(
            SpooledTrace::open(&path).expect_err("truncated").kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn out_of_order_push_is_rejected() {
        let mut spool = TraceSpool::create(tmp("order.spool")).expect("create");
        let late = Encounter::new(
            SimTime::from_hms(1, 9, 0, 0),
            ReplicaId::new(1),
            ReplicaId::new(2),
        );
        let early = Encounter::new(
            SimTime::from_hms(0, 9, 0, 0),
            ReplicaId::new(1),
            ReplicaId::new(2),
        );
        spool.push(late).expect("first push");
        let err = spool.push(early).expect_err("out of order");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn empty_spool_is_well_formed() {
        let spooled = TraceSpool::create(tmp("empty.spool"))
            .expect("create")
            .finish()
            .expect("finish");
        assert!(spooled.is_empty());
        assert_eq!(spooled.days(), 0);
        assert_eq!(spooled.iter().expect("open").count(), 0);
    }

    #[test]
    fn lookahead_yields_the_identical_sequence() {
        let trace = DieselNetConfig::default().generate();
        let direct: Vec<Encounter> = trace.iter().copied().collect();
        for capacity in [1usize, 7, 64, 100_000] {
            let windowed: Vec<Encounter> =
                Lookahead::new(trace.iter().copied(), capacity).collect();
            assert_eq!(windowed, direct, "capacity {capacity} perturbed the stream");
        }
    }

    #[test]
    fn lookahead_next_need_tracks_the_window() {
        let trace = DieselNetConfig::default().generate();
        let all: Vec<Encounter> = trace.iter().copied().collect();
        let capacity = 32usize;
        let mut la = Lookahead::new(trace.iter().copied(), capacity);
        let mut consumed = 0u64;
        // Exhaustive cross-checking is quadratic; a prefix covers every
        // code path (fills, pops, index expiry) at test-friendly cost.
        let checked_prefix = 300u64;
        while la.peek().is_some() {
            assert_eq!(la.consumed(), consumed);
            // Every windowed node's next_need is the true ordinal of its
            // next encounter in the full sequence.
            for e in (consumed < checked_prefix)
                .then(|| all.iter().skip(consumed as usize).take(capacity))
                .into_iter()
                .flatten()
            {
                for id in [e.a, e.b] {
                    let need = la.next_need(id).expect("windowed node is indexed");
                    let truth = all
                        .iter()
                        .enumerate()
                        .skip(consumed as usize)
                        .find(|(_, enc)| enc.a == id || enc.b == id)
                        .map(|(i, _)| i as u64)
                        .expect("node occurs in its own window");
                    assert_eq!(need, truth);
                }
            }
            let e = la.next().expect("peeked");
            assert_eq!(e, all[consumed as usize]);
            consumed += 1;
            // A node past its last windowed encounter must drop out of
            // the index rather than answer stale ordinals.
            if let Some(ord) = la.next_need(e.a) {
                assert!(ord >= consumed, "stale ordinal for a just-consumed node");
            }
        }
        assert_eq!(consumed, all.len() as u64);
        assert_eq!(la.window_len(), 0);
    }
}
