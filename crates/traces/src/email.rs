//! Enron-like e-mail message workloads.
//!
//! The paper uses the UC Berkeley release of the Enron e-mail dataset for
//! one thing: "to determine which node sends messages to which other
//! nodes". This generator reproduces the relevant structure — a
//! heavy-tailed (Zipf) sender activity distribution and persistent
//! per-sender contact lists — together with the paper's injection
//! schedule: messages enter during a two-hour morning window (08:00 to
//! 10:00) at two-minute intervals, injection stops after the eighth day,
//! and 490 messages are injected in total (§VI-A).

use pfr::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::zipf::Zipf;

/// One message-injection event: `src` sends to `dst` at `time`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageEvent {
    /// Injection time.
    pub time: SimTime,
    /// Sending user.
    pub src: String,
    /// Receiving user.
    pub dst: String,
}

/// A time-ordered message workload over a set of users.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmailWorkload {
    users: Vec<String>,
    events: Vec<MessageEvent>,
}

impl EmailWorkload {
    /// Builds a workload from explicit events, sorting them by time.
    pub fn from_events(users: Vec<String>, mut events: Vec<MessageEvent>) -> Self {
        events.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.src.cmp(&b.src)));
        EmailWorkload { users, events }
    }

    /// The user population (user `i` is `"u<i>"` for generated workloads).
    pub fn users(&self) -> &[String] {
        &self.users
    }

    /// The injection events in time order.
    pub fn events(&self) -> &[MessageEvent] {
        &self.events
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if the workload has no messages.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events injected on one day.
    pub fn events_on_day(&self, day: u64) -> impl Iterator<Item = &MessageEvent> {
        self.events.iter().filter(move |e| e.time.day() == day)
    }

    /// The last injection day (`None` for an empty workload).
    pub fn last_injection_day(&self) -> Option<u64> {
        self.events.last().map(|e| e.time.day())
    }
}

/// Configuration for the Enron-like workload generator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EmailConfig {
    /// Number of users exchanging mail.
    pub users: usize,
    /// Days during which messages are injected (paper: the first 8 of 17).
    pub injection_days: u64,
    /// Start of the daily injection window (paper: 08:00).
    pub window_start_hour: u64,
    /// Spacing between injections (paper: 2 minutes).
    pub interval: SimDuration,
    /// Total messages injected (paper: 490).
    pub total_messages: usize,
    /// Zipf exponent for sender activity.
    pub sender_zipf_exponent: f64,
    /// Contacts per user: recipients are drawn from this persistent list.
    pub contacts_per_user: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmailConfig {
    /// The paper's injection schedule (§VI-A).
    fn default() -> Self {
        EmailConfig {
            users: 46, // twice the daily bus count: senders and receivers ride along
            injection_days: 8,
            window_start_hour: 8,
            interval: SimDuration::from_mins(2),
            total_messages: 490,
            sender_zipf_exponent: 1.1,
            contacts_per_user: 6,
            seed: 0xe17011,
        }
    }
}

impl EmailConfig {
    /// A scaled-down configuration for fast tests and examples.
    pub fn small() -> Self {
        EmailConfig {
            users: 10,
            injection_days: 2,
            total_messages: 40,
            contacts_per_user: 3,
            ..EmailConfig::default()
        }
    }

    /// A city-scale workload matching [`DieselNetConfig::city`]
    /// (`crate::DieselNetConfig::city`): `scale`× the users and messages,
    /// with the injection interval tightened so the same two-hour morning
    /// window still fits the whole day's mail — at large scales that is
    /// millions of messages per experiment from a one-second cadence.
    pub fn city(scale: usize) -> Self {
        let scale = scale.max(1);
        EmailConfig {
            users: 46 * scale,
            total_messages: 490 * scale,
            interval: SimDuration::from_secs((120 / scale as u64).max(1)),
            ..EmailConfig::default()
        }
    }

    /// Generates the workload.
    ///
    /// Messages are spread over `injection_days` days (the per-day
    /// remainder going to the earliest days), injected at `interval`
    /// spacing from the window start — the paper's two-hour window follows
    /// from 61 or 62 two-minute slots per day.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than two users or
    /// no injection days).
    pub fn generate(&self) -> EmailWorkload {
        assert!(self.users >= 2, "need at least two users");
        assert!(self.injection_days >= 1, "need at least one injection day");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let users: Vec<String> = (0..self.users).map(user_name).collect();

        // Persistent contact lists: who each user writes to.
        let contacts: Vec<Vec<usize>> = (0..self.users)
            .map(|u| {
                let k = self.contacts_per_user.min(self.users - 1).max(1);
                let mut others: Vec<usize> = (0..self.users).filter(|&v| v != u).collect();
                for i in 0..k {
                    let j = rng.gen_range(i..others.len());
                    others.swap(i, j);
                }
                others.truncate(k);
                others
            })
            .collect();

        let sender_dist = Zipf::new(self.users, self.sender_zipf_exponent);

        let days = self.injection_days as usize;
        let per_day = self.total_messages / days;
        let remainder = self.total_messages % days;

        let mut events = Vec::with_capacity(self.total_messages);
        for day in 0..self.injection_days {
            let today = per_day + usize::from((day as usize) < remainder);
            for slot in 0..today {
                let time = SimTime::from_hms(day, self.window_start_hour, 0, 0)
                    + SimDuration::from_secs(self.interval.as_secs() * slot as u64);
                let src = sender_dist.sample(&mut rng);
                let list = &contacts[src];
                let dst = list[rng.gen_range(0..list.len())];
                events.push(MessageEvent {
                    time,
                    src: users[src].clone(),
                    dst: users[dst].clone(),
                });
            }
        }
        EmailWorkload::from_events(users, events)
    }
}

/// The conventional name for user number `index` ("u0", "u1", ...).
pub fn user_name(index: usize) -> String {
    format!("u{index}")
}

/// Renders a workload to a line-oriented text form:
/// `<day> <hh:mm:ss> <src_user> <dst_user>`, with `#` comments.
pub fn format_workload(workload: &EmailWorkload) -> String {
    let mut out =
        String::from("# replidtn mail workload: <day> <hh:mm:ss> <src_user> <dst_user>\n");
    for e in workload.events() {
        let s = e.time.seconds_into_day();
        out.push_str(&format!(
            "{} {:02}:{:02}:{:02} {} {}\n",
            e.time.day(),
            s / 3600,
            (s % 3600) / 60,
            s % 60,
            e.src,
            e.dst
        ));
    }
    out
}

/// Parses a workload from the text form written by [`format_workload`].
///
/// # Errors
///
/// Returns a [`crate::TraceParseError`] identifying the first bad line.
pub fn parse_workload(text: &str) -> Result<EmailWorkload, crate::TraceParseError> {
    let mut events = Vec::new();
    let mut users = std::collections::BTreeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(crate::TraceParseError {
                line: line_no,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let day: u64 = fields[0].parse().map_err(|_| crate::TraceParseError {
            line: line_no,
            message: format!("bad day number {:?}", fields[0]),
        })?;
        let mut hms = fields[1].split(':');
        let parse_part = |part: Option<&str>, max: u64| -> Option<u64> {
            let v: u64 = part?.parse().ok()?;
            (v < max).then_some(v)
        };
        let (Some(h), Some(m), Some(s)) = (
            parse_part(hms.next(), 24),
            parse_part(hms.next(), 60),
            parse_part(hms.next(), 60),
        ) else {
            return Err(crate::TraceParseError {
                line: line_no,
                message: format!("bad time {:?} (expected hh:mm:ss)", fields[1]),
            });
        };
        if fields[2] == fields[3] {
            return Err(crate::TraceParseError {
                line: line_no,
                message: format!("self-mail from {:?}", fields[2]),
            });
        }
        users.insert(fields[2].to_string());
        users.insert(fields[3].to_string());
        events.push(MessageEvent {
            time: SimTime::from_hms(day, h, m, s),
            src: fields[2].to_string(),
            dst: fields[3].to_string(),
        });
    }
    Ok(EmailWorkload::from_events(
        users.into_iter().collect(),
        events,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn default_matches_paper_schedule() {
        let w = EmailConfig::default().generate();
        assert_eq!(w.len(), 490, "paper: 490 messages total");
        assert_eq!(
            w.last_injection_day(),
            Some(7),
            "stops after the eighth day"
        );
        for e in w.events() {
            let s = e.time.seconds_into_day();
            assert!(s >= 8 * 3600, "injection before 08:00: {}", e.time);
            assert!(
                s < 8 * 3600 + 62 * 120,
                "injection after window: {}",
                e.time
            );
            assert_eq!(s % 120, 0, "two-minute spacing");
            assert_ne!(e.src, e.dst, "no self-mail");
        }
    }

    #[test]
    fn spread_across_days_is_even() {
        let w = EmailConfig::default().generate();
        let mut per_day = BTreeMap::new();
        for e in w.events() {
            *per_day.entry(e.time.day()).or_insert(0usize) += 1;
        }
        assert_eq!(per_day.len(), 8);
        let min = per_day.values().min().unwrap();
        let max = per_day.values().max().unwrap();
        assert!(max - min <= 1, "per-day counts differ by at most 1");
    }

    #[test]
    fn sender_activity_is_heavy_tailed() {
        let w = EmailConfig::default().generate();
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for e in w.events() {
            *counts.entry(e.src.as_str()).or_insert(0) += 1;
        }
        let mut sorted: Vec<usize> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = sorted.iter().take(5).sum();
        assert!(
            top_share * 2 > w.len(),
            "top 5 senders should produce >half the mail, got {top_share}/{}",
            w.len()
        );
    }

    #[test]
    fn contacts_are_persistent() {
        // Each sender writes to a bounded set of recipients.
        let cfg = EmailConfig::default();
        let w = cfg.generate();
        let mut recipients: BTreeMap<&str, std::collections::BTreeSet<&str>> = BTreeMap::new();
        for e in w.events() {
            recipients
                .entry(e.src.as_str())
                .or_default()
                .insert(e.dst.as_str());
        }
        for (src, dsts) in recipients {
            assert!(
                dsts.len() <= cfg.contacts_per_user,
                "{src} wrote to {} distinct users",
                dsts.len()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            EmailConfig::small().generate(),
            EmailConfig::small().generate()
        );
        let other = EmailConfig {
            seed: 1,
            ..EmailConfig::small()
        };
        assert_ne!(EmailConfig::small().generate(), other.generate());
    }

    #[test]
    fn workload_text_roundtrip() {
        let original = EmailConfig::small().generate();
        let text = format_workload(&original);
        let parsed = parse_workload(&text).expect("parse");
        assert_eq!(parsed.events(), original.events());
        assert_eq!(
            parsed.users().len(),
            original
                .events()
                .iter()
                .flat_map(|e| [e.src.as_str(), e.dst.as_str()])
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
    }

    #[test]
    fn workload_parse_errors_have_line_numbers() {
        for (text, needle) in [
            ("0 08:00:00 a\n", "4 fields"),
            ("x 08:00:00 a b\n", "bad day"),
            ("0 25:00:00 a b\n", "bad time"),
            ("0 08:00:00 a a\n", "self-mail"),
        ] {
            let err = parse_workload(text).unwrap_err();
            assert_eq!(err.line, 1, "for {text:?}");
            assert!(
                err.message.contains(needle),
                "{:?} missing {:?}",
                err.message,
                needle
            );
        }
    }

    #[test]
    fn helpers() {
        let w = EmailConfig::small().generate();
        assert_eq!(w.users().len(), 10);
        assert_eq!(w.events_on_day(0).count() + w.events_on_day(1).count(), 40);
        assert!(!w.is_empty());
        assert_eq!(user_name(3), "u3");
    }
}
