//! Reading and writing encounter traces in a CRAWDAD-style text format.
//!
//! The format is line-oriented and human-editable, one encounter per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! <day> <hh:mm:ss> <bus_a> <bus_b> [duration_secs]
//! 0 08:15:30 3 17 45
//! ```
//!
//! Bus numbers are raw [`ReplicaId`] integers; the optional fifth field
//! records the contact duration in seconds. Lines need not be sorted;
//! parsing sorts the trace. This lets the real DieselNet trace (or any
//! other contact trace) be converted with a few lines of awk and dropped
//! into the experiments in place of the synthetic generator.

use std::fmt;

use pfr::{ReplicaId, SimTime};

use crate::mobility::{Encounter, EncounterTrace};

/// Errors from parsing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

/// Parses a trace from its text form.
///
/// # Errors
///
/// Returns a [`TraceParseError`] identifying the first malformed line.
///
/// # Examples
///
/// ```
/// let text = "# two buses meet twice\n0 08:00:00 1 2\n0 09:30:00 1 2\n";
/// let trace = traces::parse_trace(text)?;
/// assert_eq!(trace.len(), 2);
/// # Ok::<(), traces::TraceParseError>(())
/// ```
pub fn parse_trace(text: &str) -> Result<EncounterTrace, TraceParseError> {
    let mut encounters = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(TraceParseError {
                line: line_no,
                message: format!("expected 4 or 5 fields, found {}", fields.len()),
            });
        }
        let day: u64 = fields[0].parse().map_err(|_| TraceParseError {
            line: line_no,
            message: format!("bad day number {:?}", fields[0]),
        })?;
        let time = parse_hms(fields[1]).ok_or_else(|| TraceParseError {
            line: line_no,
            message: format!("bad time {:?} (expected hh:mm:ss)", fields[1]),
        })?;
        let a: u64 = fields[2].parse().map_err(|_| TraceParseError {
            line: line_no,
            message: format!("bad bus id {:?}", fields[2]),
        })?;
        let b: u64 = fields[3].parse().map_err(|_| TraceParseError {
            line: line_no,
            message: format!("bad bus id {:?}", fields[3]),
        })?;
        if a == b {
            return Err(TraceParseError {
                line: line_no,
                message: format!("self-encounter of bus {a}"),
            });
        }
        let duration_secs: u64 = match fields.get(4) {
            None => 0,
            Some(v) => v.parse().map_err(|_| TraceParseError {
                line: line_no,
                message: format!("bad duration {v:?}"),
            })?,
        };
        encounters.push(Encounter::with_duration(
            SimTime::from_hms(day, time.0, time.1, time.2),
            ReplicaId::new(a),
            ReplicaId::new(b),
            pfr::SimDuration::from_secs(duration_secs),
        ));
    }
    Ok(EncounterTrace::from_encounters(encounters))
}

fn parse_hms(s: &str) -> Option<(u64, u64, u64)> {
    let mut parts = s.split(':');
    let h: u64 = parts.next()?.parse().ok()?;
    let m: u64 = parts.next()?.parse().ok()?;
    let sec: u64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || h >= 24 || m >= 60 || sec >= 60 {
        return None;
    }
    Some((h, m, sec))
}

/// Renders a trace to the text format accepted by [`parse_trace`].
pub fn format_trace(trace: &EncounterTrace) -> String {
    let mut out = String::with_capacity(trace.len() * 20 + 64);
    out.push_str("# replidtn encounter trace: <day> <hh:mm:ss> <bus_a> <bus_b> <duration_secs>\n");
    for e in trace.iter() {
        let s = e.time.seconds_into_day();
        out.push_str(&format!(
            "{} {:02}:{:02}:{:02} {} {} {}\n",
            e.time.day(),
            s / 3600,
            (s % 3600) / 60,
            s % 60,
            e.a.as_u64(),
            e.b.as_u64(),
            e.duration.as_secs()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_trace() {
        let trace = parse_trace("0 08:00:00 1 2\n1 22:59:59 3 4\n").unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.days(), 2);
        let first = trace.iter().next().unwrap();
        assert_eq!(first.pair(), (ReplicaId::new(1), ReplicaId::new(2)));
        assert_eq!(first.time, SimTime::from_hms(0, 8, 0, 0));
    }

    #[test]
    fn comments_blanks_and_order() {
        let text = "\n# header\n0 10:00:00 2 1\n\n0 08:00:00 5 6\n";
        let trace = parse_trace(text).unwrap();
        assert_eq!(trace.len(), 2);
        // Sorted despite input order.
        assert_eq!(
            trace.iter().next().unwrap().time,
            SimTime::from_hms(0, 8, 0, 0)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("0 08:00:00 1\n", 1, "4 or 5 fields"),
            ("0 08:00:00 1 2\nx 08:00:00 1 2\n", 2, "bad day"),
            ("0 25:00:00 1 2\n", 1, "bad time"),
            ("0 08:61:00 1 2\n", 1, "bad time"),
            ("0 08:00 1 2\n", 1, "bad time"),
            ("0 08:00:00 z 2\n", 1, "bad bus id"),
            ("0 08:00:00 3 3\n", 1, "self-encounter"),
        ];
        for (text, line, needle) in cases {
            let err = parse_trace(text).unwrap_err();
            assert_eq!(err.line, line, "for {text:?}");
            assert!(
                err.message.contains(needle),
                "error {:?} should mention {:?}",
                err.message,
                needle
            );
            assert!(err.to_string().contains("line"));
        }
    }

    #[test]
    fn format_parse_roundtrip() {
        let original = crate::DieselNetConfig::small().generate();
        let text = format_trace(&original);
        let parsed = parse_trace(&text).unwrap();
        assert_eq!(parsed, original);
    }
}
