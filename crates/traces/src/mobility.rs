//! Encounter traces: the mobility input of the emulation.

use std::collections::{BTreeMap, BTreeSet};

use pfr::{ReplicaId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One opportunistic meeting between two nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Encounter {
    /// When the meeting happens.
    pub time: SimTime,
    /// One party (by convention the smaller id, but not required).
    pub a: ReplicaId,
    /// The other party.
    pub b: ReplicaId,
    /// How long the nodes stay in range ([`SimDuration::ZERO`] when the
    /// trace does not record durations). Duration-aware bandwidth models
    /// derive per-encounter transfer budgets from this.
    pub duration: SimDuration,
}

impl Encounter {
    /// Creates an encounter with unknown duration, normalizing the pair so
    /// `a <= b`.
    pub fn new(time: SimTime, a: ReplicaId, b: ReplicaId) -> Self {
        Encounter::with_duration(time, a, b, SimDuration::ZERO)
    }

    /// Creates an encounter with a recorded contact duration.
    pub fn with_duration(time: SimTime, a: ReplicaId, b: ReplicaId, duration: SimDuration) -> Self {
        if a <= b {
            Encounter {
                time,
                a,
                b,
                duration,
            }
        } else {
            Encounter {
                time,
                a: b,
                b: a,
                duration,
            }
        }
    }

    /// The unordered node pair.
    pub fn pair(&self) -> (ReplicaId, ReplicaId) {
        (self.a, self.b)
    }
}

/// A time-ordered schedule of encounters, split into days — the shape of
/// the DieselNet bus traces the paper's experiments replay.
///
/// # Examples
///
/// ```
/// use traces::{Encounter, EncounterTrace};
/// use pfr::{ReplicaId, SimTime};
///
/// let mut trace = EncounterTrace::new();
/// trace.push(Encounter::new(
///     SimTime::from_hms(0, 9, 0, 0),
///     ReplicaId::new(1),
///     ReplicaId::new(2),
/// ));
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.days(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncounterTrace {
    encounters: Vec<Encounter>,
}

impl EncounterTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        EncounterTrace::default()
    }

    /// Builds a trace from encounters, sorting them by time.
    pub fn from_encounters(mut encounters: Vec<Encounter>) -> Self {
        encounters.sort_by_key(|e| (e.time, e.a, e.b));
        EncounterTrace { encounters }
    }

    /// Appends an encounter, keeping the trace sorted.
    pub fn push(&mut self, encounter: Encounter) {
        let pos = self
            .encounters
            .partition_point(|e| (e.time, e.a, e.b) <= (encounter.time, encounter.a, encounter.b));
        self.encounters.insert(pos, encounter);
    }

    /// Number of encounters.
    pub fn len(&self) -> usize {
        self.encounters.len()
    }

    /// Returns `true` if the trace has no encounters.
    pub fn is_empty(&self) -> bool {
        self.encounters.is_empty()
    }

    /// All encounters in time order.
    pub fn iter(&self) -> impl Iterator<Item = &Encounter> {
        self.encounters.iter()
    }

    /// The number of days spanned (day of the last encounter + 1).
    pub fn days(&self) -> u64 {
        self.encounters
            .last()
            .map(|e| e.time.day() + 1)
            .unwrap_or(0)
    }

    /// The nodes that appear anywhere in the trace.
    pub fn nodes(&self) -> BTreeSet<ReplicaId> {
        let mut out = BTreeSet::new();
        for e in &self.encounters {
            out.insert(e.a);
            out.insert(e.b);
        }
        out
    }

    /// The nodes scheduled (appearing in an encounter) on a given day —
    /// the buses "active" that day.
    pub fn nodes_on_day(&self, day: u64) -> BTreeSet<ReplicaId> {
        let mut out = BTreeSet::new();
        for e in self.encounters_on_day(day) {
            out.insert(e.a);
            out.insert(e.b);
        }
        out
    }

    /// The encounters of one day, in time order.
    pub fn encounters_on_day(&self, day: u64) -> &[Encounter] {
        let start = self
            .encounters
            .partition_point(|e| e.time < SimTime::from_hms(day, 0, 0, 0));
        let end = self
            .encounters
            .partition_point(|e| e.time < SimTime::from_hms(day + 1, 0, 0, 0));
        &self.encounters[start..end]
    }

    /// Counts encounters per unordered node pair across the whole trace.
    pub fn pair_counts(&self) -> BTreeMap<(ReplicaId, ReplicaId), usize> {
        let mut counts = BTreeMap::new();
        for e in &self.encounters {
            *counts.entry(e.pair()).or_insert(0) += 1;
        }
        counts
    }

    /// The `k` nodes that `node` encounters most often, most-frequent
    /// first — the "selected" filter strategy's relay set (paper §VI-B).
    pub fn top_partners(&self, node: ReplicaId, k: usize) -> Vec<ReplicaId> {
        let mut counts: BTreeMap<ReplicaId, usize> = BTreeMap::new();
        for e in &self.encounters {
            if e.a == node {
                *counts.entry(e.b).or_insert(0) += 1;
            } else if e.b == node {
                *counts.entry(e.a).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(ReplicaId, usize)> = counts.into_iter().collect();
        // Sort by count desc, then id asc for determinism.
        ranked.sort_by(|(ida, ca), (idb, cb)| cb.cmp(ca).then(ida.cmp(idb)));
        ranked.into_iter().take(k).map(|(id, _)| id).collect()
    }

    /// Mean number of distinct active nodes per day.
    pub fn mean_nodes_per_day(&self) -> f64 {
        let days = self.days();
        if days == 0 {
            return 0.0;
        }
        let total: usize = (0..days).map(|d| self.nodes_on_day(d).len()).sum();
        total as f64 / days as f64
    }
}

impl FromIterator<Encounter> for EncounterTrace {
    fn from_iter<T: IntoIterator<Item = Encounter>>(iter: T) -> Self {
        EncounterTrace::from_encounters(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a EncounterTrace {
    type Item = &'a Encounter;
    type IntoIter = std::slice::Iter<'a, Encounter>;
    fn into_iter(self) -> Self::IntoIter {
        self.encounters.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u64) -> ReplicaId {
        ReplicaId::new(n)
    }

    fn enc(day: u64, hour: u64, a: u64, b: u64) -> Encounter {
        Encounter::new(SimTime::from_hms(day, hour, 0, 0), rid(a), rid(b))
    }

    #[test]
    fn encounter_normalizes_pair_order() {
        let e = Encounter::new(SimTime::ZERO, rid(5), rid(2));
        assert_eq!(e.pair(), (rid(2), rid(5)));
    }

    #[test]
    fn from_encounters_sorts() {
        let trace = EncounterTrace::from_encounters(vec![
            enc(1, 9, 1, 2),
            enc(0, 8, 3, 4),
            enc(0, 10, 1, 3),
        ]);
        let times: Vec<u64> = trace.iter().map(|e| e.time.as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn push_keeps_sorted() {
        let mut trace = EncounterTrace::new();
        trace.push(enc(0, 12, 1, 2));
        trace.push(enc(0, 8, 1, 3));
        trace.push(enc(0, 10, 2, 3));
        let hours: Vec<u64> = trace
            .iter()
            .map(|e| e.time.seconds_into_day() / 3600)
            .collect();
        assert_eq!(hours, vec![8, 10, 12]);
    }

    #[test]
    fn day_slicing() {
        let trace = EncounterTrace::from_encounters(vec![
            enc(0, 8, 1, 2),
            enc(0, 22, 1, 3),
            enc(1, 9, 2, 3),
            enc(2, 9, 4, 5),
        ]);
        assert_eq!(trace.days(), 3);
        assert_eq!(trace.encounters_on_day(0).len(), 2);
        assert_eq!(trace.encounters_on_day(1).len(), 1);
        assert_eq!(
            trace.nodes_on_day(2),
            [rid(4), rid(5)].into_iter().collect()
        );
        assert!(trace.encounters_on_day(7).is_empty());
    }

    #[test]
    fn top_partners_ranked_by_frequency() {
        let mut encounters = Vec::new();
        // node 1 meets node 2 three times, node 3 once, node 4 twice.
        for h in [8, 9, 10] {
            encounters.push(enc(0, h, 1, 2));
        }
        encounters.push(enc(0, 11, 1, 3));
        for h in [12, 13] {
            encounters.push(enc(0, h, 1, 4));
        }
        let trace = EncounterTrace::from_encounters(encounters);
        assert_eq!(trace.top_partners(rid(1), 2), vec![rid(2), rid(4)]);
        assert_eq!(trace.top_partners(rid(1), 10), vec![rid(2), rid(4), rid(3)]);
        assert!(trace.top_partners(rid(9), 3).is_empty());
    }

    #[test]
    fn stats_helpers() {
        let trace = EncounterTrace::from_encounters(vec![enc(0, 8, 1, 2), enc(1, 8, 1, 3)]);
        assert_eq!(trace.nodes().len(), 3);
        assert_eq!(trace.mean_nodes_per_day(), 2.0);
        let counts = trace.pair_counts();
        assert_eq!(counts[&(rid(1), rid(2))], 1);
        assert!(EncounterTrace::new().is_empty());
        assert_eq!(EncounterTrace::new().mean_nodes_per_day(), 0.0);
    }
}
