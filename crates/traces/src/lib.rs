//! # traces — workloads driving the DTN experiments
//!
//! The paper's evaluation replays two real traces: vehicular encounters
//! from the DieselNet bus testbed (CRAWDAD `umass/diesel`) and an e-mail
//! communication pattern from the Enron dataset. Neither is
//! redistributable, so this crate provides:
//!
//! * [`EncounterTrace`] — the trace representation all experiments consume,
//!   with day slicing, per-pair statistics, and top-partner queries;
//! * [`DieselNetConfig`] — a synthetic vehicular trace generator matching
//!   the paper's macro-statistics (17 days, ~23 buses/day, ~16 000
//!   encounters in a 08:00–23:00 window) and route-structured meeting
//!   frequencies;
//! * [`parse_trace`]/[`format_trace`] — a CRAWDAD-style text format so real
//!   traces can be dropped in;
//! * [`EmailConfig`] — an Enron-like workload generator (Zipf senders,
//!   persistent contacts, the paper's exact injection schedule: two-minute
//!   intervals in a two-hour morning window, 490 messages over 8 days);
//! * [`UserAssignment`] — the daily uniform distribution of users onto the
//!   scheduled buses (§VI-A);
//! * [`SpooledTrace`]/[`TraceSpool`] — on-disk encounter spools for
//!   city-scale runs ([`DieselNetConfig::city`],
//!   [`DieselNetConfig::generate_spooled`], [`EmailConfig::city`]):
//!   metadata stays resident, encounters stream from a fixed-width binary
//!   file in time order.
//!
//! ```
//! use traces::{DieselNetConfig, EmailConfig, UserAssignment};
//!
//! let trace = DieselNetConfig::small().generate();
//! let mail = EmailConfig::small().generate();
//! let assignment = UserAssignment::uniform(&trace, mail.users(), 42);
//! let day0_bus = assignment.bus_of(0, &mail.users()[0]);
//! assert!(day0_bus.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod assignment;
mod crawdad;
mod dieselnet;
mod email;
mod mobility;
mod spool;
mod zipf;

pub use assignment::UserAssignment;
pub use crawdad::{format_trace, parse_trace, TraceParseError};
pub use dieselnet::{bus_address, bus_id, DieselNetConfig};
pub use email::{
    format_workload, parse_workload, user_name, EmailConfig, EmailWorkload, MessageEvent,
};
pub use mobility::{Encounter, EncounterTrace};
pub use spool::{Lookahead, SpooledIter, SpooledTrace, TraceSpool};
pub use zipf::Zipf;
