//! Synthetic DieselNet-like vehicular mobility traces.
//!
//! The paper replays encounters from the CRAWDAD `umass/diesel` trace:
//! ~23 buses active per day, 17 usable days (each with encounters from
//! 08:00 to 23:00), about 16 000 encounters total. That trace requires
//! registration and cannot be redistributed, so this generator produces a
//! synthetic trace with the same macro-statistics and — crucially for the
//! experiments — the same *qualitative* meeting structure:
//!
//! * buses belong to routes, and same-route / adjacent-route buses meet
//!   far more often than unrelated ones (so choosing the most-encountered
//!   partners, the "selected" filter strategy, beats a random choice);
//! * day-to-day schedules vary (a bus may be off duty some days), so
//!   encounter patterns are only *partially* predictable — the property
//!   the paper's footnote 1 blames for PROPHET's modest gains.
//!
//! Real CRAWDAD-style traces can be loaded through [`crate::crawdad`]
//! instead; everything downstream consumes the same
//! [`EncounterTrace`](crate::EncounterTrace).

use pfr::{ReplicaId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mobility::{Encounter, EncounterTrace};

/// Configuration for the synthetic vehicular trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DieselNetConfig {
    /// Number of experiment days.
    pub days: u64,
    /// Total fleet size (buses existing across the whole trace).
    pub fleet_size: usize,
    /// Buses scheduled on a given day (paper: average of 23).
    pub buses_per_day: usize,
    /// Number of routes buses are assigned to.
    pub routes: usize,
    /// Number of geographic clusters the routes are grouped into (adjacent
    /// towns in the real trace). Buses in different clusters meet only
    /// through hub routes, so a day's contact graph can be — and sometimes
    /// is — disconnected, which is what gives even flooding policies the
    /// multi-day delivery tails of Figure 7b.
    pub clusters: usize,
    /// Encounters generated per day (paper: ~16 000 over 17 days ≈ 940).
    pub encounters_per_day: usize,
    /// First encounter of each day (paper: 08:00).
    pub day_start_hour: u64,
    /// Last encounter of each day (paper: 23:00).
    pub day_end_hour: u64,
    /// Probability that a bus serves a random route instead of its home
    /// route on a given day. Day-to-day route churn is what makes the real
    /// trace only *partially* predictable.
    pub route_switch_prob: f64,
    /// Relative encounter weight for two buses on the same route.
    pub weight_same_route: f64,
    /// Relative encounter weight for buses on different routes of the same
    /// cluster (shared terminals downtown).
    pub weight_same_cluster: f64,
    /// Relative encounter weight for buses of *different* clusters when
    /// both serve their cluster's hub route (the inter-town connector).
    /// All other cross-cluster pairs never meet on the same day.
    pub weight_bridge: f64,
    /// Probability that a bus keeps yesterday's duty status today. Values
    /// near 1 give multi-day off-duty stretches — the source of the
    /// multi-day delivery tails that even flooding shows in the paper's
    /// Figure 7b (a parked bus can receive nothing).
    pub duty_persistence: f64,
    /// RNG seed: the same seed always yields the same trace.
    pub seed: u64,
}

impl Default for DieselNetConfig {
    /// The paper's macro-statistics: 17 days, ~23 buses/day, ~16 000
    /// encounters, 08:00–23:00.
    fn default() -> Self {
        DieselNetConfig {
            days: 17,
            fleet_size: 34,
            buses_per_day: 23,
            routes: 9,
            clusters: 3,
            encounters_per_day: 941,
            day_start_hour: 8,
            day_end_hour: 23,
            route_switch_prob: 0.7,
            weight_same_route: 100.0,
            weight_same_cluster: 6.0,
            weight_bridge: 1.0,
            duty_persistence: 0.85,
            seed: 0x0d1e5e1,
        }
    }
}

impl DieselNetConfig {
    /// A scaled-down configuration for fast tests and examples.
    pub fn small() -> Self {
        DieselNetConfig {
            days: 4,
            fleet_size: 12,
            buses_per_day: 8,
            routes: 4,
            clusters: 2,
            encounters_per_day: 120,
            ..DieselNetConfig::default()
        }
    }

    /// Generates the synthetic trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no buses, no routes, or
    /// an empty daily window).
    pub fn generate(&self) -> EncounterTrace {
        assert!(self.fleet_size >= 2, "need at least two buses");
        assert!(self.routes >= 1, "need at least one route");
        assert!(
            self.buses_per_day >= 2 && self.buses_per_day <= self.fleet_size,
            "buses_per_day must be within [2, fleet_size]"
        );
        assert!(
            self.day_end_hour > self.day_start_hour,
            "daily window must be non-empty"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Contact durations come from an independent stream so that adding
        // or re-tuning them never perturbs the encounter schedule itself.
        let mut dur_rng = StdRng::seed_from_u64(self.seed ^ 0xd0a7_0a7d);

        // Home routes: bus i prefers route i % routes.
        let home_route = |bus: usize| bus % self.routes;

        // Per-bus duty state evolves as a two-state Markov chain whose
        // stationary on-duty fraction is buses_per_day / fleet_size, with
        // `duty_persistence` controlling how long on/off stretches last.
        let pi_on = (self.buses_per_day as f64 / self.fleet_size as f64).clamp(0.05, 0.95);
        let p_on_on = self.duty_persistence.clamp(0.0, 0.999);
        // Solve the stationary equation for P(off -> off).
        let p_off_off = (1.0 - (1.0 - p_on_on) * pi_on / (1.0 - pi_on)).clamp(0.0, 0.999);
        let mut on_duty: Vec<bool> = (0..self.fleet_size)
            .map(|_| rng.gen::<f64>() < pi_on)
            .collect();

        let mut encounters = Vec::with_capacity((self.days as usize) * self.encounters_per_day);
        for day in 0..self.days {
            // Evolve duty states (the first day uses the stationary draw).
            if day > 0 {
                for state in &mut on_duty {
                    let stay = if *state { p_on_on } else { p_off_off };
                    if rng.gen::<f64>() >= stay {
                        *state = !*state;
                    }
                }
            }
            let mut today: Vec<usize> = (0..self.fleet_size).filter(|&b| on_duty[b]).collect();
            // Guarantee a minimally functional day.
            while today.len() < 2 {
                let extra = rng.gen_range(0..self.fleet_size);
                if !today.contains(&extra) {
                    today.push(extra);
                    on_duty[extra] = true;
                }
            }
            let today = &today[..];

            // Today's route assignment: mostly the home route, with churn.
            let routes_today: Vec<usize> = today
                .iter()
                .map(|&bus| {
                    if rng.gen::<f64>() < self.route_switch_prob {
                        rng.gen_range(0..self.routes)
                    } else {
                        home_route(bus)
                    }
                })
                .collect();

            // Pair weights: dominated by same-route service; different
            // routes of one cluster share terminals; different clusters
            // touch only where both buses serve their cluster's hub route
            // (the first route of the cluster).
            let routes_per_cluster = (self.routes / self.clusters).max(1);
            let cluster_of = |route: usize| (route / routes_per_cluster).min(self.clusters - 1);
            let is_hub = |route: usize| route.is_multiple_of(routes_per_cluster);
            let weight = |ri: usize, rj: usize| -> f64 {
                if ri == rj {
                    self.weight_same_route
                } else if cluster_of(ri) == cluster_of(rj) {
                    self.weight_same_cluster
                } else if is_hub(ri) && is_hub(rj) {
                    self.weight_bridge
                } else {
                    0.0
                }
            };
            let mut pairs = Vec::new();
            let mut cumulative = Vec::new();
            let mut total = 0f64;
            for i in 0..today.len() {
                for j in i + 1..today.len() {
                    total += weight(routes_today[i], routes_today[j]);
                    pairs.push((today[i], today[j]));
                    cumulative.push(total);
                }
            }

            if total <= 0.0 {
                // Degenerate day: no pair can meet (tiny fleets only).
                continue;
            }
            let window_secs = (self.day_end_hour - self.day_start_hour) * 3_600;
            for _ in 0..self.encounters_per_day {
                let pick = rng.gen::<f64>() * total;
                let idx = cumulative
                    .partition_point(|&c| c <= pick)
                    .min(pairs.len() - 1);
                let (x, y) = pairs[idx];
                let offset = rng.gen_range(0..window_secs);
                let time = SimTime::from_hms(day, self.day_start_hour, 0, 0)
                    + pfr::SimDuration::from_secs(offset);
                // Contact durations: mostly brief drive-bys, occasionally a
                // long shared layover (roughly geometric, 20s-600s).
                let duration_secs =
                    20 + dur_rng.gen_range(0..5u64) * dur_rng.gen_range(0..30) as u64;
                encounters.push(Encounter::with_duration(
                    time,
                    bus_id(x),
                    bus_id(y),
                    pfr::SimDuration::from_secs(duration_secs),
                ));
            }
        }
        EncounterTrace::from_encounters(encounters)
    }
}

/// The [`ReplicaId`] used for bus number `index` (0-based).
pub fn bus_id(index: usize) -> ReplicaId {
    ReplicaId::new(index as u64 + 1)
}

/// The conventional address string for a bus node ("bus-1", "bus-2", ...).
pub fn bus_address(id: ReplicaId) -> String {
    format!("bus-{}", id.as_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_macro_stats() {
        let trace = DieselNetConfig::default().generate();
        assert_eq!(trace.days(), 17);
        let total = trace.len();
        assert!(
            (15_000..=17_000).contains(&total),
            "paper has ~16000 encounters, got {total}"
        );
        let mean = trace.mean_nodes_per_day();
        assert!(
            (20.0..=26.0).contains(&mean),
            "paper averages 23 buses/day, got {mean}"
        );
    }

    #[test]
    fn encounters_respect_daily_window() {
        let trace = DieselNetConfig::small().generate();
        for e in trace.iter() {
            let s = e.time.seconds_into_day();
            assert!(
                (8 * 3600..23 * 3600).contains(&s),
                "encounter at {} outside 08:00-23:00",
                e.time
            );
            assert_ne!(e.a, e.b, "no self-encounters");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DieselNetConfig::small().generate();
        let b = DieselNetConfig::small().generate();
        assert_eq!(a, b);
        let c = DieselNetConfig {
            seed: 999,
            ..DieselNetConfig::small()
        }
        .generate();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn route_structure_skews_meeting_frequencies() {
        // The most-frequent partner of a bus should meet it far more often
        // than a median partner: that skew is what "selected" exploits.
        let trace = DieselNetConfig::default().generate();
        let node = bus_id(0);
        let top = trace.top_partners(node, 1);
        assert!(!top.is_empty());
        let counts = trace.pair_counts();
        let count_with = |other: ReplicaId| -> usize {
            let key = if node <= other {
                (node, other)
            } else {
                (other, node)
            };
            counts.get(&key).copied().unwrap_or(0)
        };
        let best = count_with(top[0]);
        let all: Vec<usize> = trace
            .nodes()
            .into_iter()
            .filter(|&n| n != node)
            .map(count_with)
            .collect();
        let mean = all.iter().sum::<usize>() as f64 / all.len() as f64;
        assert!(
            best as f64 > 2.0 * mean,
            "top partner ({best}) should beat mean ({mean}) by >2x"
        );
    }

    #[test]
    fn schedules_vary_across_days() {
        let trace = DieselNetConfig::default().generate();
        let d0 = trace.nodes_on_day(0);
        let d1 = trace.nodes_on_day(1);
        assert_ne!(d0, d1, "bus schedules differ between days");
    }

    #[test]
    fn bus_naming_roundtrip() {
        let id = bus_id(4);
        assert_eq!(id.as_u64(), 5);
        assert_eq!(bus_address(id), "bus-5");
    }

    #[test]
    #[should_panic(expected = "at least two buses")]
    fn degenerate_config_rejected() {
        DieselNetConfig {
            fleet_size: 1,
            buses_per_day: 2,
            ..DieselNetConfig::small()
        }
        .generate();
    }
}
