//! Synthetic DieselNet-like vehicular mobility traces.
//!
//! The paper replays encounters from the CRAWDAD `umass/diesel` trace:
//! ~23 buses active per day, 17 usable days (each with encounters from
//! 08:00 to 23:00), about 16 000 encounters total. That trace requires
//! registration and cannot be redistributed, so this generator produces a
//! synthetic trace with the same macro-statistics and — crucially for the
//! experiments — the same *qualitative* meeting structure:
//!
//! * buses belong to routes, and same-route / adjacent-route buses meet
//!   far more often than unrelated ones (so choosing the most-encountered
//!   partners, the "selected" filter strategy, beats a random choice);
//! * day-to-day schedules vary (a bus may be off duty some days), so
//!   encounter patterns are only *partially* predictable — the property
//!   the paper's footnote 1 blames for PROPHET's modest gains.
//!
//! Real CRAWDAD-style traces can be loaded through [`crate::crawdad`]
//! instead; everything downstream consumes the same
//! [`EncounterTrace`](crate::EncounterTrace).

use pfr::{ReplicaId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mobility::{Encounter, EncounterTrace};

/// Configuration for the synthetic vehicular trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DieselNetConfig {
    /// Number of experiment days.
    pub days: u64,
    /// Total fleet size (buses existing across the whole trace).
    pub fleet_size: usize,
    /// Buses scheduled on a given day (paper: average of 23).
    pub buses_per_day: usize,
    /// Number of routes buses are assigned to.
    pub routes: usize,
    /// Number of geographic clusters the routes are grouped into (adjacent
    /// towns in the real trace). Buses in different clusters meet only
    /// through hub routes, so a day's contact graph can be — and sometimes
    /// is — disconnected, which is what gives even flooding policies the
    /// multi-day delivery tails of Figure 7b.
    pub clusters: usize,
    /// Encounters generated per day (paper: ~16 000 over 17 days ≈ 940).
    pub encounters_per_day: usize,
    /// First encounter of each day (paper: 08:00).
    pub day_start_hour: u64,
    /// Last encounter of each day (paper: 23:00).
    pub day_end_hour: u64,
    /// Probability that a bus serves a random route instead of its home
    /// route on a given day. Day-to-day route churn is what makes the real
    /// trace only *partially* predictable.
    pub route_switch_prob: f64,
    /// Relative encounter weight for two buses on the same route.
    pub weight_same_route: f64,
    /// Relative encounter weight for buses on different routes of the same
    /// cluster (shared terminals downtown).
    pub weight_same_cluster: f64,
    /// Relative encounter weight for buses of *different* clusters when
    /// both serve their cluster's hub route (the inter-town connector).
    /// All other cross-cluster pairs never meet on the same day.
    pub weight_bridge: f64,
    /// Probability that a bus keeps yesterday's duty status today. Values
    /// near 1 give multi-day off-duty stretches — the source of the
    /// multi-day delivery tails that even flooding shows in the paper's
    /// Figure 7b (a parked bus can receive nothing).
    pub duty_persistence: f64,
    /// RNG seed: the same seed always yields the same trace.
    pub seed: u64,
}

impl Default for DieselNetConfig {
    /// The paper's macro-statistics: 17 days, ~23 buses/day, ~16 000
    /// encounters, 08:00–23:00.
    fn default() -> Self {
        DieselNetConfig {
            days: 17,
            fleet_size: 34,
            buses_per_day: 23,
            routes: 9,
            clusters: 3,
            encounters_per_day: 941,
            day_start_hour: 8,
            day_end_hour: 23,
            route_switch_prob: 0.7,
            weight_same_route: 100.0,
            weight_same_cluster: 6.0,
            weight_bridge: 1.0,
            duty_persistence: 0.85,
            seed: 0x0d1e5e1,
        }
    }
}

impl DieselNetConfig {
    /// A scaled-down configuration for fast tests and examples.
    pub fn small() -> Self {
        DieselNetConfig {
            days: 4,
            fleet_size: 12,
            buses_per_day: 8,
            routes: 4,
            clusters: 2,
            encounters_per_day: 120,
            ..DieselNetConfig::default()
        }
    }

    /// A city-scale configuration: the paper's 34-bus topology multiplied
    /// by `scale` along every axis (fleet, daily schedule, routes, towns,
    /// contact volume). Route size, cluster structure, and per-bus contact
    /// rates stay at the paper's values, so the trace is "more city", not
    /// "denser city". At `scale = 50` that is a 1 700-vehicle fleet with
    /// ~47 000 encounters/day — generate it with
    /// [`generate_spooled`](DieselNetConfig::generate_spooled); the
    /// in-memory [`generate`](DieselNetConfig::generate) builds an
    /// all-pairs weight table each day and does not scale past a few
    /// hundred vehicles.
    pub fn city(scale: usize) -> Self {
        let scale = scale.max(1);
        DieselNetConfig {
            fleet_size: 34 * scale,
            buses_per_day: 23 * scale,
            routes: 9 * scale,
            clusters: 3 * scale,
            encounters_per_day: 941 * scale,
            ..DieselNetConfig::default()
        }
    }

    fn validate(&self) {
        assert!(self.fleet_size >= 2, "need at least two buses");
        assert!(self.routes >= 1, "need at least one route");
        assert!(
            self.buses_per_day >= 2 && self.buses_per_day <= self.fleet_size,
            "buses_per_day must be within [2, fleet_size]"
        );
        assert!(
            self.day_end_hour > self.day_start_hour,
            "daily window must be non-empty"
        );
    }

    /// Generates the synthetic trace.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no buses, no routes, or
    /// an empty daily window).
    pub fn generate(&self) -> EncounterTrace {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Contact durations come from an independent stream so that adding
        // or re-tuning them never perturbs the encounter schedule itself.
        let mut dur_rng = StdRng::seed_from_u64(self.seed ^ 0xd0a7_0a7d);

        // Home routes: bus i prefers route i % routes.
        let home_route = |bus: usize| bus % self.routes;

        // Per-bus duty state evolves as a two-state Markov chain whose
        // stationary on-duty fraction is buses_per_day / fleet_size, with
        // `duty_persistence` controlling how long on/off stretches last.
        let pi_on = (self.buses_per_day as f64 / self.fleet_size as f64).clamp(0.05, 0.95);
        let p_on_on = self.duty_persistence.clamp(0.0, 0.999);
        // Solve the stationary equation for P(off -> off).
        let p_off_off = (1.0 - (1.0 - p_on_on) * pi_on / (1.0 - pi_on)).clamp(0.0, 0.999);
        let mut on_duty: Vec<bool> = (0..self.fleet_size)
            .map(|_| rng.gen::<f64>() < pi_on)
            .collect();

        let mut encounters = Vec::with_capacity((self.days as usize) * self.encounters_per_day);
        for day in 0..self.days {
            // Evolve duty states (the first day uses the stationary draw).
            if day > 0 {
                for state in &mut on_duty {
                    let stay = if *state { p_on_on } else { p_off_off };
                    if rng.gen::<f64>() >= stay {
                        *state = !*state;
                    }
                }
            }
            let mut today: Vec<usize> = (0..self.fleet_size).filter(|&b| on_duty[b]).collect();
            // Guarantee a minimally functional day.
            while today.len() < 2 {
                let extra = rng.gen_range(0..self.fleet_size);
                if !today.contains(&extra) {
                    today.push(extra);
                    on_duty[extra] = true;
                }
            }
            let today = &today[..];

            // Today's route assignment: mostly the home route, with churn.
            let routes_today: Vec<usize> = today
                .iter()
                .map(|&bus| {
                    if rng.gen::<f64>() < self.route_switch_prob {
                        rng.gen_range(0..self.routes)
                    } else {
                        home_route(bus)
                    }
                })
                .collect();

            // Pair weights: dominated by same-route service; different
            // routes of one cluster share terminals; different clusters
            // touch only where both buses serve their cluster's hub route
            // (the first route of the cluster).
            let routes_per_cluster = (self.routes / self.clusters).max(1);
            let cluster_of = |route: usize| (route / routes_per_cluster).min(self.clusters - 1);
            let is_hub = |route: usize| route.is_multiple_of(routes_per_cluster);
            let weight = |ri: usize, rj: usize| -> f64 {
                if ri == rj {
                    self.weight_same_route
                } else if cluster_of(ri) == cluster_of(rj) {
                    self.weight_same_cluster
                } else if is_hub(ri) && is_hub(rj) {
                    self.weight_bridge
                } else {
                    0.0
                }
            };
            let mut pairs = Vec::new();
            let mut cumulative = Vec::new();
            let mut total = 0f64;
            for i in 0..today.len() {
                for j in i + 1..today.len() {
                    total += weight(routes_today[i], routes_today[j]);
                    pairs.push((today[i], today[j]));
                    cumulative.push(total);
                }
            }

            if total <= 0.0 {
                // Degenerate day: no pair can meet (tiny fleets only).
                continue;
            }
            let window_secs = (self.day_end_hour - self.day_start_hour) * 3_600;
            for _ in 0..self.encounters_per_day {
                let pick = rng.gen::<f64>() * total;
                let idx = cumulative
                    .partition_point(|&c| c <= pick)
                    .min(pairs.len() - 1);
                let (x, y) = pairs[idx];
                let offset = rng.gen_range(0..window_secs);
                let time = SimTime::from_hms(day, self.day_start_hour, 0, 0)
                    + pfr::SimDuration::from_secs(offset);
                // Contact durations: mostly brief drive-bys, occasionally a
                // long shared layover (roughly geometric, 20s-600s).
                let duration_secs =
                    20 + dur_rng.gen_range(0..5u64) * dur_rng.gen_range(0..30) as u64;
                encounters.push(Encounter::with_duration(
                    time,
                    bus_id(x),
                    bus_id(y),
                    pfr::SimDuration::from_secs(duration_secs),
                ));
            }
        }
        EncounterTrace::from_encounters(encounters)
    }

    /// Generates the trace straight to an on-disk spool, one day at a
    /// time, without ever materializing the whole schedule — the
    /// city-scale path ([`DieselNetConfig::city`]).
    ///
    /// [`generate`](DieselNetConfig::generate) samples each encounter
    /// from an explicit all-pairs weight table, which is O(buses²) memory
    /// and time per day — fine for 34 buses, hopeless for 3 400. This
    /// generator draws from the identical weight *structure*
    /// (same-route ≫ same-cluster ≫ hub-bridge) by sampling the category
    /// first and then a uniform pair within it, so per-day cost is
    /// O(buses + encounters·log routes) and peak memory is one day's
    /// encounter buffer. The two generators produce different (but
    /// equally-distributed) schedules for the same seed; the spooled one
    /// is its own deterministic family.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the spool.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration, like
    /// [`generate`](DieselNetConfig::generate).
    pub fn generate_spooled(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<crate::SpooledTrace> {
        self.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut dur_rng = StdRng::seed_from_u64(self.seed ^ 0xd0a7_0a7d);
        let home_route = |bus: usize| bus % self.routes;

        let pi_on = (self.buses_per_day as f64 / self.fleet_size as f64).clamp(0.05, 0.95);
        let p_on_on = self.duty_persistence.clamp(0.0, 0.999);
        let p_off_off = (1.0 - (1.0 - p_on_on) * pi_on / (1.0 - pi_on)).clamp(0.0, 0.999);
        let mut on_duty: Vec<bool> = (0..self.fleet_size)
            .map(|_| rng.gen::<f64>() < pi_on)
            .collect();

        let routes_per_cluster = (self.routes / self.clusters).max(1);
        let cluster_of = |route: usize| (route / routes_per_cluster).min(self.clusters - 1);
        let is_hub = |route: usize| route.is_multiple_of(routes_per_cluster);
        let pairs2 = |n: usize| (n * n.saturating_sub(1) / 2) as f64;

        let mut spool = crate::TraceSpool::create(path)?;
        for day in 0..self.days {
            if day > 0 {
                for state in &mut on_duty {
                    let stay = if *state { p_on_on } else { p_off_off };
                    if rng.gen::<f64>() >= stay {
                        *state = !*state;
                    }
                }
            }
            let mut today: Vec<usize> = (0..self.fleet_size).filter(|&b| on_duty[b]).collect();
            while today.len() < 2 {
                let extra = rng.gen_range(0..self.fleet_size);
                if !today.contains(&extra) {
                    today.push(extra);
                    on_duty[extra] = true;
                }
            }

            // Today's route assignment, then bucket the active buses by
            // route / cluster / hub so pairs are sampled by category
            // instead of enumerated.
            let mut route_members: Vec<Vec<usize>> = vec![Vec::new(); self.routes];
            let mut cluster_members: Vec<Vec<usize>> = vec![Vec::new(); self.clusters];
            let mut hub_members: Vec<Vec<usize>> = vec![Vec::new(); self.clusters];
            for &bus in &today {
                let route = if rng.gen::<f64>() < self.route_switch_prob {
                    rng.gen_range(0..self.routes)
                } else {
                    home_route(bus)
                };
                route_members[route].push(bus);
                cluster_members[cluster_of(route)].push(bus);
                if is_hub(route) {
                    hub_members[cluster_of(route)].push(bus);
                }
            }
            // Per-route bus→route lookup for the same-cluster rejection
            // draw (two buses of one cluster must serve different routes).
            let mut route_of = vec![usize::MAX; self.fleet_size];
            for (r, members) in route_members.iter().enumerate() {
                for &bus in members {
                    route_of[bus] = r;
                }
            }

            // Category weights and in-category cumulative tables.
            let mut route_cum = Vec::with_capacity(self.routes);
            let mut w_route = 0.0;
            for members in &route_members {
                w_route += pairs2(members.len());
                route_cum.push(w_route);
            }
            let mut cluster_cum = Vec::with_capacity(self.clusters);
            let mut cluster_cross = Vec::with_capacity(self.clusters);
            let mut w_cluster = 0.0;
            for (c, members) in cluster_members.iter().enumerate() {
                let same_route: f64 = route_members
                    .iter()
                    .enumerate()
                    .filter(|(r, _)| cluster_of(*r) == c)
                    .map(|(_, m)| pairs2(m.len()))
                    .sum();
                let cross = (pairs2(members.len()) - same_route).max(0.0);
                cluster_cross.push(cross);
                w_cluster += cross;
                cluster_cum.push(w_cluster);
            }
            let hub_total: f64 = hub_members.iter().map(|m| m.len() as f64).sum();
            let hub_sq: f64 = hub_members.iter().map(|m| (m.len() as f64).powi(2)).sum();
            let mut hub_cum = Vec::with_capacity(self.clusters);
            let mut acc = 0.0;
            for members in &hub_members {
                acc += members.len() as f64;
                hub_cum.push(acc);
            }
            let w_bridge = (hub_total * hub_total - hub_sq) / 2.0;

            let total = self.weight_same_route * w_route
                + self.weight_same_cluster * w_cluster
                + self.weight_bridge * w_bridge;
            if total <= 0.0 {
                continue; // degenerate day: no pair can meet
            }

            // Uniform unordered pair from a bucket of distinct members.
            let pick_pair = |rng: &mut StdRng, members: &[usize]| -> (usize, usize) {
                let i = rng.gen_range(0..members.len());
                let mut j = rng.gen_range(0..members.len() - 1);
                if j >= i {
                    j += 1;
                }
                (members[i], members[j])
            };
            // Cumulative-table draw. Float rounding at the top of the
            // range can overshoot onto a trailing zero-weight bucket, so
            // walk left until `valid` (some valid bucket always exists —
            // the category's total weight was positive).
            let pick_bucket = |cum: &[f64], t: f64, valid: &dyn Fn(usize) -> bool| -> usize {
                let mut i = cum.partition_point(|&c| c <= t).min(cum.len() - 1);
                while !valid(i) {
                    i -= 1;
                }
                i
            };

            let window_secs = (self.day_end_hour - self.day_start_hour) * 3_600;
            let mut encounters = Vec::with_capacity(self.encounters_per_day);
            for _ in 0..self.encounters_per_day {
                let pick = rng.gen::<f64>() * total;
                let same_cluster_cutoff =
                    self.weight_same_route * w_route + self.weight_same_cluster * w_cluster;
                let (x, y) = if pick < self.weight_same_route * w_route {
                    // Same route: route r with probability ∝ C(n_r, 2).
                    let t = pick / self.weight_same_route;
                    let r = pick_bucket(&route_cum, t, &|r| route_members[r].len() >= 2);
                    pick_pair(&mut rng, &route_members[r])
                } else if pick < same_cluster_cutoff {
                    // Same cluster, different routes: cluster ∝ its
                    // cross-route pair count, then rejection-sample a
                    // distinct pair until the routes differ (acceptance
                    // is the exact conditional, so the pair is uniform
                    // over cross-route pairs of the cluster).
                    let t = (pick - self.weight_same_route * w_route) / self.weight_same_cluster;
                    let c = pick_bucket(&cluster_cum, t, &|c| cluster_cross[c] > 0.0);
                    loop {
                        let (x, y) = pick_pair(&mut rng, &cluster_members[c]);
                        if route_of[x] != route_of[y] {
                            break (x, y);
                        }
                    }
                } else {
                    // Bridge: hub buses of two different clusters, pair
                    // probability ∝ h_i · h_j.
                    let t = rng.gen::<f64>() * hub_total;
                    let ci = pick_bucket(&hub_cum, t, &|c| !hub_members[c].is_empty());
                    let cj = loop {
                        let t = rng.gen::<f64>() * hub_total;
                        let cj = pick_bucket(&hub_cum, t, &|c| !hub_members[c].is_empty());
                        if cj != ci {
                            break cj;
                        }
                    };
                    (
                        hub_members[ci][rng.gen_range(0..hub_members[ci].len())],
                        hub_members[cj][rng.gen_range(0..hub_members[cj].len())],
                    )
                };
                let offset = rng.gen_range(0..window_secs);
                let time = SimTime::from_hms(day, self.day_start_hour, 0, 0)
                    + pfr::SimDuration::from_secs(offset);
                let duration_secs =
                    20 + dur_rng.gen_range(0..5u64) * dur_rng.gen_range(0..30) as u64;
                encounters.push(Encounter::with_duration(
                    time,
                    bus_id(x),
                    bus_id(y),
                    pfr::SimDuration::from_secs(duration_secs),
                ));
            }
            spool.push_day(encounters)?;
        }
        spool.finish()
    }
}

/// The [`ReplicaId`] used for bus number `index` (0-based).
pub fn bus_id(index: usize) -> ReplicaId {
    ReplicaId::new(index as u64 + 1)
}

/// The conventional address string for a bus node ("bus-1", "bus-2", ...).
pub fn bus_address(id: ReplicaId) -> String {
    format!("bus-{}", id.as_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_macro_stats() {
        let trace = DieselNetConfig::default().generate();
        assert_eq!(trace.days(), 17);
        let total = trace.len();
        assert!(
            (15_000..=17_000).contains(&total),
            "paper has ~16000 encounters, got {total}"
        );
        let mean = trace.mean_nodes_per_day();
        assert!(
            (20.0..=26.0).contains(&mean),
            "paper averages 23 buses/day, got {mean}"
        );
    }

    #[test]
    fn encounters_respect_daily_window() {
        let trace = DieselNetConfig::small().generate();
        for e in trace.iter() {
            let s = e.time.seconds_into_day();
            assert!(
                (8 * 3600..23 * 3600).contains(&s),
                "encounter at {} outside 08:00-23:00",
                e.time
            );
            assert_ne!(e.a, e.b, "no self-encounters");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DieselNetConfig::small().generate();
        let b = DieselNetConfig::small().generate();
        assert_eq!(a, b);
        let c = DieselNetConfig {
            seed: 999,
            ..DieselNetConfig::small()
        }
        .generate();
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn route_structure_skews_meeting_frequencies() {
        // The most-frequent partner of a bus should meet it far more often
        // than a median partner: that skew is what "selected" exploits.
        let trace = DieselNetConfig::default().generate();
        let node = bus_id(0);
        let top = trace.top_partners(node, 1);
        assert!(!top.is_empty());
        let counts = trace.pair_counts();
        let count_with = |other: ReplicaId| -> usize {
            let key = if node <= other {
                (node, other)
            } else {
                (other, node)
            };
            counts.get(&key).copied().unwrap_or(0)
        };
        let best = count_with(top[0]);
        let all: Vec<usize> = trace
            .nodes()
            .into_iter()
            .filter(|&n| n != node)
            .map(count_with)
            .collect();
        let mean = all.iter().sum::<usize>() as f64 / all.len() as f64;
        assert!(
            best as f64 > 2.0 * mean,
            "top partner ({best}) should beat mean ({mean}) by >2x"
        );
    }

    #[test]
    fn schedules_vary_across_days() {
        let trace = DieselNetConfig::default().generate();
        let d0 = trace.nodes_on_day(0);
        let d1 = trace.nodes_on_day(1);
        assert_ne!(d0, d1, "bus schedules differ between days");
    }

    #[test]
    fn bus_naming_roundtrip() {
        let id = bus_id(4);
        assert_eq!(id.as_u64(), 5);
        assert_eq!(bus_address(id), "bus-5");
    }

    #[test]
    fn city_scales_every_axis() {
        let city = DieselNetConfig::city(50);
        assert_eq!(city.fleet_size, 1_700);
        assert_eq!(city.buses_per_day, 23 * 50);
        assert_eq!(city.routes, 9 * 50);
        assert_eq!(city.clusters, 3 * 50);
        assert_eq!(city.encounters_per_day, 941 * 50);
        assert_eq!(city.days, 17, "non-scaled axes keep the paper's values");
        assert_eq!(DieselNetConfig::city(0), DieselNetConfig::city(1));
    }

    #[test]
    fn spooled_generator_matches_trace_invariants() {
        let dir = std::env::temp_dir().join(format!("replidtn-dieselnet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("small.spool");
        let cfg = DieselNetConfig::small();
        let spooled = cfg.generate_spooled(&path).expect("generate");
        assert_eq!(spooled.days(), cfg.days);
        assert_eq!(
            spooled.len(),
            (cfg.days as usize * cfg.encounters_per_day) as u64
        );
        let mut last = None;
        for e in spooled.iter().expect("open") {
            let s = e.time.seconds_into_day();
            assert!(
                (8 * 3600..23 * 3600).contains(&s),
                "encounter at {} outside 08:00-23:00",
                e.time
            );
            assert_ne!(e.a, e.b, "no self-encounters");
            let key = (e.time, e.a, e.b);
            assert!(last <= Some(key), "stream stays time-ordered");
            last = Some(key);
        }
        // Deterministic: a second run writes a byte-identical spool.
        let again = dir.join("small-again.spool");
        cfg.generate_spooled(&again).expect("regenerate");
        assert_eq!(
            std::fs::read(&path).expect("read"),
            std::fs::read(&again).expect("read again"),
        );
    }

    #[test]
    fn spooled_generator_keeps_route_skew() {
        // Category sampling must preserve the same-route dominance that
        // the "selected" filter strategy exploits.
        let dir = std::env::temp_dir().join(format!("replidtn-dieselnet-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spooled = DieselNetConfig::default()
            .generate_spooled(dir.join("default.spool"))
            .expect("generate");
        let mut counts: std::collections::BTreeMap<(ReplicaId, ReplicaId), usize> =
            std::collections::BTreeMap::new();
        let node = bus_id(0);
        for e in spooled.iter().expect("open") {
            *counts.entry((e.a, e.b)).or_default() += 1;
        }
        let count_with = |other: ReplicaId| -> usize {
            let key = if node <= other {
                (node, other)
            } else {
                (other, node)
            };
            counts.get(&key).copied().unwrap_or(0)
        };
        let all: Vec<usize> = spooled
            .nodes()
            .iter()
            .filter(|&&n| n != node)
            .map(|&n| count_with(n))
            .collect();
        let best = *all.iter().max().unwrap();
        let mean = all.iter().sum::<usize>() as f64 / all.len() as f64;
        assert!(
            best as f64 > 2.0 * mean,
            "top partner ({best}) should beat mean ({mean}) by >2x"
        );
    }

    #[test]
    #[should_panic(expected = "at least two buses")]
    fn degenerate_config_rejected() {
        DieselNetConfig {
            fleet_size: 1,
            buses_per_day: 2,
            ..DieselNetConfig::small()
        }
        .generate();
    }
}
