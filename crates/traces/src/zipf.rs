//! A small Zipf-distribution sampler.
//!
//! E-mail sending activity is famously heavy-tailed; the Enron-like
//! workload generator draws senders from a Zipf distribution. `rand`
//! (without `rand_distr`) has no Zipf sampler, so this implements the
//! standard inverse-CDF method over a precomputed table.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`.
///
/// # Examples
///
/// ```
/// use traces::Zipf;
/// use rand::SeedableRng;
///
/// let zipf = Zipf::new(100, 1.1);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative distribution over ranks; `cdf[i]` = P(rank <= i).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution over `n` ranks with the given exponent.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent` is not finite.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(exponent.is_finite(), "Zipf exponent must be finite");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the distribution has no ranks (never: `new`
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose CDF covers u.
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }

    /// The probability mass of one rank.
    pub fn mass(&self, rank: usize) -> f64 {
        if rank == 0 {
            self.cdf[0]
        } else {
            self.cdf[rank] - self.cdf[rank - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mass_is_monotone_decreasing() {
        let z = Zipf::new(50, 1.1);
        for rank in 1..50 {
            assert!(
                z.mass(rank) <= z.mass(rank - 1) + 1e-12,
                "mass must not increase with rank"
            );
        }
    }

    #[test]
    fn cdf_is_normalized() {
        let z = Zipf::new(10, 0.8);
        assert!((z.cdf.last().unwrap() - 1.0).abs() < 1e-12);
        let sum: f64 = (0..10).map(|r| z.mass(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_cover_low_ranks_heavily() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 100];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 must dominate rank 50");
        assert!(
            counts.iter().sum::<usize>() == 10_000,
            "all samples in range"
        );
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for rank in 0..4 {
            assert!((z.mass(rank) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn single_rank_always_sampled() {
        let z = Zipf::new(1, 2.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panic() {
        let _ = Zipf::new(0, 1.0);
    }
}
