//! Per-day assignment of e-mail users to buses.
//!
//! "For each day in our experimental run, the experiment uniformly
//! distributes e-mail users to the buses scheduled on that day" (§VI-A):
//! a user's mail is delivered to whichever bus carries them today, so the
//! assignment is the bridge between the e-mail workload (users) and the
//! mobility trace (buses).

use std::collections::BTreeMap;

use pfr::ReplicaId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mobility::EncounterTrace;

/// For each day, which bus hosts each user.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UserAssignment {
    /// day -> (user -> bus).
    by_day: BTreeMap<u64, BTreeMap<String, ReplicaId>>,
}

impl UserAssignment {
    /// Uniformly assigns `users` to the buses scheduled on each day of the
    /// trace. Deterministic for a given seed. Days with no scheduled buses
    /// get no assignments (users are unreachable that day, as in the real
    /// trace when a bus is off duty).
    pub fn uniform(trace: &EncounterTrace, users: &[String], seed: u64) -> Self {
        Self::uniform_over_schedule(
            trace.days(),
            |day| trace.nodes_on_day(day).into_iter().collect(),
            users,
            seed,
        )
    }

    /// [`uniform`](UserAssignment::uniform) for a spooled trace: same
    /// draw sequence, fed from the spool's resident per-day schedules, so
    /// an in-memory trace and its spooled twin produce *identical*
    /// assignments for the same seed.
    pub fn uniform_spooled(trace: &crate::SpooledTrace, users: &[String], seed: u64) -> Self {
        Self::uniform_over_schedule(
            trace.days(),
            |day| trace.nodes_on_day(day).into_iter().collect(),
            users,
            seed,
        )
    }

    /// Shared draw loop: one `StdRng`, days in order, buses in sorted
    /// (`BTreeSet`) order — any divergence here would silently desync the
    /// in-memory and spooled experiment paths.
    fn uniform_over_schedule(
        days: u64,
        buses_on_day: impl Fn(u64) -> Vec<ReplicaId>,
        users: &[String],
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut by_day = BTreeMap::new();
        for day in 0..days {
            let buses = buses_on_day(day);
            if buses.is_empty() {
                continue;
            }
            let mut today = BTreeMap::new();
            for user in users {
                let bus = buses[rng.gen_range(0..buses.len())];
                today.insert(user.clone(), bus);
            }
            by_day.insert(day, today);
        }
        UserAssignment { by_day }
    }

    /// The bus hosting `user` on `day`, if any.
    pub fn bus_of(&self, day: u64, user: &str) -> Option<ReplicaId> {
        self.by_day.get(&day)?.get(user).copied()
    }

    /// The users hosted by `bus` on `day`.
    pub fn users_of(&self, day: u64, bus: ReplicaId) -> Vec<String> {
        self.by_day
            .get(&day)
            .map(|m| {
                m.iter()
                    .filter(|(_, &b)| b == bus)
                    .map(|(u, _)| u.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Days with assignments.
    pub fn days(&self) -> impl Iterator<Item = u64> + '_ {
        self.by_day.keys().copied()
    }

    /// The full map for one day.
    pub fn day_map(&self, day: u64) -> Option<&BTreeMap<String, ReplicaId>> {
        self.by_day.get(&day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dieselnet::DieselNetConfig;
    use crate::email::user_name;

    fn setup() -> (EncounterTrace, Vec<String>, UserAssignment) {
        let trace = DieselNetConfig::small().generate();
        let users: Vec<String> = (0..10).map(user_name).collect();
        let assignment = UserAssignment::uniform(&trace, &users, 7);
        (trace, users, assignment)
    }

    #[test]
    fn every_user_assigned_every_day() {
        let (trace, users, assignment) = setup();
        for day in 0..trace.days() {
            let buses = trace.nodes_on_day(day);
            for user in &users {
                let bus = assignment.bus_of(day, user).expect("assigned");
                assert!(buses.contains(&bus), "assigned bus is scheduled that day");
            }
        }
    }

    #[test]
    fn users_of_inverts_bus_of() {
        let (trace, users, assignment) = setup();
        for day in 0..trace.days() {
            for bus in trace.nodes_on_day(day) {
                for user in assignment.users_of(day, bus) {
                    assert_eq!(assignment.bus_of(day, &user), Some(bus));
                }
            }
            let total: usize = trace
                .nodes_on_day(day)
                .into_iter()
                .map(|b| assignment.users_of(day, b).len())
                .sum();
            assert_eq!(total, users.len(), "partition covers all users");
        }
    }

    #[test]
    fn assignments_change_between_days() {
        let (trace, users, assignment) = setup();
        // With 10 users and >=2 days, at least one user should move.
        let moved = users.iter().any(|u| {
            let buses: Vec<_> = (0..trace.days())
                .filter_map(|d| assignment.bus_of(d, u))
                .collect();
            buses.windows(2).any(|w| w[0] != w[1])
        });
        assert!(moved, "daily re-assignment should move someone");
    }

    #[test]
    fn deterministic_per_seed() {
        let (trace, users, _) = setup();
        let a = UserAssignment::uniform(&trace, &users, 1);
        let b = UserAssignment::uniform(&trace, &users, 1);
        let c = UserAssignment::uniform(&trace, &users, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn spooled_assignment_matches_in_memory() {
        let (trace, users, assignment) = setup();
        let dir = std::env::temp_dir().join(format!("replidtn-assign-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let spooled = crate::SpooledTrace::spool(&trace, dir.join("assign.spool")).expect("spool");
        let via_spool = UserAssignment::uniform_spooled(&spooled, &users, 7);
        assert_eq!(assignment, via_spool, "identical draws either way");
    }

    #[test]
    fn unknown_day_or_user() {
        let (_, _, assignment) = setup();
        assert_eq!(assignment.bus_of(999, "u0"), None);
        assert_eq!(assignment.bus_of(0, "nobody"), None);
        assert!(assignment.users_of(999, ReplicaId::new(1)).is_empty());
    }
}
