//! Declarative fault plans: which frames on a simulated link get damaged,
//! and how.
//!
//! A [`FaultPlan`] is a list of rules, each pairing a [`FaultScope`] (which
//! direction, which frame index, or a seeded probability) with a
//! [`FrameFault`] (what happens to a matching frame). Plans are plain data
//! — `Clone + Debug` — so a failing run can print the exact `(seed, plan)`
//! pair needed to reproduce it.

use rand::rngs::StdRng;
use rand::Rng;

/// Which way a frame is travelling across one simulated link. `AToB` is
/// the initiator-to-responder direction of the session the link carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Initiator → responder.
    AToB,
    /// Responder → initiator.
    BToA,
}

/// What happens to a frame selected by a fault rule.
///
/// The sync protocol is strictly alternating (each side writes exactly one
/// frame and then waits), so any fault that withholds bytes would stall
/// both sides forever. To keep runs deterministic, withholding faults also
/// close the link: the deprived reader sees EOF immediately instead of
/// hanging, and the session terminates with a typed I/O error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameFault {
    /// The frame is lost and the link closes: the receiver sees EOF where
    /// the frame should have been.
    Drop,
    /// The frame is delivered twice; the receiver's next read gets an
    /// unexpected repeat.
    Duplicate,
    /// The frame is held back and delivered *after* the next frame in the
    /// same direction — a genuine swap on a pipelined protocol. On this
    /// lockstep protocol no next frame ever comes, so the held frame is
    /// discarded when the link closes (see the stall note on the enum).
    Reorder,
    /// Only the first `keep` bytes of the frame are delivered, then the
    /// link closes mid-frame.
    Truncate {
        /// Bytes of the frame actually delivered (clamped below the frame
        /// length so the cut is real).
        keep: usize,
    },
    /// One byte of the frame is XOR-flipped and the frame delivered in
    /// full. The flip lands past the magic and length fields (offsets
    /// covered by the frame checksum), so it surfaces as a typed
    /// `BadChecksum`, never as a silent desync.
    Corrupt {
        /// Position of the flipped byte, wrapped into the checksummed
        /// region of the frame.
        offset: usize,
        /// XOR mask applied to the byte; must be non-zero.
        xor: u8,
    },
}

/// Which frames of a link a rule applies to, counted per direction
/// starting at 0.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FrameSelector {
    /// Every frame.
    Every,
    /// Exactly the frame with this per-direction index.
    Index(u64),
    /// This frame and every later one in the same direction.
    From(u64),
    /// Each frame independently with this probability, drawn from the
    /// link's seeded generator.
    Probability(f64),
}

/// Where a fault applies: an optional direction restriction plus a frame
/// selector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultScope {
    /// Restricts the rule to one direction; `None` matches both.
    pub direction: Option<Direction>,
    /// Which frame indices the rule matches.
    pub selector: FrameSelector,
}

/// One scoped fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultRule {
    /// Which frames the rule matches.
    pub scope: FaultScope,
    /// What happens to a matching frame.
    pub fault: FrameFault,
}

/// A reproducible schedule of frame faults for one simulated link.
///
/// The first rule matching a frame wins. An empty plan is a perfect link.
///
/// # Examples
///
/// ```
/// use testkit::{Direction, FaultPlan};
///
/// // Corrupt the responder's first batch, then cut the session after the
/// // initiator's third frame.
/// let plan = FaultPlan::clean()
///     .corrupt_frame(Direction::BToA, 1, 4, 0x20)
///     .cut_after(Direction::AToB, 3);
/// assert!(!plan.is_clean());
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan with no faults: frames pass through untouched.
    pub fn clean() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan has no rules.
    pub fn is_clean(&self) -> bool {
        self.rules.is_empty()
    }

    /// The plan's rules in match order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Appends an arbitrary scoped rule.
    pub fn rule(mut self, scope: FaultScope, fault: FrameFault) -> FaultPlan {
        if let FrameFault::Corrupt { xor, .. } = fault {
            assert!(xor != 0, "a zero XOR mask corrupts nothing");
        }
        if let FrameSelector::Probability(p) = scope.selector {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        self.rules.push(FaultRule { scope, fault });
        self
    }

    fn indexed(self, direction: Direction, index: u64, fault: FrameFault) -> FaultPlan {
        self.rule(
            FaultScope {
                direction: Some(direction),
                selector: FrameSelector::Index(index),
            },
            fault,
        )
    }

    /// Loses frame `index` travelling in `direction` (and closes the link).
    pub fn drop_frame(self, direction: Direction, index: u64) -> FaultPlan {
        self.indexed(direction, index, FrameFault::Drop)
    }

    /// Delivers frame `index` twice.
    pub fn duplicate_frame(self, direction: Direction, index: u64) -> FaultPlan {
        self.indexed(direction, index, FrameFault::Duplicate)
    }

    /// Holds frame `index` back behind its successor (see
    /// [`FrameFault::Reorder`]).
    pub fn reorder_frame(self, direction: Direction, index: u64) -> FaultPlan {
        self.indexed(direction, index, FrameFault::Reorder)
    }

    /// Delivers only the first `keep` bytes of frame `index`, then closes
    /// the link.
    pub fn truncate_frame(self, direction: Direction, index: u64, keep: usize) -> FaultPlan {
        self.indexed(direction, index, FrameFault::Truncate { keep })
    }

    /// XOR-flips one byte of frame `index` within its checksummed region.
    pub fn corrupt_frame(
        self,
        direction: Direction,
        index: u64,
        offset: usize,
        xor: u8,
    ) -> FaultPlan {
        self.indexed(direction, index, FrameFault::Corrupt { offset, xor })
    }

    /// Cuts the session after `n` frames have been delivered in
    /// `direction`: frame `n` and everything after it is lost.
    pub fn cut_after(self, direction: Direction, n: u64) -> FaultPlan {
        self.rule(
            FaultScope {
                direction: Some(direction),
                selector: FrameSelector::From(n),
            },
            FrameFault::Drop,
        )
    }

    /// Loses each frame (in either direction) independently with
    /// probability `p`, drawn from the link's seeded generator.
    pub fn drop_with_probability(self, p: f64) -> FaultPlan {
        self.rule(
            FaultScope {
                direction: None,
                selector: FrameSelector::Probability(p),
            },
            FrameFault::Drop,
        )
    }

    /// The fault (if any) to apply to the frame with per-direction index
    /// `index` travelling in `direction`. Probabilistic selectors draw
    /// from `rng` — the per-direction seeded generator — so the decision
    /// sequence is a pure function of `(seed, plan)`.
    pub(crate) fn fault_for(
        &self,
        direction: Direction,
        index: u64,
        rng: &mut StdRng,
    ) -> Option<FrameFault> {
        for rule in &self.rules {
            if let Some(d) = rule.scope.direction {
                if d != direction {
                    continue;
                }
            }
            let matched = match rule.scope.selector {
                FrameSelector::Every => true,
                FrameSelector::Index(i) => index == i,
                FrameSelector::From(i) => index >= i,
                FrameSelector::Probability(p) => rng.gen_bool(p),
            };
            if matched {
                return Some(rule.fault);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn first_matching_rule_wins() {
        let plan = FaultPlan::clean()
            .drop_frame(Direction::AToB, 2)
            .duplicate_frame(Direction::AToB, 2);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            plan.fault_for(Direction::AToB, 2, &mut rng),
            Some(FrameFault::Drop)
        );
        assert_eq!(plan.fault_for(Direction::AToB, 1, &mut rng), None);
        assert_eq!(plan.fault_for(Direction::BToA, 2, &mut rng), None);
    }

    #[test]
    fn cut_after_matches_the_tail() {
        let plan = FaultPlan::clean().cut_after(Direction::BToA, 1);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(plan.fault_for(Direction::BToA, 0, &mut rng), None);
        for index in 1..5 {
            assert_eq!(
                plan.fault_for(Direction::BToA, index, &mut rng),
                Some(FrameFault::Drop)
            );
        }
    }

    #[test]
    fn probabilistic_drops_are_seed_deterministic() {
        let plan = FaultPlan::clean().drop_with_probability(0.5);
        let draw = |seed: u64| -> Vec<bool> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|i| plan.fault_for(Direction::AToB, i, &mut rng).is_some())
                .collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    #[should_panic(expected = "zero XOR mask")]
    fn zero_xor_is_rejected() {
        let _ = FaultPlan::clean().corrupt_frame(Direction::AToB, 0, 0, 0);
    }
}
