//! # testkit — deterministic fault injection for the sync protocol
//!
//! The production stack replicates over a lockstep frame protocol
//! ([`transport`]); this crate turns that stack into a closed, seeded
//! simulation so its failure behaviour can be scripted and asserted:
//!
//! * [`SimNet`] — an in-memory link implementing
//!   [`transport::Connection`], so the *real* session state machine runs
//!   over it. The write side re-parses the byte stream into protocol
//!   frames and damages them per a [`FaultPlan`]: drop, duplicate,
//!   reorder, truncate, corrupt, cut.
//! * [`FaultPlan`] — a declarative, printable schedule of frame faults
//!   ("corrupt the responder's first batch", "cut the session after frame
//!   3", "drop 20% of frames by seeded coin-flip").
//! * [`SimRunner`] — drives a mesh of [`dtn::DtnNode`] hosts through
//!   scripted [`Step`]s (sends, faulty encounters, partitions, crashes
//!   and snapshot restores) under virtual [`pfr::SimTime`], records every
//!   `obs` event into a replayable [`Trace`], and checks the protocol's
//!   invariants after every step: knowledge monotonicity, at-most-once
//!   delivery, bounded relay stores, and filter consistency at
//!   quiescence.
//! * [`DiskFaultPlan`] — the same declarative design one layer down:
//!   scripted damage (torn WAL tails, bit flips, lost checkpoints,
//!   duplicated records) to a *durable* host's data directory while it
//!   is crashed, so the storage engine's recovery runs inside the same
//!   invariant harness (see [`SimRunner::add_durable_host`]).
//!
//! Everything is a pure function of `(seed, script)`: the same inputs
//! produce byte-identical [`Trace::to_jsonl`] renderings, and every
//! invariant failure panics with that pair so a CI hit replays locally
//! with no extra state.
//!
//! ```
//! use dtn::PolicyKind;
//! use testkit::{Direction, FaultPlan, SimRunner};
//!
//! let mut sim = SimRunner::new(42);
//! let a = sim.add_host("a", PolicyKind::SprayAndWait);
//! let b = sim.add_host("b", PolicyKind::SprayAndWait);
//! sim.send(a, "b", b"survives corruption".to_vec());
//!
//! // The first meeting happens over a dirty link...
//! let dirty = FaultPlan::clean().corrupt_frame(Direction::BToA, 1, 13, 0x80);
//! let outcome = sim.encounter_with_faults(a, b, &dirty);
//! assert!(!outcome.is_clean()); // typed error, no panic, partial report
//!
//! // ...and the protocol still converges once the link behaves.
//! sim.assert_converged();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diskfault;
pub mod fault;
pub mod simnet;
pub mod trace;

mod runner;

pub use diskfault::{DiskDamage, DiskFault, DiskFaultPlan};
pub use fault::{Direction, FaultPlan, FaultRule, FaultScope, FrameFault, FrameSelector};
pub use runner::{EncounterOutcome, SessionPair, SimRunner, SkipReason, Step};
pub use simnet::SimNet;
pub use trace::{Trace, TraceEntry};
