//! The simulation driver: hosts, scripted steps, virtual time, and
//! invariant checking.
//!
//! A [`SimRunner`] owns a set of [`dtn::DtnNode`] hosts, advances a
//! virtual [`SimTime`] clock (no wall-clock sleeps), and drives real
//! transport sessions between hosts over fault-injected [`SimNet`] links.
//! Every `obs` event lands in a replayable [`Trace`], and after every step
//! the runner checks the protocol's core invariants:
//!
//! * **Knowledge monotonicity** — a replica's knowledge never shrinks
//!   (except at an explicit crash-restore, which resets the watermark).
//! * **At-most-once delivery** — no `(item, replica)` pair sees a second
//!   `item_delivered` event (restore clears the replica's history: after a
//!   rollback, re-delivery is the *correct* behaviour).
//! * **Bounded stores** — a host's relay load never exceeds its configured
//!   relay limit.
//! * **Filter consistency at quiescence** — [`SimRunner::assert_converged`]
//!   runs clean rounds until no items move, then requires every surviving
//!   injected message to sit in its destination's inbox exactly once with
//!   a byte-identical payload.
//!
//! Any violation panics with the run's `(seed, script)` pair, which is all
//! that is needed to reproduce it.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dtn::{DtnNode, PolicyKind};
use obs::{Event, MemorySink, Obs};
use parking_lot::Mutex;
use pfr::{ItemId, Knowledge, SimTime, SyncLimits, SyncMode};
use transport::protocol::{initiate_session, respond_session, ProtocolError};
use transport::SessionOutcome;

use crate::diskfault::{DiskDamage, DiskFaultPlan};
use crate::fault::FaultPlan;
use crate::simnet::SimNet;
use crate::trace::Trace;

/// One scripted action. A `Vec<Step>` is a complete, printable scenario:
/// the runner logs every performed step, so a failure message carries the
/// exact script to replay.
#[derive(Clone, Debug)]
pub enum Step {
    /// Host `from` injects a message for address `dest`.
    Send {
        /// Sending host index.
        from: usize,
        /// Destination address.
        dest: String,
        /// Message body.
        payload: Vec<u8>,
    },
    /// Hosts `a` and `b` meet and run a full two-direction sync session
    /// over a link governed by `plan`.
    Encounter {
        /// Initiator host index.
        a: usize,
        /// Responder host index.
        b: usize,
        /// Frame faults applied to the link.
        plan: FaultPlan,
    },
    /// Virtual time advances by `secs` seconds.
    Advance {
        /// Seconds to advance.
        secs: u64,
    },
    /// Hosts `a` and `b` cannot meet for the next `secs` seconds of
    /// virtual time; encounters between them are skipped until then.
    Partition {
        /// One side of the partition.
        a: usize,
        /// The other side.
        b: usize,
        /// Virtual seconds the partition lasts.
        secs: u64,
    },
    /// Host `host` writes a durable snapshot of its full state.
    Snapshot {
        /// Host index.
        host: usize,
    },
    /// Host `host` crashes: it loses everything since its last snapshot
    /// and cannot meet anyone until restored.
    Crash {
        /// Host index.
        host: usize,
    },
    /// Host `host` restarts from its last snapshot.
    Restore {
        /// Host index.
        host: usize,
    },
    /// Scripted damage to a crashed durable host's data directory —
    /// torn WAL tails, flipped bytes, lost checkpoints, duplicated
    /// records — applied before the host restores from disk.
    DiskFault {
        /// Host index (must be durable and crashed).
        host: usize,
        /// The damage to apply.
        plan: DiskFaultPlan,
    },
}

/// Why an encounter did not run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkipReason {
    /// The two hosts are partitioned at the current virtual time.
    Partitioned,
    /// At least one host is crashed.
    Crashed,
}

/// Both sides' results from one encounter.
#[derive(Debug)]
pub struct SessionPair {
    /// The initiator's outcome (partial report + optional typed error).
    pub initiator: SessionOutcome,
    /// The responder's outcome.
    pub responder: SessionOutcome,
}

/// The result of one scripted encounter.
#[derive(Debug)]
pub enum EncounterOutcome {
    /// The encounter was skipped before any bytes moved.
    Skipped(SkipReason),
    /// Both sessions ran to completion or to a typed error.
    Completed(Box<SessionPair>),
}

impl EncounterOutcome {
    /// Whether both sides completed without error.
    pub fn is_clean(&self) -> bool {
        match self {
            EncounterOutcome::Skipped(_) => false,
            EncounterOutcome::Completed(pair) => {
                pair.initiator.error.is_none() && pair.responder.error.is_none()
            }
        }
    }

    /// The typed errors the encounter produced, if any.
    pub fn errors(&self) -> Vec<&ProtocolError> {
        match self {
            EncounterOutcome::Skipped(_) => Vec::new(),
            EncounterOutcome::Completed(pair) => pair
                .initiator
                .error
                .iter()
                .chain(pair.responder.error.iter())
                .collect(),
        }
    }
}

struct SimHost {
    address: String,
    replica: u64,
    policy: PolicyKind,
    node: Arc<Mutex<DtnNode>>,
    sink: Arc<MemorySink>,
    snapshot: Option<Vec<u8>>,
    /// `Some` for durable hosts: the store directory a crash restores
    /// from (instead of the in-memory snapshot).
    data_dir: Option<PathBuf>,
    crashed: bool,
}

struct Injected {
    id: ItemId,
    dest: String,
    payload: Vec<u8>,
}

/// The deterministic fault-injection simulation driver. See the module
/// docs for the invariants it enforces.
///
/// # Examples
///
/// ```
/// use dtn::PolicyKind;
/// use testkit::{Direction, FaultPlan, SimRunner};
///
/// let mut sim = SimRunner::new(7);
/// let a = sim.add_host("a", PolicyKind::Epidemic);
/// let b = sim.add_host("b", PolicyKind::Epidemic);
/// sim.send(a, "b", b"hello".to_vec());
/// // First encounter dies mid-session (the responder's batch is cut)...
/// let plan = FaultPlan::clean().cut_after(Direction::BToA, 1);
/// let outcome = sim.encounter_with_faults(a, b, &plan);
/// assert!(!outcome.is_clean());
/// // ...but a later clean encounter still converges.
/// sim.assert_converged();
/// ```
pub struct SimRunner {
    seed: u64,
    limits: SyncLimits,
    sync_mode: SyncMode,
    time: SimTime,
    step: usize,
    hosts: Vec<SimHost>,
    trace: Trace,
    performed: Vec<Step>,
    partitions: Vec<(usize, usize, SimTime)>,
    watermarks: BTreeMap<usize, Knowledge>,
    delivered: BTreeMap<u64, BTreeSet<(u64, u64)>>,
    injected: Vec<Injected>,
}

impl SimRunner {
    /// A runner whose fault schedules and session behaviour are a pure
    /// function of `seed` and the performed steps.
    pub fn new(seed: u64) -> SimRunner {
        SimRunner {
            seed,
            limits: SyncLimits::unlimited(),
            sync_mode: SyncMode::Full,
            time: SimTime::ZERO,
            step: 0,
            hosts: Vec::new(),
            trace: Trace::new(),
            performed: Vec::new(),
            partitions: Vec::new(),
            watermarks: BTreeMap::new(),
            delivered: BTreeMap::new(),
            injected: Vec::new(),
        }
    }

    /// The seed this run was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Applies per-session sync limits to every future encounter.
    pub fn set_limits(&mut self, limits: SyncLimits) {
        self.limits = limits;
    }

    /// Puts every host — existing, future, and *restored* — in the given
    /// sync mode. Sync mode is runtime configuration, not replica state:
    /// it is not captured by snapshots, so the runner re-applies it after
    /// every [`Step::Restore`] exactly as a redeployed binary would.
    pub fn set_sync_mode(&mut self, mode: SyncMode) {
        self.sync_mode = mode;
        for host in &self.hosts {
            host.node.lock().set_sync_mode(mode);
        }
    }

    /// Adds a host with the given address and routing policy; returns its
    /// index. Replica ids are assigned densely starting at 1.
    pub fn add_host(&mut self, address: &str, policy: PolicyKind) -> usize {
        let index = self.hosts.len();
        let replica = index as u64 + 1;
        let mut node = DtnNode::new(pfr::ReplicaId::new(replica), address, policy);
        node.set_sync_mode(self.sync_mode);
        let sink = Arc::new(MemorySink::unbounded());
        node.replica_mut().set_observer(Obs::new(sink.clone()));
        self.watermarks
            .insert(index, node.replica().knowledge().clone());
        self.hosts.push(SimHost {
            address: address.to_string(),
            replica,
            policy,
            node: Arc::new(Mutex::new(node)),
            sink,
            snapshot: None,
            data_dir: None,
            crashed: false,
        });
        index
    }

    /// Adds a *durable* host whose state lives in the store directory
    /// `dir` (created if missing, recovered if it holds a previous run's
    /// state). The transport layer persists the node after every
    /// encounter, so [`Step::Crash`] on a durable host models `kill -9`:
    /// [`Step::Restore`] reopens from disk — optionally after a
    /// [`Step::DiskFault`] damaged the directory — instead of from an
    /// in-memory snapshot. Store events (WAL appends, recoveries) carry
    /// wall-clock timings, so durable hosts trade byte-identical traces
    /// for real disk I/O.
    pub fn add_durable_host(
        &mut self,
        address: &str,
        policy: PolicyKind,
        dir: impl AsRef<Path>,
    ) -> usize {
        let index = self.hosts.len();
        let replica = index as u64 + 1;
        let sink = Arc::new(MemorySink::unbounded());
        let mut node = match DtnNode::open_observed(
            &dir,
            pfr::ReplicaId::new(replica),
            address,
            policy,
            Obs::new(sink.clone()),
        ) {
            Ok(node) => node,
            Err(e) => self.fail(&format!("durable host {index} failed to open: {e}")),
        };
        node.set_sync_mode(self.sync_mode);
        node.replica_mut().set_observer(Obs::new(sink.clone()));
        self.watermarks
            .insert(index, node.replica().knowledge().clone());
        self.hosts.push(SimHost {
            address: address.to_string(),
            replica,
            policy,
            node: Arc::new(Mutex::new(node)),
            sink,
            snapshot: None,
            data_dir: Some(dir.as_ref().to_path_buf()),
            crashed: false,
        });
        index
    }

    /// Caps the relay store of host `host` at `limit` items; the bounded-
    /// store invariant checks the cap after every step.
    pub fn set_relay_limit(&mut self, host: usize, limit: usize) {
        self.hosts[host]
            .node
            .lock()
            .replica_mut()
            .set_relay_limit(Some(limit));
    }

    /// Runs a closure against one host's node (for assertions).
    pub fn with_node<T>(&self, host: usize, f: impl FnOnce(&mut DtnNode) -> T) -> T {
        f(&mut self.hosts[host].node.lock())
    }

    /// Runs every step of a script in order.
    pub fn run_script(&mut self, steps: &[Step]) {
        // Dispatch by reference: cloning whole steps (fault plans, full
        // payloads) per iteration was pure churn.
        for step in steps {
            match step {
                Step::Send {
                    from,
                    dest,
                    payload,
                } => {
                    self.send(*from, dest, payload.clone());
                }
                Step::Encounter { a, b, plan } => {
                    self.encounter_with_faults(*a, *b, plan);
                }
                Step::Advance { secs } => self.advance(*secs),
                Step::Partition { a, b, secs } => self.partition(*a, *b, *secs),
                Step::Snapshot { host } => self.snapshot(*host),
                Step::Crash { host } => self.crash(*host),
                Step::Restore { host } => self.restore(*host),
                Step::DiskFault { host, plan } => {
                    self.disk_fault(*host, plan);
                }
            }
        }
    }

    /// Host `from` injects a message addressed to `dest`. Returns the
    /// message's item id.
    pub fn send(&mut self, from: usize, dest: &str, payload: Vec<u8>) -> ItemId {
        self.performed.push(Step::Send {
            from,
            dest: dest.to_string(),
            payload: payload.clone(),
        });
        if self.hosts[from].crashed {
            self.fail(&format!("script bug: send from crashed host {from}"));
        }
        let now = self.time;
        let id = match self.hosts[from]
            .node
            .lock()
            .send(dest, payload.clone(), now)
        {
            Ok(id) => id,
            Err(e) => self.fail(&format!("send from host {from} failed: {e}")),
        };
        self.injected.push(Injected {
            id,
            dest: dest.to_string(),
            payload,
        });
        self.after_step();
        id
    }

    /// Advances virtual time and expires any messages whose lifetime ends.
    pub fn advance(&mut self, secs: u64) {
        self.performed.push(Step::Advance { secs });
        self.time = SimTime::from_secs(self.time.as_secs() + secs);
        let now = self.time;
        for host in &self.hosts {
            if !host.crashed {
                host.node.lock().expire_messages(now);
            }
        }
        self.after_step();
    }

    /// Partitions hosts `a` and `b` for the next `secs` virtual seconds.
    pub fn partition(&mut self, a: usize, b: usize, secs: u64) {
        self.performed.push(Step::Partition { a, b, secs });
        let until = SimTime::from_secs(self.time.as_secs() + secs);
        self.partitions.push((a, b, until));
        self.after_step();
    }

    fn partitioned(&self, a: usize, b: usize) -> bool {
        self.partitions
            .iter()
            .any(|&(x, y, until)| until > self.time && ((x == a && y == b) || (x == b && y == a)))
    }

    /// Runs a fault-free encounter between hosts `a` and `b`.
    pub fn encounter(&mut self, a: usize, b: usize) -> EncounterOutcome {
        self.encounter_with_faults(a, b, &FaultPlan::clean())
    }

    /// Runs one full sync session (host `a` initiating) over a [`SimNet`]
    /// link governed by `plan`. Skipped encounters (partition, crash)
    /// move no bytes. Session errors do not panic — they come back as
    /// typed errors inside the outcome, and the runner's invariants are
    /// checked either way.
    pub fn encounter_with_faults(
        &mut self,
        a: usize,
        b: usize,
        plan: &FaultPlan,
    ) -> EncounterOutcome {
        self.performed.push(Step::Encounter {
            a,
            b,
            plan: plan.clone(),
        });
        if self.partitioned(a, b) {
            self.after_step();
            return EncounterOutcome::Skipped(SkipReason::Partitioned);
        }
        if self.hosts[a].crashed || self.hosts[b].crashed {
            self.after_step();
            return EncounterOutcome::Skipped(SkipReason::Crashed);
        }

        // Each step gets its own link seed so per-frame fault draws do not
        // depend on how many frames earlier steps produced.
        let link_seed = self
            .seed
            .wrapping_add((self.step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let (mut end_a, end_b) = SimNet::pair(link_seed, plan);
        let a_node = Arc::clone(&self.hosts[a].node);
        let b_node = Arc::clone(&self.hosts[b].node);
        let now = self.time;
        let limits = self.limits;

        let responder = std::thread::spawn(move || {
            let mut conn = end_b;
            respond_session(&mut conn, &b_node, limits)
        });
        let initiator = initiate_session(&mut end_a, &a_node, now, limits);
        drop(end_a);
        let responder = responder.join().expect("responder thread panicked");

        self.after_step();
        EncounterOutcome::Completed(Box::new(SessionPair {
            initiator,
            responder,
        }))
    }

    /// Snapshots host `host`'s full durable state. For a durable host
    /// this persists to its store (a WAL append); otherwise the snapshot
    /// is held in memory.
    pub fn snapshot(&mut self, host: usize) {
        self.performed.push(Step::Snapshot { host });
        if self.hosts[host].data_dir.is_some() {
            let now = self.time;
            if let Err(e) = self.hosts[host].node.lock().persist(now) {
                self.fail(&format!("durable host {host} failed to persist: {e}"));
            }
        } else {
            let bytes = self.hosts[host].node.lock().snapshot();
            self.hosts[host].snapshot = Some(bytes);
        }
        self.after_step();
    }

    /// Crashes host `host`: until restored it meets nobody, and restoring
    /// rolls it back to its last snapshot (in-memory hosts) or to what
    /// its data directory holds (durable hosts, for which this is a
    /// `kill -9` — whatever the WAL has is what survives).
    pub fn crash(&mut self, host: usize) {
        self.performed.push(Step::Crash { host });
        if self.hosts[host].snapshot.is_none() && self.hosts[host].data_dir.is_none() {
            self.fail(&format!(
                "script bug: host {host} crashed without a snapshot to restore from"
            ));
        }
        self.hosts[host].crashed = true;
        self.after_step();
    }

    /// Applies scripted disk damage to a crashed durable host's data
    /// directory (see [`DiskFaultPlan`]), returning what actually
    /// changed on disk.
    pub fn disk_fault(&mut self, host: usize, plan: &DiskFaultPlan) -> DiskDamage {
        self.performed.push(Step::DiskFault {
            host,
            plan: plan.clone(),
        });
        let dir = match &self.hosts[host].data_dir {
            Some(dir) => dir.clone(),
            None => self.fail(&format!(
                "script bug: disk fault on non-durable host {host}"
            )),
        };
        if !self.hosts[host].crashed {
            self.fail(&format!(
                "script bug: disk fault on live host {host} (crash it first)"
            ));
        }
        let damage = match plan.apply(&dir) {
            Ok(damage) => damage,
            Err(e) => self.fail(&format!("disk fault on host {host} failed: {e}")),
        };
        self.after_step();
        damage
    }

    /// Restores host `host` from its last snapshot — or, for a durable
    /// host, by reopening its data directory through the storage
    /// engine's crash recovery (torn tails truncated, corrupt
    /// checkpoints skipped). The host's knowledge watermark and delivery
    /// history reset to the restored state: re-receiving what the
    /// rollback lost is correct behaviour, not a duplicate. Messages
    /// that the crash erased from the whole network are dropped from the
    /// convergence obligation.
    pub fn restore(&mut self, host: usize) {
        self.performed.push(Step::Restore { host });
        let mut node = if let Some(dir) = self.hosts[host].data_dir.clone() {
            let id = pfr::ReplicaId::new(self.hosts[host].replica);
            let address = self.hosts[host].address.clone();
            let policy = self.hosts[host].policy;
            let obs = Obs::new(self.hosts[host].sink.clone());
            match DtnNode::open_observed(&dir, id, &address, policy, obs) {
                Ok(node) => node,
                Err(e) => self.fail(&format!("durable host {host} failed to reopen: {e}")),
            }
        } else {
            let bytes = match &self.hosts[host].snapshot {
                Some(bytes) => bytes.clone(),
                None => self.fail(&format!(
                    "script bug: restore of host {host} without snapshot"
                )),
            };
            match DtnNode::restore(&bytes) {
                Ok(node) => node,
                Err(e) => self.fail(&format!("snapshot of host {host} failed to restore: {e}")),
            }
        };
        // Sync mode is runtime config, not snapshotted — a restored node
        // starts in `SyncMode::Full` unless the runner re-applies its own.
        node.set_sync_mode(self.sync_mode);
        node.replica_mut()
            .set_observer(Obs::new(self.hosts[host].sink.clone()));
        let replica = self.hosts[host].replica;
        self.watermarks
            .insert(host, node.replica().knowledge().clone());
        self.delivered.remove(&replica);
        *self.hosts[host].node.lock() = node;
        self.hosts[host].crashed = false;

        // A message originated here after the snapshot may now exist
        // nowhere; it can never be delivered, so it leaves the obligation.
        let hosts = &self.hosts;
        self.injected.retain(|inj| {
            inj.id.origin().as_u64() != replica
                || hosts
                    .iter()
                    .any(|h| !h.crashed && h.node.lock().replica().contains_item(inj.id))
        });
        self.after_step();
    }

    /// Runs clean full-mesh rounds until a whole round moves no items
    /// (quiescence). Returns the number of rounds run. Panics if the
    /// network refuses to settle.
    pub fn settle(&mut self) -> usize {
        let live: Vec<usize> = (0..self.hosts.len())
            .filter(|&h| !self.hosts[h].crashed)
            .collect();
        let bound = 4 * live.len() * live.len() + 4;
        for round in 0..bound {
            let mut moved = 0usize;
            for (i, &a) in live.iter().enumerate() {
                for &b in &live[i + 1..] {
                    if let EncounterOutcome::Completed(pair) = self.encounter(a, b) {
                        for outcome in [&pair.initiator, &pair.responder] {
                            moved += outcome.report.served;
                            if let Some(pulled) = &outcome.report.pulled {
                                moved += pulled.transmitted;
                            }
                        }
                    }
                }
            }
            if moved == 0 {
                return round + 1;
            }
        }
        self.fail(&format!("network failed to quiesce within {bound} rounds"));
    }

    /// The quiescence check: settles the network, then requires every
    /// surviving injected message to appear in its destination's inbox
    /// exactly once, byte-identical. Crashed hosts must be restored (or
    /// the script is incomplete) and partitions must have expired.
    pub fn assert_converged(&mut self) {
        if let Some(h) = (0..self.hosts.len()).find(|&h| self.hosts[h].crashed) {
            self.fail(&format!(
                "script bug: host {h} still crashed at convergence check"
            ));
        }
        self.partitions.retain(|&(_, _, until)| until > self.time);
        if !self.partitions.is_empty() {
            self.fail("script bug: partitions still active at convergence check");
        }
        self.settle();
        for i in 0..self.injected.len() {
            let (id, dest, payload) = {
                let inj = &self.injected[i];
                (inj.id, inj.dest.clone(), inj.payload.clone())
            };
            for h in 0..self.hosts.len() {
                if self.hosts[h].address != dest {
                    continue;
                }
                let inbox = self.hosts[h].node.lock().inbox();
                let copies: Vec<_> = inbox.iter().filter(|m| m.id == id).collect();
                if copies.len() != 1 {
                    self.fail(&format!(
                        "filter consistency violated: message {id} appears {} times in \
                         host {h}'s inbox (want exactly 1)",
                        copies.len()
                    ));
                }
                if copies[0].payload != payload {
                    self.fail(&format!(
                        "payload of message {id} was corrupted in delivery to host {h}"
                    ));
                }
            }
        }
    }

    /// The recorded trace so far (all deterministic events, in order).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the runner, returning the full trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Drains every host's sink into the trace (fixed host order keeps
    /// the merge deterministic despite session threads) and checks the
    /// per-step invariants.
    fn after_step(&mut self) {
        let step = self.step;
        self.step += 1;

        // 1. Record events and enforce at-most-once delivery.
        let mut violations: Vec<String> = Vec::new();
        for h in 0..self.hosts.len() {
            let replica = self.hosts[h].replica;
            for event in self.hosts[h].sink.take() {
                if let Event::ItemDelivered {
                    replica: r,
                    origin,
                    seq,
                    ..
                } = event
                {
                    let seen = self.delivered.entry(r).or_default();
                    if !seen.insert((origin, seq)) {
                        violations.push(format!(
                            "at-most-once violated: item {origin}#{seq} delivered twice \
                             to replica {r}"
                        ));
                    }
                }
                self.trace.record(step, replica, event);
            }
        }

        // 2. Knowledge monotonicity (crashed hosts keep their watermark
        // frozen until restore resets it).
        for h in 0..self.hosts.len() {
            if self.hosts[h].crashed {
                continue;
            }
            // Clone the knowledge only when it actually grew; most steps
            // leave most hosts untouched, and the per-step clone of every
            // host's full knowledge was the runner's dominant allocation.
            let node = self.hosts[h].node.lock();
            let knowledge = node.replica().knowledge();
            let (violated, grew) = match self.watermarks.get(&h) {
                Some(prev) => (!knowledge.dominates(prev), !prev.dominates(knowledge)),
                None => (false, true),
            };
            if violated {
                violations.push(format!(
                    "knowledge monotonicity violated: host {h}'s knowledge shrank"
                ));
            }
            if grew {
                let knowledge = knowledge.clone();
                drop(node);
                self.watermarks.insert(h, knowledge);
            }
        }

        // 3. Bounded stores.
        for h in 0..self.hosts.len() {
            let node = self.hosts[h].node.lock();
            let load = node.replica().relay_load();
            if let Some(limit) = node.replica().relay_limit() {
                if load > limit {
                    violations.push(format!(
                        "store bound violated: host {h} holds {load} relay items, limit {limit}"
                    ));
                }
            }
        }

        if let Some(first) = violations.first() {
            let first = first.clone();
            self.fail(&first);
        }
    }

    /// Panics with everything needed to reproduce the failure: the
    /// message, the seed, and the full performed script.
    fn fail(&self, message: &str) -> ! {
        panic!(
            "testkit invariant violation at step {}: {message}\n\
             reproduce with seed {} and script:\n{:#?}",
            self.step, self.seed, self.performed
        );
    }
}

impl std::fmt::Debug for SimRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimRunner")
            .field("seed", &self.seed)
            .field("hosts", &self.hosts.len())
            .field("step", &self.step)
            .field("now", &self.time)
            .finish()
    }
}
