//! An in-memory fault-injecting link the real sync protocol runs over.
//!
//! [`SimNet::pair`] builds the two ends of one bidirectional link. Each
//! end implements [`transport::Connection`], so
//! [`transport::protocol::initiate_session`] /
//! [`transport::protocol::respond_session`] drive the *exact* production
//! state machine over it — same frames, same codec, same error paths.
//!
//! The write side parses the byte stream back into protocol frames (using
//! the real header layout from [`transport::frame`]) and applies the
//! link's [`FaultPlan`] to each complete frame before delivery. All fault
//! decisions come from a per-direction generator seeded from the link
//! seed, so a run is a pure function of `(seed, plan)`.
//!
//! # Determinism and stalls
//!
//! The sync protocol is lockstep, so a withheld frame would block both
//! sides forever. Faults that withhold bytes therefore close the link (the
//! reader sees EOF immediately), and a reader additionally carries a
//! generous wall-clock backstop that turns a genuine deadlock into EOF.
//! The backstop only fires when both sides are already permanently stuck
//! — e.g. a reordered frame whose successor never comes — and EOF is the
//! outcome either way, so traces stay byte-identical across runs.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;
use transport::frame::HEADER_LEN;
use transport::Connection;

use crate::fault::{Direction, FaultPlan, FrameFault};

/// How long a reader waits on a silent open link before treating the
/// session as dead. See the module notes on determinism: this is a
/// deadlock backstop, not a timing knob.
const STALL_BACKSTOP: Duration = Duration::from_millis(500);

#[derive(Default)]
struct LinkState {
    queue: VecDeque<u8>,
    closed: bool,
}

struct Link {
    state: Mutex<LinkState>,
    arrived: Condvar,
}

impl Link {
    fn new() -> Arc<Link> {
        Arc::new(Link {
            state: Mutex::new(LinkState::default()),
            arrived: Condvar::new(),
        })
    }

    fn push(&self, bytes: &[u8]) {
        let mut state = self.state.lock().expect("link lock");
        if !state.closed {
            state.queue.extend(bytes.iter().copied());
        }
        self.arrived.notify_all();
    }

    fn close(&self) {
        self.state.lock().expect("link lock").closed = true;
        self.arrived.notify_all();
    }
}

struct LinkReader {
    link: Arc<Link>,
}

impl Read for LinkReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut state = self.link.state.lock().expect("link lock");
        loop {
            if !state.queue.is_empty() {
                let n = buf.len().min(state.queue.len());
                for slot in buf.iter_mut().take(n) {
                    *slot = state.queue.pop_front().expect("non-empty queue");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            let (next, timeout) = self
                .link
                .arrived
                .wait_timeout(state, STALL_BACKSTOP)
                .expect("link lock");
            state = next;
            if timeout.timed_out() && state.queue.is_empty() && !state.closed {
                // Permanent stall: both sides are waiting on each other.
                // EOF here matches what every withholding fault produces.
                return Ok(0);
            }
        }
    }
}

struct LinkWriter {
    link: Arc<Link>,
    direction: Direction,
    plan: FaultPlan,
    rng: StdRng,
    /// Bytes written but not yet forming a complete frame.
    pending: Vec<u8>,
    /// A frame held back by [`FrameFault::Reorder`], delivered after the
    /// next frame (or discarded at close).
    held: Option<Vec<u8>>,
    /// Per-direction frame counter driving [`FaultPlan`] scopes.
    frame_index: u64,
    /// Once a withholding fault fires, the rest of the stream is void.
    cut: bool,
}

impl LinkWriter {
    /// Extracts every complete frame from the pending buffer and runs it
    /// through the fault plan.
    fn pump(&mut self) {
        while !self.cut {
            if self.pending.len() < HEADER_LEN {
                return;
            }
            let len = u32::from_le_bytes([
                self.pending[3],
                self.pending[4],
                self.pending[5],
                self.pending[6],
            ]) as usize;
            let total = HEADER_LEN + len;
            if self.pending.len() < total {
                return;
            }
            let frame: Vec<u8> = self.pending.drain(..total).collect();
            let index = self.frame_index;
            self.frame_index += 1;
            match self.plan.fault_for(self.direction, index, &mut self.rng) {
                None => self.deliver(frame),
                Some(FrameFault::Drop) => {
                    self.cut = true;
                    self.link.close();
                }
                Some(FrameFault::Duplicate) => {
                    self.link.push(&frame);
                    self.deliver(frame);
                }
                Some(FrameFault::Reorder) => {
                    // Held until the next frame passes; if one was already
                    // held, the older frame is beyond saving — discard it.
                    self.held = Some(frame);
                }
                Some(FrameFault::Truncate { keep }) => {
                    // Clamp so the cut is real even for `keep >= len`.
                    let keep = keep.min(frame.len().saturating_sub(1));
                    self.link.push(&frame[..keep]);
                    self.cut = true;
                    self.link.close();
                }
                Some(FrameFault::Corrupt { offset, xor }) => {
                    let mut frame = frame;
                    // Flip within the checksummed region (type byte and
                    // later) but never the length field: a corrupted
                    // length desyncs the stream instead of producing the
                    // typed checksum/type error this fault models.
                    let targets: Vec<usize> = (2..3).chain(7..frame.len()).collect();
                    let pos = targets[offset % targets.len()];
                    frame[pos] ^= xor;
                    self.deliver(frame);
                }
            }
        }
    }

    fn deliver(&mut self, frame: Vec<u8>) {
        self.link.push(&frame);
        if let Some(held) = self.held.take() {
            self.link.push(&held);
        }
    }
}

impl Write for LinkWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        // A cut link silently swallows writes, like TCP after the peer
        // reset: the writer discovers the failure on its next read.
        if !self.cut {
            self.pending.extend_from_slice(buf);
            self.pump();
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for LinkWriter {
    fn drop(&mut self) {
        // Session over: close our outgoing direction so the peer's reader
        // wakes with EOF instead of the stall backstop.
        self.link.close();
    }
}

/// One end of a simulated link; implements [`Connection`], so the real
/// protocol entry points drive it directly.
///
/// # Examples
///
/// ```
/// use testkit::{Direction, FaultPlan, SimNet};
/// use std::io::{Read, Write};
/// use transport::frame::{read_frame, write_frame, FrameError, FrameType};
/// use transport::Connection;
///
/// let plan = FaultPlan::clean().corrupt_frame(Direction::AToB, 0, 9, 0x10);
/// let (mut a, mut b) = SimNet::pair(42, &plan);
/// let (_, mut a_writer) = a.halves();
/// write_frame(&mut a_writer, FrameType::Hello, b"hi").unwrap();
/// let (mut b_reader, _) = b.halves();
/// let err = read_frame(&mut b_reader).unwrap_err();
/// assert!(matches!(err, FrameError::BadChecksum { .. } | FrameError::BadType(_)));
/// ```
#[derive(Debug)]
pub struct SimNet {
    reader: LinkReader,
    writer: LinkWriter,
}

impl SimNet {
    /// Builds the two ends of one link governed by `plan`. The first end
    /// is the `A` (initiator) side: its outgoing frames travel
    /// [`Direction::AToB`].
    ///
    /// Fault decisions draw from per-direction generators derived from
    /// `seed`, so the same `(seed, plan)` always produces the same faults.
    pub fn pair(seed: u64, plan: &FaultPlan) -> (SimNet, SimNet) {
        let a_to_b = Link::new();
        let b_to_a = Link::new();
        let a = SimNet {
            reader: LinkReader {
                link: Arc::clone(&b_to_a),
            },
            writer: LinkWriter {
                link: a_to_b.clone(),
                direction: Direction::AToB,
                plan: plan.clone(),
                rng: StdRng::seed_from_u64(seed.wrapping_mul(2).wrapping_add(1)),
                pending: Vec::new(),
                held: None,
                frame_index: 0,
                cut: false,
            },
        };
        let b = SimNet {
            reader: LinkReader { link: a_to_b },
            writer: LinkWriter {
                link: b_to_a,
                direction: Direction::BToA,
                plan: plan.clone(),
                rng: StdRng::seed_from_u64(seed.wrapping_mul(2)),
                pending: Vec::new(),
                held: None,
                frame_index: 0,
                cut: false,
            },
        };
        (a, b)
    }
}

impl Connection for SimNet {
    fn halves(&mut self) -> (&mut dyn Read, &mut dyn Write) {
        (&mut self.reader, &mut self.writer)
    }
}

impl std::fmt::Debug for LinkReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkReader").finish()
    }
}

impl std::fmt::Debug for LinkWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkWriter")
            .field("direction", &self.direction)
            .field("frame_index", &self.frame_index)
            .field("cut", &self.cut)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transport::frame::{read_frame, write_frame, FrameError, FrameType};

    fn send(end: &mut SimNet, ft: FrameType, payload: &[u8]) {
        let (_, mut w) = end.halves();
        write_frame(&mut w, ft, payload).expect("sim writes never fail");
    }

    fn recv(end: &mut SimNet) -> Result<(FrameType, Vec<u8>), FrameError> {
        let (mut r, _) = end.halves();
        read_frame(&mut r)
    }

    #[test]
    fn clean_link_roundtrips_frames_both_ways() {
        let (mut a, mut b) = SimNet::pair(1, &FaultPlan::clean());
        send(&mut a, FrameType::Hello, b"from a");
        send(&mut b, FrameType::Hello, b"from b");
        assert_eq!(
            recv(&mut b).unwrap(),
            (FrameType::Hello, b"from a".to_vec())
        );
        assert_eq!(
            recv(&mut a).unwrap(),
            (FrameType::Hello, b"from b".to_vec())
        );
    }

    #[test]
    fn dropped_frame_reads_as_eof() {
        let plan = FaultPlan::clean().drop_frame(Direction::AToB, 1);
        let (mut a, mut b) = SimNet::pair(1, &plan);
        send(&mut a, FrameType::Hello, b"ok");
        send(&mut a, FrameType::SyncRequest, b"lost");
        assert!(recv(&mut b).is_ok());
        let err = recv(&mut b).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn duplicated_frame_arrives_twice() {
        let plan = FaultPlan::clean().duplicate_frame(Direction::AToB, 0);
        let (mut a, mut b) = SimNet::pair(1, &plan);
        send(&mut a, FrameType::Hello, b"x");
        assert_eq!(recv(&mut b).unwrap(), (FrameType::Hello, b"x".to_vec()));
        assert_eq!(recv(&mut b).unwrap(), (FrameType::Hello, b"x".to_vec()));
    }

    #[test]
    fn reordered_frames_swap() {
        let plan = FaultPlan::clean().reorder_frame(Direction::AToB, 0);
        let (mut a, mut b) = SimNet::pair(1, &plan);
        send(&mut a, FrameType::Hello, b"first");
        send(&mut a, FrameType::SyncRequest, b"second");
        assert_eq!(
            recv(&mut b).unwrap(),
            (FrameType::SyncRequest, b"second".to_vec())
        );
        assert_eq!(recv(&mut b).unwrap(), (FrameType::Hello, b"first".to_vec()));
    }

    #[test]
    fn truncated_frame_is_an_io_error() {
        let plan = FaultPlan::clean().truncate_frame(Direction::AToB, 0, 6);
        let (mut a, mut b) = SimNet::pair(1, &plan);
        send(&mut a, FrameType::Hello, b"cut me off");
        let err = recv(&mut b).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)), "{err}");
    }

    #[test]
    fn corrupted_frame_is_a_typed_error_at_every_offset() {
        for offset in 0..32 {
            let plan = FaultPlan::clean().corrupt_frame(Direction::AToB, 0, offset, 0x41);
            let (mut a, mut b) = SimNet::pair(1, &plan);
            send(&mut a, FrameType::Hello, b"payload here");
            let err = recv(&mut b).unwrap_err();
            assert!(
                matches!(err, FrameError::BadChecksum { .. } | FrameError::BadType(_)),
                "offset {offset}: {err}"
            );
        }
    }

    #[test]
    fn closed_link_swallows_later_writes() {
        let plan = FaultPlan::clean().cut_after(Direction::AToB, 0);
        let (mut a, mut b) = SimNet::pair(1, &plan);
        send(&mut a, FrameType::Hello, b"void");
        send(&mut a, FrameType::SyncRequest, b"also void");
        let err = recv(&mut b).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }

    #[test]
    fn dropping_an_end_wakes_the_peer_with_eof() {
        let (a, mut b) = SimNet::pair(1, &FaultPlan::clean());
        drop(a);
        let err = recv(&mut b).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }
}
