//! Replayable run traces: every `obs` event a simulation produced, in a
//! deterministic order, renderable as JSONL for byte-level comparison.
//!
//! Two runs of the same `(seed, plan)` must produce byte-identical
//! [`Trace::to_jsonl`] output. The stack emits two events that carry
//! wall-clock readings: [`obs::Event::SpanEnded`] is excluded outright
//! (nothing else in it is deterministic), while
//! [`obs::Event::SyncCandidatesSelected`] has its `scan_us` field zeroed
//! so its deterministic counters stay comparable.

use obs::Event;

/// One recorded event: which script step produced it, on which host.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Zero-based index of the script step that produced the event.
    pub step: usize,
    /// Replica id of the host that emitted the event.
    pub host: u64,
    /// The event itself.
    pub event: Event,
}

/// An ordered, replayable record of every deterministic event in one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends one event, unless it is a (wall-clock, nondeterministic)
    /// `SpanEnded`; the wall-clock `scan_us` field of
    /// `SyncCandidatesSelected` is zeroed for the same reason.
    pub fn record(&mut self, step: usize, host: u64, mut event: Event) {
        match &mut event {
            Event::SpanEnded { .. } => return,
            Event::SyncCandidatesSelected { scan_us, .. } => *scan_us = 0,
            _ => {}
        }
        self.entries.push(TraceEntry { step, host, event });
    }

    /// The recorded entries in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many recorded events have the given [`Event::kind`] label.
    pub fn count(&self, kind: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count()
    }

    /// Renders the trace as JSON lines; each line is the event's stable
    /// JSON rendering prefixed with the step index and emitting host.
    /// Byte-equality of two renderings is the determinism check.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let event = entry.event.to_json();
            out.push_str(&format!(
                "{{\"step\":{},\"host\":{},{}\n",
                entry.step,
                entry.host,
                &event[1..]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ended_is_filtered_out() {
        let mut trace = Trace::new();
        trace.record(
            0,
            1,
            Event::SpanEnded {
                name: "encounter",
                replica: 1,
                peer: 2,
                wall_micros: 1234,
            },
        );
        trace.record(
            0,
            1,
            Event::ItemEvicted {
                replica: 1,
                origin: 2,
                seq: 3,
            },
        );
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.count("item_evicted"), 1);
        assert_eq!(trace.count("span_ended"), 0);
    }

    #[test]
    fn candidate_scan_timing_is_zeroed() {
        let mut trace = Trace::new();
        trace.record(
            0,
            1,
            Event::SyncCandidatesSelected {
                source: 1,
                target: 2,
                candidates: 5,
                selected: 3,
                memo_hits: 2,
                scan_us: 777,
                at_secs: 10,
            },
        );
        assert_eq!(trace.len(), 1);
        match &trace.entries()[0].event {
            Event::SyncCandidatesSelected {
                scan_us,
                candidates,
                ..
            } => {
                assert_eq!(*scan_us, 0);
                assert_eq!(*candidates, 5);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn jsonl_lines_carry_step_and_host() {
        let mut trace = Trace::new();
        trace.record(
            3,
            7,
            Event::ItemEvicted {
                replica: 7,
                origin: 1,
                seq: 9,
            },
        );
        let text = trace.to_jsonl();
        assert_eq!(
            text,
            "{\"step\":3,\"host\":7,\"event\":\"item_evicted\",\"replica\":7,\"origin\":1,\"seq\":9}\n"
        );
    }
}
