//! Replayable run traces: every `obs` event a simulation produced, in a
//! deterministic order, renderable as JSONL for byte-level comparison.
//!
//! Two runs of the same `(seed, plan)` must produce byte-identical
//! [`Trace::to_jsonl`] output. Large-fleet traces should not be compared
//! by materializing that output: [`Trace::write_jsonl`] streams it line
//! by line and [`Trace::jsonl_digest`] folds it into a constant-memory
//! 64-bit digest. The stack emits two events that carry
//! wall-clock readings: [`obs::Event::SpanEnded`] is excluded outright
//! (nothing else in it is deterministic), while
//! [`obs::Event::SyncCandidatesSelected`] has its `scan_us` field zeroed
//! so its deterministic counters stay comparable.

use std::io::{self, Write};

use obs::Event;

/// One recorded event: which script step produced it, on which host.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Zero-based index of the script step that produced the event.
    pub step: usize,
    /// Replica id of the host that emitted the event.
    pub host: u64,
    /// The event itself.
    pub event: Event,
}

/// An ordered, replayable record of every deterministic event in one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends one event, unless it is a (wall-clock, nondeterministic)
    /// `SpanEnded`; the wall-clock `scan_us` field of
    /// `SyncCandidatesSelected` is zeroed for the same reason.
    pub fn record(&mut self, step: usize, host: u64, mut event: Event) {
        match &mut event {
            Event::SpanEnded { .. } => return,
            Event::SyncCandidatesSelected { scan_us, .. } => *scan_us = 0,
            _ => {}
        }
        self.entries.push(TraceEntry { step, host, event });
    }

    /// The recorded entries in emission order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many recorded events have the given [`Event::kind`] label.
    pub fn count(&self, kind: &str) -> usize {
        self.entries
            .iter()
            .filter(|e| e.event.kind() == kind)
            .count()
    }

    /// Streams the JSONL rendering into `out`, one line at a time, never
    /// materializing more than a single line. This is the scale-safe form
    /// of [`Trace::to_jsonl`]: a city-scale trace flows straight to a
    /// file (or a hasher) without a trace-sized `String`.
    pub fn write_jsonl(&self, out: &mut dyn Write) -> io::Result<()> {
        for entry in &self.entries {
            let event = entry.event.to_json();
            writeln!(
                out,
                "{{\"step\":{},\"host\":{},{}",
                entry.step,
                entry.host,
                &event[1..]
            )?;
        }
        Ok(())
    }

    /// A 64-bit FNV-1a digest over the exact bytes [`Trace::write_jsonl`]
    /// would emit. Two traces render byte-identically iff their digests
    /// match (up to hash collision), so determinism checks on large-fleet
    /// runs compare eight bytes instead of holding two full renderings.
    pub fn jsonl_digest(&self) -> u64 {
        let mut hasher = FnvWriter::default();
        self.write_jsonl(&mut hasher)
            .expect("hashing cannot fail I/O");
        hasher.finish()
    }

    /// Renders the trace as JSON lines; each line is the event's stable
    /// JSON rendering prefixed with the step index and emitting host.
    /// Byte-equality of two renderings is the determinism check; for
    /// traces too large to buffer, stream with [`Trace::write_jsonl`] or
    /// compare [`Trace::jsonl_digest`] values instead.
    pub fn to_jsonl(&self) -> String {
        let mut out = Vec::new();
        self.write_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSONL rendering is UTF-8")
    }
}

/// An [`io::Write`] that folds every byte into a 64-bit FNV-1a state
/// instead of storing it — constant memory regardless of trace size.
struct FnvWriter {
    state: u64,
}

impl Default for FnvWriter {
    fn default() -> Self {
        FnvWriter {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl FnvWriter {
    fn finish(&self) -> u64 {
        self.state
    }
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for &byte in buf {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ended_is_filtered_out() {
        let mut trace = Trace::new();
        trace.record(
            0,
            1,
            Event::SpanEnded {
                name: "encounter",
                replica: 1,
                peer: 2,
                wall_micros: 1234,
            },
        );
        trace.record(
            0,
            1,
            Event::ItemEvicted {
                replica: 1,
                origin: 2,
                seq: 3,
            },
        );
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.count("item_evicted"), 1);
        assert_eq!(trace.count("span_ended"), 0);
    }

    #[test]
    fn candidate_scan_timing_is_zeroed() {
        let mut trace = Trace::new();
        trace.record(
            0,
            1,
            Event::SyncCandidatesSelected {
                source: 1,
                target: 2,
                candidates: 5,
                selected: 3,
                memo_hits: 2,
                scan_us: 777,
                at_secs: 10,
            },
        );
        assert_eq!(trace.len(), 1);
        match &trace.entries()[0].event {
            Event::SyncCandidatesSelected {
                scan_us,
                candidates,
                ..
            } => {
                assert_eq!(*scan_us, 0);
                assert_eq!(*candidates, 5);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn jsonl_lines_carry_step_and_host() {
        let mut trace = Trace::new();
        trace.record(
            3,
            7,
            Event::ItemEvicted {
                replica: 7,
                origin: 1,
                seq: 9,
            },
        );
        let text = trace.to_jsonl();
        assert_eq!(
            text,
            "{\"step\":3,\"host\":7,\"event\":\"item_evicted\",\"replica\":7,\"origin\":1,\"seq\":9}\n"
        );
    }

    fn sample_trace(seq_base: u64) -> Trace {
        let mut trace = Trace::new();
        for i in 0..4 {
            trace.record(
                i as usize,
                i % 2,
                Event::ItemEvicted {
                    replica: i % 2,
                    origin: 1,
                    seq: seq_base + i,
                },
            );
        }
        trace
    }

    #[test]
    fn streamed_rendering_matches_buffered_rendering() {
        let trace = sample_trace(10);
        let mut streamed = Vec::new();
        trace.write_jsonl(&mut streamed).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), trace.to_jsonl());
    }

    #[test]
    fn digest_discriminates_exactly_like_byte_equality() {
        let a = sample_trace(10);
        let b = sample_trace(10);
        let c = sample_trace(11);
        assert_eq!(a.jsonl_digest(), b.jsonl_digest());
        assert_ne!(a.jsonl_digest(), c.jsonl_digest());
        // The digest is a hash of the rendered bytes, so it must agree
        // with the buffered rendering byte for byte.
        let mut hasher = FnvWriter::default();
        hasher.write_all(a.to_jsonl().as_bytes()).unwrap();
        assert_eq!(a.jsonl_digest(), hasher.finish());
    }

    #[test]
    fn empty_trace_digest_is_the_fnv_offset_basis() {
        assert_eq!(Trace::new().jsonl_digest(), 0xcbf2_9ce4_8422_2325);
    }
}
