//! Declarative disk faults: scripted damage to a durable host's data
//! directory, mirroring [`crate::fault`]'s frame-fault design one layer
//! down.
//!
//! A [`DiskFaultPlan`] is a printable list of [`DiskFault`]s applied to a
//! store directory *while the owning host is crashed* — the moment a real
//! machine loses power mid-write or a disk silently flips a bit. The
//! faults target exactly the failure modes the storage engine claims to
//! recover from:
//!
//! * [`DiskFault::TornTail`] — a partial append: the newest WAL segment
//!   loses its final bytes, as if the crash landed mid-`write`.
//! * [`DiskFault::CorruptRecord`] — a bit flip near the WAL tail that the
//!   record CRC must catch.
//! * [`DiskFault::RemoveCheckpoint`] — the newest checkpoint vanishes,
//!   forcing recovery to fall back a generation or to the WAL alone.
//! * [`DiskFault::DuplicateLastRecord`] — the WAL's last record appears
//!   twice, as a crash between a retried write and its bookkeeping would
//!   leave it; replay must stay idempotent.
//!
//! [`DiskFaultPlan::apply`] performs the damage directly with `std::fs`,
//! reporting what it actually did in a [`DiskDamage`] so scripts can
//! assert the fault was real (e.g. a torn tail of 0 bytes proves
//! nothing).

use std::io;
use std::path::Path;

use store::{layout, record};

/// One scripted piece of damage to a store data directory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskFault {
    /// Truncates the newest WAL segment by `bytes` (clamped to the
    /// segment length): a write torn by power loss.
    TornTail {
        /// Bytes chopped off the end of the newest segment.
        bytes: u64,
    },
    /// XOR-flips one byte of the newest WAL segment, addressed from the
    /// end (`offset_back` = 0 is the last byte), wrapped into the
    /// segment: silent media corruption the CRC must surface.
    CorruptRecord {
        /// Distance from the end of the segment to the flipped byte.
        offset_back: u64,
        /// Non-zero XOR mask applied to the byte.
        xor: u8,
    },
    /// Deletes the newest checkpoint file, forcing recovery to fall back
    /// to an older generation or to WAL replay alone.
    RemoveCheckpoint,
    /// Re-appends the newest WAL segment's last complete record, so
    /// replay sees it twice and must stay idempotent.
    DuplicateLastRecord,
}

/// What [`DiskFaultPlan::apply`] actually changed on disk. Faults against
/// files that do not exist (no WAL yet, no checkpoint yet) are no-ops,
/// and the zeroed fields let a script detect that.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskDamage {
    /// Bytes truncated off WAL segments.
    pub truncated: u64,
    /// Bytes XOR-flipped in place.
    pub flipped: usize,
    /// Checkpoint files deleted.
    pub checkpoints_removed: usize,
    /// WAL records appended a second time.
    pub records_duplicated: usize,
}

impl DiskDamage {
    /// Whether any fault actually altered the directory.
    pub fn any(&self) -> bool {
        self.truncated > 0
            || self.flipped > 0
            || self.checkpoints_removed > 0
            || self.records_duplicated > 0
    }
}

/// A reproducible schedule of disk damage, applied in order.
///
/// # Examples
///
/// ```
/// use testkit::DiskFaultPlan;
///
/// // Power loss mid-append, and the newest checkpoint is gone too.
/// let plan = DiskFaultPlan::clean().torn_tail(3).remove_checkpoint();
/// assert!(!plan.is_clean());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    faults: Vec<DiskFault>,
}

impl DiskFaultPlan {
    /// A plan that damages nothing.
    pub fn clean() -> DiskFaultPlan {
        DiskFaultPlan::default()
    }

    /// Whether the plan has no faults.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults in application order.
    pub fn faults(&self) -> &[DiskFault] {
        &self.faults
    }

    /// Appends an arbitrary fault.
    pub fn fault(mut self, fault: DiskFault) -> DiskFaultPlan {
        if let DiskFault::CorruptRecord { xor, .. } = fault {
            assert!(xor != 0, "a zero XOR mask corrupts nothing");
        }
        self.faults.push(fault);
        self
    }

    /// Chops `bytes` off the newest WAL segment.
    pub fn torn_tail(self, bytes: u64) -> DiskFaultPlan {
        self.fault(DiskFault::TornTail { bytes })
    }

    /// Flips one byte `offset_back` bytes from the newest segment's end.
    pub fn corrupt_record(self, offset_back: u64, xor: u8) -> DiskFaultPlan {
        self.fault(DiskFault::CorruptRecord { offset_back, xor })
    }

    /// Deletes the newest checkpoint file.
    pub fn remove_checkpoint(self) -> DiskFaultPlan {
        self.fault(DiskFault::RemoveCheckpoint)
    }

    /// Appends a copy of the newest segment's last complete record.
    pub fn duplicate_last_record(self) -> DiskFaultPlan {
        self.fault(DiskFault::DuplicateLastRecord)
    }

    /// Applies every fault to `dir` in order, returning what actually
    /// changed. The directory's owning [`store::Store`] must be closed
    /// (in the [`crate::SimRunner`], the host must be crashed).
    ///
    /// # Errors
    ///
    /// I/O failure reading or rewriting the directory's files. Missing
    /// targets (no WAL segment, no checkpoint) are not errors — the
    /// fault is skipped and the [`DiskDamage`] shows it did nothing.
    pub fn apply(&self, dir: &Path) -> io::Result<DiskDamage> {
        let mut damage = DiskDamage::default();
        for fault in &self.faults {
            match *fault {
                DiskFault::TornTail { bytes } => {
                    if let Some((_, path)) = layout::wal_segments(dir)?.pop() {
                        let len = std::fs::metadata(&path)?.len();
                        let cut = bytes.min(len);
                        let file = std::fs::OpenOptions::new().write(true).open(&path)?;
                        file.set_len(len - cut)?;
                        damage.truncated += cut;
                    }
                }
                DiskFault::CorruptRecord { offset_back, xor } => {
                    if let Some((_, path)) = layout::wal_segments(dir)?.pop() {
                        let mut bytes = std::fs::read(&path)?;
                        if !bytes.is_empty() {
                            let last = bytes.len() as u64 - 1;
                            let pos = (last - offset_back % bytes.len() as u64) as usize;
                            bytes[pos] ^= xor;
                            std::fs::write(&path, &bytes)?;
                            damage.flipped += 1;
                        }
                    }
                }
                DiskFault::RemoveCheckpoint => {
                    if let Some((_, path)) = layout::checkpoints(dir)?.pop() {
                        std::fs::remove_file(&path)?;
                        damage.checkpoints_removed += 1;
                    }
                }
                DiskFault::DuplicateLastRecord => {
                    if let Some((_, path)) = layout::wal_segments(dir)?.pop() {
                        let bytes = std::fs::read(&path)?;
                        let scan = record::scan(&bytes);
                        if let Some((range, _)) = scan.records.last() {
                            let copy = bytes[range.clone()].to_vec();
                            let mut all = bytes;
                            all.extend_from_slice(&copy);
                            std::fs::write(&path, &all)?;
                            damage.records_duplicated += 1;
                        }
                    }
                }
            }
        }
        Ok(damage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};
    use store::Store;

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "testkit-diskfault-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn seeded(dir: &Path) {
        let mut s = Store::open(dir).unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
    }

    #[test]
    fn faults_report_what_they_did() {
        let dir = tmp_dir("report");
        seeded(&dir);
        let damage = DiskFaultPlan::clean()
            .torn_tail(2)
            .corrupt_record(5, 0x40)
            .duplicate_last_record()
            .apply(&dir)
            .unwrap();
        assert_eq!(damage.truncated, 2);
        assert_eq!(damage.flipped, 1);
        // The torn+flipped tail leaves no scannable last record to copy.
        assert!(damage.any());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faults_against_an_empty_directory_are_no_ops() {
        let dir = tmp_dir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let damage = DiskFaultPlan::clean()
            .torn_tail(100)
            .corrupt_record(0, 0xFF)
            .remove_checkpoint()
            .duplicate_last_record()
            .apply(&dir)
            .unwrap();
        assert!(!damage.any());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicated_record_replays_idempotently() {
        let dir = tmp_dir("dup");
        seeded(&dir);
        let damage = DiskFaultPlan::clean()
            .duplicate_last_record()
            .apply(&dir)
            .unwrap();
        assert_eq!(damage.records_duplicated, 1);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"a"), Some(&b"1"[..]));
        assert_eq!(s.get(b"b"), Some(&b"2"[..]));
        assert_eq!(s.len(), 2, "replaying the duplicate added nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn removed_checkpoint_still_recovers() {
        let dir = tmp_dir("ckpt");
        {
            let mut s = Store::open(&dir).unwrap();
            s.put(b"k", b"v").unwrap();
            s.checkpoint().unwrap();
        }
        let damage = DiskFaultPlan::clean()
            .remove_checkpoint()
            .apply(&dir)
            .unwrap();
        assert_eq!(damage.checkpoints_removed, 1);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get(b"k"), Some(&b"v"[..]), "WAL replay covered the loss");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "zero XOR mask")]
    fn zero_xor_is_rejected() {
        let _ = DiskFaultPlan::clean().corrupt_record(0, 0);
    }
}
