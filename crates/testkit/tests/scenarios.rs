//! Scripted fault scenarios: every frame-fault class, partitions, and
//! crash-restores, run across the routing policy matrix under invariant
//! checking, plus the determinism contract (same `(seed, script)` → byte-
//! identical traces).
//!
//! The base seed honours `TESTKIT_SEED` so CI can sweep a seed matrix:
//! every scenario here must hold for *any* seed, not a lucky one.

use dtn::PolicyKind;
use pfr::digest::DigestPolicy;
use pfr::SyncMode;
use testkit::{Direction, EncounterOutcome, FaultPlan, SimRunner, SkipReason, Step};
use transport::protocol::ProtocolError;

/// The base seed for every scenario, offset by `TESTKIT_SEED` when set
/// (the CI matrix sets 0..8).
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(0xD7_4E)
}

/// The policies every fault scenario must survive (the paper's §VI set
/// plus the bundled extension).
const POLICIES: [PolicyKind; 6] = PolicyKind::EXTENDED;

/// Builds a two-host runner with one pending message a → b.
fn pair(policy: PolicyKind, seed: u64) -> (SimRunner, usize, usize) {
    let mut sim = SimRunner::new(seed);
    let a = sim.add_host("a", policy);
    let b = sim.add_host("b", policy);
    sim.send(a, "b", b"the payload under test".to_vec());
    (sim, a, b)
}

/// Runs one single-fault scenario for every policy: the faulted encounter
/// must end in typed errors (never a panic), and the network must still
/// converge afterwards.
fn faulted_then_converges(plan: &FaultPlan, expect_failure: bool) {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let (mut sim, a, b) = pair(policy, base_seed() + i as u64);
        let outcome = sim.encounter_with_faults(a, b, plan);
        if expect_failure {
            assert!(
                !outcome.is_clean(),
                "{policy:?}: plan {plan:?} should break the session"
            );
            assert!(
                !outcome.errors().is_empty(),
                "{policy:?}: a broken session must carry typed errors"
            );
        }
        sim.assert_converged();
        sim.with_node(b, |n| {
            assert_eq!(n.inbox().len(), 1, "{policy:?}: message lost");
        });
    }
}

// ---------------------------------------------------------------------------
// Scenario 1-7: every frame fault class, across the whole policy matrix
// ---------------------------------------------------------------------------

#[test]
fn scenario_dropped_hello_frame() {
    faulted_then_converges(&FaultPlan::clean().drop_frame(Direction::AToB, 0), true);
}

#[test]
fn scenario_dropped_batch_frame() {
    // Frame 1 B→A is the responder's SyncBatch answering the pull.
    faulted_then_converges(&FaultPlan::clean().drop_frame(Direction::BToA, 1), true);
}

#[test]
fn scenario_duplicated_request_frame() {
    // The duplicate arrives where the responder expects the next protocol
    // frame: an UnexpectedFrame error, not a double-applied request.
    faulted_then_converges(
        &FaultPlan::clean().duplicate_frame(Direction::AToB, 1),
        true,
    );
}

#[test]
fn scenario_reordered_frames_stall_the_session() {
    faulted_then_converges(&FaultPlan::clean().reorder_frame(Direction::AToB, 1), true);
}

#[test]
fn scenario_truncated_batch_frame() {
    faulted_then_converges(
        &FaultPlan::clean().truncate_frame(Direction::BToA, 1, 9),
        true,
    );
}

#[test]
fn scenario_corrupted_batch_frame() {
    faulted_then_converges(
        &FaultPlan::clean().corrupt_frame(Direction::BToA, 1, 17, 0x04),
        true,
    );
}

#[test]
fn scenario_session_cut_mid_protocol() {
    faulted_then_converges(&FaultPlan::clean().cut_after(Direction::AToB, 2), true);
}

// ---------------------------------------------------------------------------
// Scenario 8: seeded random loss on a relay chain
// ---------------------------------------------------------------------------

#[test]
fn scenario_lossy_relay_chain_still_delivers() {
    // a → relay → b with 30% frame loss on every encounter; repeated
    // meetings must still get the message through, under full invariant
    // checking, for every policy that forwards.
    for (i, policy) in [
        PolicyKind::Epidemic,
        PolicyKind::SprayAndWait,
        PolicyKind::Prophet,
        PolicyKind::MaxProp,
    ]
    .into_iter()
    .enumerate()
    {
        let mut sim = SimRunner::new(base_seed() + 100 + i as u64);
        let a = sim.add_host("a", policy);
        let r = sim.add_host("relay", policy);
        let b = sim.add_host("b", policy);
        sim.send(a, "b", b"through the storm".to_vec());
        let lossy = FaultPlan::clean().drop_with_probability(0.3);
        for _ in 0..6 {
            sim.encounter_with_faults(a, r, &lossy);
            sim.encounter_with_faults(r, b, &lossy);
            sim.advance(60);
        }
        sim.assert_converged();
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
    }
}

// ---------------------------------------------------------------------------
// Scenario 9: a two-hour partition delays but does not lose delivery
// ---------------------------------------------------------------------------

#[test]
fn scenario_partition_delays_but_does_not_lose() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let mut sim = SimRunner::new(base_seed() + 200 + i as u64);
        let a = sim.add_host("a", policy);
        let b = sim.add_host("b", policy);
        sim.send(a, "b", b"after the partition".to_vec());
        sim.partition(a, b, 2 * 3600);
        // Meetings during the partition move nothing.
        assert!(matches!(
            sim.encounter(a, b),
            EncounterOutcome::Skipped(SkipReason::Partitioned)
        ));
        sim.advance(3600);
        assert!(matches!(
            sim.encounter(a, b),
            EncounterOutcome::Skipped(SkipReason::Partitioned)
        ));
        sim.with_node(b, |n| assert!(n.inbox().is_empty(), "{policy:?}"));
        // Two hours later the partition has healed.
        sim.advance(3600);
        let outcome = sim.encounter(a, b);
        assert!(outcome.is_clean(), "{policy:?}: {outcome:?}");
        sim.assert_converged();
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
    }
}

// ---------------------------------------------------------------------------
// Scenario 10: crash and restore from the last snapshot, then re-sync
// ---------------------------------------------------------------------------

#[test]
fn scenario_crash_restore_resyncs_without_double_delivery() {
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let mut sim = SimRunner::new(base_seed() + 300 + i as u64);
        let a = sim.add_host("a", policy);
        let b = sim.add_host("b", policy);
        sim.send(a, "b", b"survives the crash".to_vec());
        // b receives the message, snapshots, then receives a second one
        // that the crash will roll back.
        let first = sim.encounter(a, b);
        assert!(first.is_clean(), "{policy:?}: {first:?}");
        sim.snapshot(b);
        sim.send(a, "b", b"rolled back and re-synced".to_vec());
        let second = sim.encounter(a, b);
        assert!(second.is_clean(), "{policy:?}: {second:?}");
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 2, "{policy:?}"));
        // Crash: b falls back to the snapshot with only the first message.
        sim.crash(b);
        assert!(matches!(
            sim.encounter(a, b),
            EncounterOutcome::Skipped(SkipReason::Crashed)
        ));
        sim.restore(b);
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
        // Re-sync restores the lost message exactly once; the runner's
        // at-most-once and monotonicity invariants watch every step.
        sim.assert_converged();
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 2, "{policy:?}"));
    }
}

// ---------------------------------------------------------------------------
// Scenario 11: faults during the *second* sync of a bigger script
// ---------------------------------------------------------------------------

#[test]
fn scenario_scripted_mesh_with_mixed_faults() {
    let script = vec![
        Step::Send {
            from: 0,
            dest: "c".to_string(),
            payload: b"multi-hop".to_vec(),
        },
        Step::Encounter {
            a: 0,
            b: 1,
            plan: FaultPlan::clean().corrupt_frame(Direction::BToA, 1, 5, 0x11),
        },
        Step::Advance { secs: 30 },
        Step::Encounter {
            a: 0,
            b: 1,
            plan: FaultPlan::clean(),
        },
        Step::Advance { secs: 30 },
        Step::Encounter {
            a: 1,
            b: 2,
            plan: FaultPlan::clean().drop_frame(Direction::AToB, 2),
        },
        Step::Advance { secs: 30 },
        Step::Encounter {
            a: 1,
            b: 2,
            plan: FaultPlan::clean(),
        },
    ];
    for (i, policy) in [
        PolicyKind::Epidemic,
        PolicyKind::SprayAndWait,
        PolicyKind::Prophet,
        PolicyKind::MaxProp,
    ]
    .into_iter()
    .enumerate()
    {
        let mut sim = SimRunner::new(base_seed() + 400 + i as u64);
        sim.add_host("a", policy);
        sim.add_host("relay", policy);
        sim.add_host("c", policy);
        sim.run_script(&script);
        sim.assert_converged();
        sim.with_node(2, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
    }
}

// ---------------------------------------------------------------------------
// Scenario 12: bounded relay stores hold under faulty churn
// ---------------------------------------------------------------------------

#[test]
fn scenario_relay_store_stays_bounded_under_faults() {
    let mut sim = SimRunner::new(base_seed() + 500);
    let a = sim.add_host("a", PolicyKind::Epidemic);
    let r = sim.add_host("relay", PolicyKind::Epidemic);
    let b = sim.add_host("b", PolicyKind::Epidemic);
    sim.set_relay_limit(r, 4);
    for i in 0..12 {
        sim.send(a, "b", format!("message {i}").into_bytes());
    }
    let lossy = FaultPlan::clean().drop_with_probability(0.2);
    for _ in 0..8 {
        sim.encounter_with_faults(a, r, &lossy);
        sim.encounter_with_faults(r, b, &lossy);
        sim.advance(60);
    }
    // The bounded-store invariant ran after every step above; directly
    // confirm the cap too.
    sim.with_node(r, |n| assert!(n.replica().relay_load() <= 4));
}

// ---------------------------------------------------------------------------
// Determinism: same (seed, script) → byte-identical traces
// ---------------------------------------------------------------------------

/// One full faulty run, returning the trace's streaming JSONL digest and
/// entry count. The digest covers the exact bytes `to_jsonl` would
/// render, but in constant memory — so this comparison stays safe at
/// fleet sizes where buffering two full renderings would OOM the harness.
fn determinism_run(seed: u64) -> (u64, usize) {
    let mut sim = SimRunner::new(seed);
    let a = sim.add_host("a", PolicyKind::MaxProp);
    let r = sim.add_host("relay", PolicyKind::MaxProp);
    let b = sim.add_host("b", PolicyKind::MaxProp);
    sim.send(a, "b", b"deterministic".to_vec());
    sim.send(b, "a", b"both ways".to_vec());
    let lossy = FaultPlan::clean()
        .corrupt_frame(Direction::BToA, 3, 21, 0x55)
        .drop_with_probability(0.25);
    for _ in 0..5 {
        sim.encounter_with_faults(a, r, &lossy);
        sim.advance(120);
        sim.encounter_with_faults(r, b, &lossy);
        sim.advance(120);
    }
    sim.snapshot(b);
    sim.crash(b);
    sim.restore(b);
    sim.assert_converged();
    let trace = sim.into_trace();
    (trace.jsonl_digest(), trace.len())
}

#[test]
fn same_seed_and_script_produce_byte_identical_traces() {
    let seed = base_seed() + 600;
    let (first, first_len) = determinism_run(seed);
    let (second, second_len) = determinism_run(seed);
    assert!(first_len > 0, "a faulty run must record events");
    assert_eq!(first_len, second_len, "entry count diverged");
    assert_eq!(first, second, "trace diverged between two identical runs");
}

#[test]
fn different_seeds_shuffle_the_fault_schedule() {
    // Sanity check that the seed actually reaches the fault draws: two
    // different seeds on a probabilistic plan should (for these specific
    // seeds) produce different traces.
    let (first, _) = determinism_run(base_seed() + 601);
    let (second, _) = determinism_run(base_seed() + 602);
    assert_ne!(first, second, "seed does not influence the fault schedule");
}

// ---------------------------------------------------------------------------
// Typed-error contract: damaged sessions never panic and always report
// ---------------------------------------------------------------------------

#[test]
fn truncation_and_corruption_yield_typed_errors_and_reports() {
    // Sweep truncation points and corruption offsets over a real session;
    // every outcome must be a typed ProtocolError plus a SessionReport —
    // never a panic, never a hang.
    let seed = base_seed() + 700;
    for keep in [0, 1, 5, 10, 11, 12, 40] {
        let (mut sim, a, b) = pair(PolicyKind::Epidemic, seed + keep as u64);
        let plan = FaultPlan::clean().truncate_frame(Direction::BToA, 1, keep);
        match sim.encounter_with_faults(a, b, &plan) {
            EncounterOutcome::Completed(sessions) => {
                let err = sessions
                    .initiator
                    .error
                    .as_ref()
                    .expect("truncation must fail the initiator");
                assert!(matches!(err, ProtocolError::Frame(_)), "keep={keep}: {err}");
            }
            other => panic!("keep={keep}: expected a completed-with-error pair, got {other:?}"),
        }
    }
    for offset in 0..24 {
        let (mut sim, a, b) = pair(PolicyKind::Epidemic, seed + 100 + offset as u64);
        let plan = FaultPlan::clean().corrupt_frame(Direction::AToB, 1, offset, 0xA5);
        match sim.encounter_with_faults(a, b, &plan) {
            EncounterOutcome::Completed(sessions) => {
                let err = sessions
                    .responder
                    .error
                    .as_ref()
                    .expect("corruption must fail the responder");
                assert!(
                    matches!(
                        err,
                        ProtocolError::Frame(_) | ProtocolError::UnexpectedFrame { .. }
                    ),
                    "offset={offset}: {err}"
                );
                // The responder still produced a (partial) report.
                assert!(sessions.responder.report.peer.is_some() || offset % 2 == 0);
            }
            other => panic!("offset={offset}: expected completed pair, got {other:?}"),
        }
    }
}

#[test]
fn every_policy_survives_a_full_fault_sweep() {
    // One compact sweep: for each policy, throw one fault of every class
    // at consecutive sessions and require convergence at the end. This is
    // the "all six policies through fault scripts" acceptance gate.
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let seed = base_seed() + 800 + i as u64;
        let mut sim = SimRunner::new(seed);
        let a = sim.add_host("a", policy);
        let b = sim.add_host("b", policy);
        sim.send(a, "b", b"sweep one".to_vec());
        sim.send(b, "a", b"sweep two".to_vec());
        let plans = [
            FaultPlan::clean().drop_frame(Direction::AToB, 0),
            FaultPlan::clean().duplicate_frame(Direction::BToA, 0),
            FaultPlan::clean().reorder_frame(Direction::BToA, 1),
            FaultPlan::clean().truncate_frame(Direction::AToB, 1, 3),
            FaultPlan::clean().corrupt_frame(Direction::AToB, 1, 2, 0xFF),
            FaultPlan::clean().cut_after(Direction::BToA, 2),
        ];
        for plan in &plans {
            sim.encounter_with_faults(a, b, plan);
            sim.advance(30);
        }
        sim.assert_converged();
        sim.with_node(a, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
    }
}

// ---------------------------------------------------------------------------
// Scenario 13-15: digest-mode reconciliation under faults and crashes
// ---------------------------------------------------------------------------

#[test]
fn scenario_digest_mode_converges_across_policies() {
    // The whole policy matrix, with every host syncing via compact
    // digests instead of full knowledge exchange. A crash-restore in the
    // middle rolls b behind a's cached snapshot of it, so at least one
    // later digest exchange cannot verify its checksum and must fall
    // back — convergence and at-most-once must hold regardless.
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let mut sim = SimRunner::new(base_seed() + 1900 + i as u64);
        sim.set_sync_mode(SyncMode::Digest);
        let a = sim.add_host("a", policy);
        let b = sim.add_host("b", policy);
        sim.send(a, "b", b"digest one".to_vec());
        sim.send(b, "a", b"digest two".to_vec());
        let first = sim.encounter(a, b);
        assert!(first.is_clean(), "{policy:?}: {first:?}");
        sim.snapshot(b);
        sim.send(a, "b", b"digest three, rolled back".to_vec());
        assert!(sim.encounter(a, b).is_clean(), "{policy:?}");
        sim.crash(b);
        sim.restore(b);
        // Sync mode is runtime config: the runner must have re-applied
        // it to the restored node.
        sim.with_node(b, |n| {
            assert_eq!(n.sync_mode(), SyncMode::Digest, "{policy:?}");
        });
        sim.assert_converged();
        sim.with_node(a, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 2, "{policy:?}"));
        let stats_a = sim.with_node(a, |n| n.recon_stats());
        assert!(stats_a.exchanges > 0, "{policy:?}: no digest exchanges ran");
        assert!(
            stats_a.digest_bytes > 0,
            "{policy:?}: digests moved no bytes"
        );
    }
}

#[test]
fn scenario_corrupted_digest_frame_falls_back_to_full_exchange() {
    // A→B frame 1 is the initiator's SyncDigest; offset 1 lands the flip
    // on the frame checksum, so the responder sees a typed BadChecksum
    // *after* the payload is consumed, answers ReconResync, and the
    // initiator retransmits the plain full request inside the same
    // session. The encounter stays clean — degraded bandwidth, not a
    // failed session — and the fallback is visible in the recon stats.
    for (i, policy) in POLICIES.into_iter().enumerate() {
        let mut sim = SimRunner::new(base_seed() + 2000 + i as u64);
        sim.set_sync_mode(SyncMode::Digest);
        let a = sim.add_host("a", policy);
        let b = sim.add_host("b", policy);
        sim.send(a, "b", b"survives digest corruption".to_vec());
        let plan = FaultPlan::clean().corrupt_frame(Direction::AToB, 1, 1, 0x40);
        let outcome = sim.encounter_with_faults(a, b, &plan);
        assert!(
            outcome.is_clean(),
            "{policy:?}: in-session fallback should keep the session clean, got {outcome:?}"
        );
        sim.with_node(b, |n| assert_eq!(n.inbox().len(), 1, "{policy:?}"));
        let stats_a = sim.with_node(a, |n| n.recon_stats());
        assert!(
            stats_a.fallback_rounds >= 1,
            "{policy:?}: corruption must register as a fallback round, stats {stats_a:?}"
        );
        sim.assert_converged();
    }
}

#[test]
fn scenario_force_bloom_resolves_overlap_with_query_rounds() {
    // ForceBloom summarizes with a Bloom filter even on repeat
    // encounters. After the first exchange the hosts' version sets
    // overlap, so the second exchange screens real members against the
    // filter: the uncertain set is non-empty and the source must run the
    // exact membership round. Delivery stays exactly-once — the query
    // round verifies membership exactly, so false positives can cost a
    // round trip but never produce wrong candidates.
    let mut sim = SimRunner::new(base_seed() + 2100);
    sim.set_sync_mode(SyncMode::Digest);
    let a = sim.add_host("a", PolicyKind::Epidemic);
    let b = sim.add_host("b", PolicyKind::Epidemic);
    for h in [a, b] {
        sim.with_node(h, |n| n.set_digest_policy(DigestPolicy::ForceBloom));
    }
    for i in 0..6 {
        sim.send(a, "b", format!("bloom a->b {i}").into_bytes());
        sim.send(b, "a", format!("bloom b->a {i}").into_bytes());
    }
    assert!(sim.encounter(a, b).is_clean());
    sim.advance(60);
    assert!(sim.encounter(a, b).is_clean());
    let stats_a = sim.with_node(a, |n| n.recon_stats());
    let stats_b = sim.with_node(b, |n| n.recon_stats());
    assert!(
        stats_a.fallback_rounds + stats_b.fallback_rounds >= 1,
        "overlapping bloom exchanges must trigger a query round: {stats_a:?} / {stats_b:?}"
    );
    sim.assert_converged();
    sim.with_node(a, |n| assert_eq!(n.inbox().len(), 6));
    sim.with_node(b, |n| assert_eq!(n.inbox().len(), 6));
}

// ---------------------------------------------------------------------------
// Scenario 16: kill -9 on a durable host — recovery from the data directory
// ---------------------------------------------------------------------------

/// A unique store directory for one durable scenario host.
fn durable_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "testkit-durable-{tag}-{}-{}",
        std::process::id(),
        base_seed()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn scenario_kill_dash_nine_recovers_from_disk() {
    // A durable host never snapshots explicitly: the transport persists
    // it after every session, so a crash is a true kill -9 and restore
    // reopens whatever the WAL holds.
    let dir = durable_dir("kill9");
    let mut sim = SimRunner::new(base_seed() + 1600);
    let a = sim.add_host("a", PolicyKind::Epidemic);
    let b = sim.add_durable_host("b", PolicyKind::Epidemic, &dir);

    sim.send(a, "b", b"first, before the crash".to_vec());
    assert!(sim.encounter(a, b).is_clean());
    sim.with_node(b, |n| {
        assert_eq!(n.inbox().len(), 1);
        assert!(n.persisted_at().is_some(), "session auto-persisted");
    });

    sim.crash(b); // no snapshot step: kill -9
    assert!(matches!(
        sim.encounter(a, b),
        EncounterOutcome::Skipped(SkipReason::Crashed)
    ));
    sim.restore(b);
    sim.with_node(b, |n| {
        assert_eq!(n.inbox().len(), 1, "delivery survived the kill");
        assert!(n.recovery().unwrap().recovered_state());
    });

    // Post-restart traffic flows, and the runner's at-most-once and
    // monotonicity invariants watch every step.
    sim.send(a, "b", b"second, after the restart".to_vec());
    assert!(sim.encounter(a, b).is_clean());
    sim.assert_converged();
    sim.with_node(b, |n| assert_eq!(n.inbox().len(), 2));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scenario_disk_damage_between_kill_and_restart_is_tolerated() {
    // The crash also damages the directory: the last record is torn, a
    // duplicate of it was flushed, and there is no checkpoint to lean
    // on. Recovery must absorb all of it without losing the delivery.
    let dir = durable_dir("damage");
    let mut sim = SimRunner::new(base_seed() + 1700);
    let a = sim.add_host("a", PolicyKind::Epidemic);
    let b = sim.add_durable_host("b", PolicyKind::Epidemic, &dir);

    sim.send(a, "b", b"survives disk damage".to_vec());
    assert!(sim.encounter(a, b).is_clean());
    sim.crash(b);
    let damage = sim.disk_fault(
        b,
        &testkit::DiskFaultPlan::clean()
            .duplicate_last_record()
            .torn_tail(1)
            .remove_checkpoint(),
    );
    assert_eq!(damage.records_duplicated, 1);
    assert_eq!(damage.truncated, 1);
    assert_eq!(damage.checkpoints_removed, 0, "no checkpoint existed yet");

    sim.restore(b);
    sim.with_node(b, |n| {
        assert_eq!(n.inbox().len(), 1, "node snapshot record was intact");
        let report = n.recovery().unwrap();
        assert!(report.truncated_bytes > 0, "torn tail was truncated away");
    });
    sim.assert_converged();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn scenario_rollback_past_a_persist_rereplicates_without_duplicates() {
    // Corruption lands inside the *second* persist's node snapshot, so
    // recovery rolls b back to the first persist. The runner resets b's
    // delivery history at restore: whatever the network still holds is
    // re-replicated, and at-most-once is enforced throughout.
    let dir = durable_dir("rollback");
    let mut sim = SimRunner::new(base_seed() + 1800);
    let a = sim.add_host("a", PolicyKind::Epidemic);
    let b = sim.add_durable_host("b", PolicyKind::Epidemic, &dir);

    sim.send(a, "b", b"early delivery".to_vec());
    assert!(sim.encounter(a, b).is_clean()); // persist #1
    sim.send(a, "b", b"late delivery".to_vec());
    assert!(sim.encounter(a, b).is_clean()); // persist #2
    sim.with_node(b, |n| assert_eq!(n.inbox().len(), 2));

    sim.crash(b);
    // Byte 40-from-end sits inside persist #2's node snapshot record
    // (the trailing persisted-at record is much smaller than that).
    let damage = sim.disk_fault(b, &testkit::DiskFaultPlan::clean().corrupt_record(40, 0x55));
    assert_eq!(damage.flipped, 1);

    sim.restore(b);
    sim.with_node(b, |n| {
        assert_eq!(n.inbox().len(), 1, "rolled back to persist #1");
        assert_eq!(n.inbox()[0].payload, b"early delivery");
        assert!(n.recovery().unwrap().truncated_bytes > 0);
    });
    // Convergence drops obligations the crash erased from the whole
    // network and re-replicates the rest exactly once.
    sim.assert_converged();
    sim.with_node(b, |n| {
        assert_eq!(n.inbox()[0].payload, b"early delivery");
    });
    std::fs::remove_dir_all(&dir).unwrap();
}
