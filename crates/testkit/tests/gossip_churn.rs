//! Peer churn under gossip: nodes join, crash, and rejoin mid-run over
//! real sockets, and the system must re-converge — membership heals
//! (suspicion, refutation, rejoin), knowledge only grows, and delivery
//! stays at-most-once no matter how many redundant sessions the churn
//! provokes.
//!
//! The gossip seed honours `TESTKIT_SEED` like the scripted scenarios,
//! so the CI matrix sweeps fanout target selection too.

use std::collections::HashSet;
use std::time::Duration;

use dtn::{DtnNode, PolicyKind};
use net::{MembershipConfig, NetConfig, NetNode, PeerStatus};
use pfr::{Knowledge, ReplicaId, SimTime};

/// The base seed for every scenario, offset by `TESTKIT_SEED` when set
/// (the CI matrix sets 0..8).
fn base_seed() -> u64 {
    std::env::var("TESTKIT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0u64)
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(0xD7_4E)
}

fn dtn(id: u64, addr: &str) -> DtnNode {
    DtnNode::new(ReplicaId::new(id), addr, PolicyKind::Epidemic)
}

/// Manual gossip rounds (interval zero) keep churn tests deterministic:
/// the test decides when rounds happen, not a timer thread.
fn config(seed: u64) -> NetConfig {
    NetConfig {
        gossip_interval: Duration::ZERO,
        gossip: MembershipConfig {
            seed,
            ..MembershipConfig::default()
        },
        ..NetConfig::default()
    }
}

/// Starts `n` nodes chained by seeds (each knows only its predecessor)
/// and gossips until every view holds all `n - 1` other peers, alive.
fn converged_cluster(n: u64) -> Vec<NetNode> {
    let seed = base_seed();
    let names: Vec<String> = (1..=n).map(|i| format!("h{i}")).collect();
    let nodes: Vec<NetNode> = (1..=n)
        .map(|i| {
            NetNode::start(
                dtn(i, &names[(i - 1) as usize]),
                "127.0.0.1:0",
                config(seed.wrapping_add(i)),
            )
            .expect("bind")
        })
        .collect();
    for pair in nodes.windows(2) {
        pair[1].add_seed(pair[0].local_addr().to_string());
    }
    gossip_until(&nodes, 4 * n as usize, |all| {
        all.iter().all(|node| {
            let view = node.membership();
            view.len() == (n - 1) as usize && view.iter().all(|p| p.status == PeerStatus::Alive)
        })
    });
    nodes
}

/// Runs full gossip rounds until `done` holds, panicking after `limit`
/// rounds (membership must re-converge in bounded rounds, not eventually).
fn gossip_until(nodes: &[NetNode], limit: usize, done: impl Fn(&[NetNode]) -> bool) {
    for _ in 0..limit {
        for node in nodes {
            node.gossip_now();
        }
        if done(nodes) {
            return;
        }
    }
    let views: Vec<_> = nodes.iter().map(|n| n.membership()).collect();
    panic!("membership failed to converge within {limit} rounds: {views:?}");
}

#[test]
fn membership_reconverges_after_crash_and_rejoin() {
    let mut nodes = converged_cluster(4);

    // Crash h4. The survivors' dials fail and suspicion spreads.
    let crashed = nodes.pop().expect("four nodes");
    let dead_addr = crashed.local_addr().to_string();
    let state = crashed.stop();
    gossip_until(&nodes, 12, |all| {
        all.iter().all(|node| {
            node.membership()
                .iter()
                .any(|p| p.replica == 4 && p.status == PeerStatus::Suspect)
        })
    });

    // Rejoin with the crashed node's persisted state on a fresh port: a
    // fresh incarnation refutes the standing suspicion, and the view
    // heals to the *new* address (route healing).
    let rejoined =
        NetNode::start(state, "127.0.0.1:0", config(base_seed().wrapping_add(99))).expect("rebind");
    let new_addr = rejoined.local_addr().to_string();
    assert_ne!(new_addr, dead_addr, "rejoin picked a fresh port");
    rejoined.add_seed(nodes[0].local_addr().to_string());
    nodes.push(rejoined);
    gossip_until(&nodes, 12, |all| {
        all.iter().enumerate().all(|(i, node)| {
            let me = i as u64 + 1;
            let view = node.membership();
            view.len() == 3
                && view.iter().all(|p| p.status == PeerStatus::Alive)
                && (me == 4 || view.iter().any(|p| p.replica == 4 && p.addr == new_addr))
        })
    });

    for node in nodes {
        node.stop();
    }
}

#[test]
fn knowledge_stays_monotonic_across_churned_sync_rounds() {
    let mut nodes = converged_cluster(3);
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();

    // Seed traffic in both directions so sync rounds actually move data.
    nodes[0].with_node(|n| {
        n.send("h3", b"over the churn".to_vec(), SimTime::ZERO)
            .unwrap();
    });
    nodes[2].with_node(|n| {
        n.send("h1", b"against the churn".to_vec(), SimTime::ZERO)
            .unwrap();
    });

    let snapshot =
        |node: &NetNode| -> Knowledge { node.with_node(|n| n.replica().knowledge().clone()) };
    let mut prev: Vec<Knowledge> = nodes.iter().map(snapshot).collect();
    let check = |nodes: &[NetNode], prev: &mut Vec<Knowledge>, when: &str| {
        for (i, node) in nodes.iter().enumerate() {
            let now = snapshot(node);
            assert!(
                now.dominates(&prev[i]),
                "{when}: node {} knowledge regressed",
                i + 1
            );
            prev[i] = now;
        }
    };

    // Round 1: ring syncs while everyone is up.
    for (i, node) in nodes.iter().enumerate() {
        let target = &addrs[(i + 1) % addrs.len()];
        let result = node.sync_with(target, SimTime::from_secs(60));
        assert!(result.is_ok(), "ring sync failed: {:?}", result.error);
    }
    check(&nodes, &mut prev, "after full-mesh round");

    // Crash h2 mid-run; the survivors keep syncing with each other (and
    // fail toward the corpse) — failed sessions must not regress state.
    let crashed = nodes.remove(1);
    let state = crashed.stop();
    prev.remove(1);
    let _ = nodes[0].sync_with(&addrs[1], SimTime::from_secs(120)); // dial the corpse
    let result = nodes[0].sync_with(&addrs[2], SimTime::from_secs(121));
    assert!(result.is_ok(), "survivor sync failed: {:?}", result.error);
    check(&nodes, &mut prev, "after crash round");

    // h2 rejoins with its persisted state and catches back up.
    let rejoined =
        NetNode::start(state, "127.0.0.1:0", config(base_seed().wrapping_add(77))).expect("rebind");
    let rejoined_addr = rejoined.local_addr().to_string();
    prev.insert(1, snapshot(&rejoined));
    nodes.insert(1, rejoined);
    let result = nodes[1].sync_with(&addrs[0], SimTime::from_secs(180));
    assert!(result.is_ok(), "rejoin sync failed: {:?}", result.error);
    let result = nodes[2].sync_with(&rejoined_addr, SimTime::from_secs(181));
    assert!(
        result.is_ok(),
        "sync to rejoined failed: {:?}",
        result.error
    );
    check(&nodes, &mut prev, "after rejoin round");

    for node in nodes {
        node.stop();
    }
}

#[test]
fn delivery_is_at_most_once_under_repeated_churned_syncs() {
    const MESSAGES: usize = 5;
    let mut nodes = converged_cluster(3);
    let addrs: Vec<String> = nodes.iter().map(|n| n.local_addr().to_string()).collect();

    nodes[0].with_node(|n| {
        for i in 0..MESSAGES {
            n.send(
                "h3",
                format!("exactly once #{i}").into_bytes(),
                SimTime::ZERO,
            )
            .unwrap();
        }
    });

    // Redundant delivery paths: direct and via h2, repeated across
    // rounds, with the destination crashing and rejoining in between.
    for round in 0..3u64 {
        for target in [&addrs[1], &addrs[2]] {
            let result = nodes[0].sync_with(target, SimTime::from_secs(60 + round));
            assert!(result.is_ok(), "h1 sync failed: {:?}", result.error);
        }
        let result = nodes[1].sync_with(&addrs[2], SimTime::from_secs(90 + round));
        assert!(result.is_ok(), "h2 relay failed: {:?}", result.error);
    }
    let crashed = nodes.pop().expect("three nodes");
    let state = crashed.stop();
    let rejoined =
        NetNode::start(state, "127.0.0.1:0", config(base_seed().wrapping_add(55))).expect("rebind");
    let rejoined_addr = rejoined.local_addr().to_string();
    nodes.push(rejoined);
    for round in 0..2u64 {
        let result = nodes[0].sync_with(&rejoined_addr, SimTime::from_secs(200 + round));
        assert!(
            result.is_ok(),
            "post-rejoin sync failed: {:?}",
            result.error
        );
        let result = nodes[1].sync_with(&rejoined_addr, SimTime::from_secs(210 + round));
        assert!(
            result.is_ok(),
            "post-rejoin relay failed: {:?}",
            result.error
        );
    }

    let dest = nodes.pop().expect("rejoined node").stop();
    let inbox = dest.inbox();
    assert_eq!(
        inbox.len(),
        MESSAGES,
        "every message delivered exactly once despite redundant sessions"
    );
    let unique: HashSet<_> = inbox.iter().map(|m| m.id).collect();
    assert_eq!(unique.len(), MESSAGES, "no duplicate message ids");
    for node in nodes {
        node.stop();
    }
}
