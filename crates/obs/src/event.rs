//! The typed event vocabulary shared by every instrumented layer.

/// Why a message copy was discarded (the unified drop event always carries
/// one of these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The message's bounded lifetime ended and the origin tombstoned it.
    Expired,
    /// A relay copy was evicted under the relay storage cap.
    Evicted,
    /// A relay copy was purged after the policy learned (through an
    /// acknowledgement) that the message was delivered elsewhere.
    Acked,
}

impl DropReason {
    /// Stable lower-case label used in JSON output and counter names.
    pub fn label(self) -> &'static str {
        match self {
            DropReason::Expired => "expired",
            DropReason::Evicted => "evicted",
            DropReason::Acked => "acked",
        }
    }
}

/// What a routing policy decided during batch construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// `to_send` chose to forward the item (cost = priority tie-breaker).
    Forward,
    /// `to_send` declined the item.
    Suppress,
    /// `process_request` digested the peer's routing state (cost = routing
    /// payload bytes).
    RequestProcessed,
}

impl DecisionKind {
    /// Stable lower-case label used in JSON output and counter names.
    pub fn label(self) -> &'static str {
        match self {
            DecisionKind::Forward => "forward",
            DecisionKind::Suppress => "suppress",
            DecisionKind::RequestProcessed => "request",
        }
    }
}

/// One observable occurrence somewhere in the stack.
///
/// Identifiers are raw integers so this crate depends on nothing: a
/// `replica`/`source`/`target`/`peer` field is a replica id, and an item is
/// identified by the `(origin, seq)` pair of its item id. A `peer` or
/// `source` of `0` means "unknown" (replica ids are nonzero by
/// convention).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Event {
    /// A new message entered the network at its origin replica.
    MessageInjected {
        /// Replica the message was inserted into.
        replica: u64,
        /// Item id origin component (equals `replica`).
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Sender address.
        src: String,
        /// Destination address.
        dst: String,
        /// Simulated time of injection, seconds.
        at_secs: u64,
    },
    /// A sync began: the target built its request.
    SyncStarted {
        /// The pulling (target) replica.
        target: u64,
        /// The serving (source) replica, 0 if unknown.
        source: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// The source finished scanning and selecting candidate items for one
    /// sync (the hot inner loop of batch construction).
    SyncCandidatesSelected {
        /// The serving replica.
        source: u64,
        /// The pulling replica.
        target: u64,
        /// Candidate items unknown to the target.
        candidates: u64,
        /// Candidates selected (filter-matched or policy-forwarded).
        selected: u64,
        /// Filter-match verdicts answered from the per-filter memo.
        memo_hits: u64,
        /// Wall-clock duration of scan + selection, microseconds (0 when
        /// the observer was attached mid-run and no timing was taken).
        scan_us: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A parallel experiment sweep started.
    SweepStarted {
        /// Independent emulation jobs in the sweep.
        jobs: u64,
        /// Worker threads executing them.
        workers: u64,
    },
    /// The source finished building a batch for one sync.
    SyncBatchSent {
        /// The serving replica.
        source: u64,
        /// The pulling replica.
        target: u64,
        /// Items in the batch.
        entries: u64,
        /// Candidates declined by policy or cut by limits.
        withheld: u64,
        /// Total payload bytes across the batch.
        payload_bytes: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// One item was placed in an outgoing batch (a transmission).
    ItemTransmitted {
        /// The serving replica.
        source: u64,
        /// The pulling replica.
        target: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Payload size of the transmitted copy.
        bytes: u64,
        /// Whether the item matched the target's filter (a delivery) as
        /// opposed to being policy-forwarded (a relay handoff).
        matched_filter: bool,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A received item became newly visible in the target's filtered store.
    ItemDelivered {
        /// The receiving replica.
        replica: u64,
        /// The replica it was received from.
        source: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A received item was accepted into the relay (or push-out) store.
    ItemRelayed {
        /// The receiving replica.
        replica: u64,
        /// The replica it was received from.
        source: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A relay copy was evicted under the relay storage cap. The store
    /// layer has no clock, so this event carries no timestamp; the paired
    /// [`Event::MessageDropped`] identifies the same copy.
    ItemEvicted {
        /// The evicting replica.
        replica: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
    },
    /// A message's bounded lifetime ended at this holder.
    ItemExpired {
        /// The replica that dropped its copy.
        replica: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A message copy was discarded — the unified drop event. Every drop
    /// site emits one of these with its reason (specific events like
    /// [`Event::ItemEvicted`] / [`Event::ItemExpired`] add detail).
    MessageDropped {
        /// The replica that discarded the copy.
        replica: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Why the copy was discarded.
        reason: DropReason,
    },
    /// A tracked message reached its true destination for the first time
    /// (emitted by the emulation engine, which knows the destination).
    MessageDelivered {
        /// The destination replica.
        replica: u64,
        /// Item id origin component.
        origin: u64,
        /// Item id sequence component.
        seq: u64,
        /// Delay between injection and delivery, seconds.
        delay_secs: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// One encounter (two-to-four syncs with alternating roles) finished.
    EncounterCompleted {
        /// First participant.
        a: u64,
        /// Second participant.
        b: u64,
        /// Items transmitted across all directions.
        transmitted: u64,
        /// Filtered-store deliveries across both sides.
        delivered: u64,
        /// Duplicate receipts (must stay zero).
        duplicates: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A batch was applied and the target's knowledge grew.
    KnowledgeMerged {
        /// The replica whose knowledge grew.
        replica: u64,
        /// The sync peer.
        peer: u64,
        /// Entries in the applied batch.
        batch_entries: u64,
        /// Replicas tracked in the knowledge vector afterwards.
        knowledge_replicas: u64,
        /// Out-of-order exception versions tracked afterwards.
        knowledge_exceptions: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A routing policy made one decision during batch construction.
    PolicyDecision {
        /// The deciding (source) replica.
        replica: u64,
        /// The sync target.
        peer: u64,
        /// The policy's label ("epidemic", "maxprop", ...).
        policy: &'static str,
        /// Which hook decided, and how.
        kind: DecisionKind,
        /// Item id origin component (0 for request processing).
        origin: u64,
        /// Item id sequence component (0 for request processing).
        seq: u64,
        /// Forwarding cost (priority tie-breaker) or routing-state bytes.
        cost: f64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// A timed span closed (see [`crate::Span`]).
    SpanEnded {
        /// The span's label ("encounter", "transport.initiator", ...).
        name: &'static str,
        /// The local replica.
        replica: u64,
        /// The remote replica, 0 if unknown.
        peer: u64,
        /// Wall-clock duration of the span, microseconds.
        wall_micros: u64,
    },
    /// One networked sync session finished (or failed).
    TransportSync {
        /// The local replica.
        replica: u64,
        /// The remote replica, 0 if unknown (e.g. connection failures).
        peer: u64,
        /// Items served to the remote.
        served: u64,
        /// Deliveries into the local filtered store.
        delivered: u64,
        /// Total frame payload bytes exchanged in the session.
        frame_bytes: u64,
        /// Whether the session completed cleanly.
        ok: bool,
    },
    /// Data-plane buffer reuse accounting for one networked sync session:
    /// how much encode/decode work was served from shared or recycled
    /// buffers instead of fresh allocations.
    DataPlaneReuse {
        /// The local replica.
        replica: u64,
        /// The remote replica, 0 if unknown.
        peer: u64,
        /// Encodes served from the session's reusable scratch buffer
        /// after its first use (each one a saved allocation).
        scratch_reuses: u64,
        /// Total bytes encoded through the scratch buffer.
        bytes_encoded: u64,
        /// Frame reads served from the session's buffer pool.
        pool_hits: u64,
        /// Item payloads decoded as slices of a shared receive buffer
        /// instead of private copies.
        payload_shares: u64,
        /// Total frame payload bytes decoded during the session (the
        /// receive-side mirror of `bytes_encoded`).
        bytes_decoded: u64,
    },
    /// One digest-mode sync exchange: what the compact knowledge summary
    /// cost on the wire versus what shipping the full knowledge would
    /// have, plus fallback-round accounting.
    ReconDigest {
        /// The summary sender (the sync target / initiator).
        replica: u64,
        /// The summary receiver (the sync source).
        peer: u64,
        /// Summary kind actually used: "unchanged", "delta", "bloom",
        /// or "full" (digest mode fell back to a full exchange).
        kind: &'static str,
        /// Sync-metadata bytes the digest exchange cost (summary plus
        /// any query/answer/resync rounds).
        digest_bytes: u64,
        /// Bytes the equivalent full knowledge request would have cost.
        full_bytes: u64,
        /// Extra resolution rounds taken (Bloom membership queries,
        /// undecodable-sketch resyncs).
        fallback_rounds: u64,
        /// Bloom false positives resolved by the exact query round.
        false_positives: u64,
    },
    /// One record was appended to a durable store's write-ahead log.
    WalAppend {
        /// Bytes appended (length prefix + payload + checksum).
        bytes: u64,
        /// Whether the append was fsynced before returning.
        fsync: bool,
        /// Live WAL bytes across all live segments after the append.
        wal_bytes: u64,
    },
    /// A durable store wrote a checkpoint and rotated to a fresh WAL
    /// segment (compaction).
    CheckpointWritten {
        /// The new generation's sequence number.
        seq: u64,
        /// Key-value entries captured in the checkpoint.
        entries: u64,
        /// Checkpoint file size, bytes.
        bytes: u64,
        /// Wall-clock duration of the checkpoint write, microseconds.
        wall_micros: u64,
    },
    /// A durable store finished crash recovery.
    StoreRecovered {
        /// Sequence of the checkpoint the state was rebuilt from (0 when
        /// no valid checkpoint existed).
        checkpoint_seq: u64,
        /// WAL records replayed over the checkpoint.
        wal_records: u64,
        /// Torn/corrupt tail bytes truncated during replay.
        truncated_bytes: u64,
        /// Wall-clock duration of recovery, microseconds.
        wall_micros: u64,
    },
    /// A durability operation failed; the caller chose to continue (the
    /// in-memory state is still authoritative).
    StoreFault {
        /// The operation that failed ("append", "checkpoint", "persist").
        op: &'static str,
        /// Human-readable failure detail.
        detail: String,
    },
    /// A sharded emulation routed an encounter whose endpoints live on
    /// two different worker shards (a cross-shard handoff).
    ShardHandoff {
        /// First participant.
        a: u64,
        /// Second participant.
        b: u64,
        /// Shard owning `a` (the shard the op executed on).
        from_shard: u64,
        /// Shard owning `b`.
        to_shard: u64,
        /// Simulated time, seconds.
        at_secs: u64,
    },
    /// One async-reactor sync session finished (or failed). Emitted by
    /// `crates/net` alongside [`Event::TransportSync`]; this variant adds
    /// the reactor-specific dimensions (direction, connection reuse).
    NetSession {
        /// The local replica.
        replica: u64,
        /// The remote replica, 0 if unknown.
        peer: u64,
        /// `true` when the remote initiated (we served first).
        inbound: bool,
        /// Whether the session ran over a pooled (reused) connection.
        reused: bool,
        /// Whether the session completed cleanly.
        ok: bool,
        /// Wall-clock duration of the session, microseconds.
        wall_micros: u64,
    },
    /// One gossip round completed: this node pushed its membership view
    /// to a fanout of peers and merged whatever came back.
    GossipRound {
        /// The gossiping replica.
        replica: u64,
        /// Peers the round dialed.
        fanout: u64,
        /// Members believed alive after the round.
        alive: u64,
        /// Members under failure suspicion after the round.
        suspect: u64,
        /// Membership entries newly learned (or refreshed forward) by
        /// merging this round's replies.
        learned: u64,
    },
    /// A session's bounded write queue filled: the reactor stopped
    /// reading from that peer until the queue drained (backpressure).
    NetBackpressure {
        /// The local replica.
        replica: u64,
        /// The remote replica, 0 if unknown.
        peer: u64,
        /// Bytes queued when the stall was declared.
        queued_bytes: u64,
    },
    /// One reactor-worker poll batch: syscall and wakeup deltas from the
    /// readiness backend (emitted when a parked worker wakes to pick up
    /// sessions, and flushed once more at worker shutdown).
    NetPoll {
        /// The local replica.
        replica: u64,
        /// The readiness backend label (`"epoll"` or `"sweep"`).
        backend: &'static str,
        /// Socket/poll syscalls issued since the last batch.
        syscalls: u64,
        /// Worker wakeups in this batch.
        wakeups: u64,
        /// Sessions picked up by those wakeups.
        woken: u64,
        /// Worst enqueue→pickup latency in the batch, microseconds.
        wakeup_latency_us: u64,
    },
    /// A sharded emulation parked a cold replica's snapshot on disk — or
    /// brought it back — to bound resident memory.
    ReplicaSpill {
        /// The replica spilled or restored.
        replica: u64,
        /// Snapshot size, bytes.
        bytes: u64,
        /// Replicas resident in memory after this transition.
        resident: u64,
        /// `true` when the replica was *restored* from disk, `false`
        /// when it was parked.
        unspill: bool,
        /// Wall time to read and rebuild the replica (microseconds,
        /// amortized over its batch); 0 for spills.
        latency_us: u64,
        /// Spill-file size after this operation, bytes (the file's
        /// high-water mark with slot reuse).
        file_bytes: u64,
    },
}

impl Event {
    /// The event's stable snake_case kind label (the `"event"` field of
    /// its JSON rendering).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::MessageInjected { .. } => "message_injected",
            Event::SyncStarted { .. } => "sync_started",
            Event::SyncCandidatesSelected { .. } => "sync_candidates_selected",
            Event::SweepStarted { .. } => "sweep_started",
            Event::SyncBatchSent { .. } => "sync_batch_sent",
            Event::ItemTransmitted { .. } => "item_transmitted",
            Event::ItemDelivered { .. } => "item_delivered",
            Event::ItemRelayed { .. } => "item_relayed",
            Event::ItemEvicted { .. } => "item_evicted",
            Event::ItemExpired { .. } => "item_expired",
            Event::MessageDropped { .. } => "message_dropped",
            Event::MessageDelivered { .. } => "message_delivered",
            Event::EncounterCompleted { .. } => "encounter_completed",
            Event::KnowledgeMerged { .. } => "knowledge_merged",
            Event::PolicyDecision { .. } => "policy_decision",
            Event::SpanEnded { .. } => "span_ended",
            Event::TransportSync { .. } => "transport_sync",
            Event::DataPlaneReuse { .. } => "data_plane_reuse",
            Event::ReconDigest { .. } => "recon_digest",
            Event::WalAppend { .. } => "wal_append",
            Event::CheckpointWritten { .. } => "checkpoint_written",
            Event::StoreRecovered { .. } => "store_recovered",
            Event::StoreFault { .. } => "store_fault",
            Event::ShardHandoff { .. } => "shard_handoff",
            Event::NetSession { .. } => "net_session",
            Event::GossipRound { .. } => "gossip_round",
            Event::NetBackpressure { .. } => "net_backpressure",
            Event::NetPoll { .. } => "net_poll",
            Event::ReplicaSpill { .. } => "replica_spill",
        }
    }

    /// Renders the event as one line of JSON (no trailing newline). All
    /// field names are stable; see `crates/obs/README.md` for the schema.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"event\":\"");
        out.push_str(self.kind());
        out.push('"');
        match self {
            Event::MessageInjected {
                replica,
                origin,
                seq,
                src,
                dst,
                at_secs,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_str(&mut out, "src", src);
                push_str(&mut out, "dst", dst);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::SyncStarted {
                target,
                source,
                at_secs,
            } => {
                push_u64(&mut out, "target", *target);
                push_u64(&mut out, "source", *source);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::SyncCandidatesSelected {
                source,
                target,
                candidates,
                selected,
                memo_hits,
                scan_us,
                at_secs,
            } => {
                push_u64(&mut out, "source", *source);
                push_u64(&mut out, "target", *target);
                push_u64(&mut out, "candidates", *candidates);
                push_u64(&mut out, "selected", *selected);
                push_u64(&mut out, "memo_hits", *memo_hits);
                push_u64(&mut out, "scan_us", *scan_us);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::SweepStarted { jobs, workers } => {
                push_u64(&mut out, "jobs", *jobs);
                push_u64(&mut out, "workers", *workers);
            }
            Event::SyncBatchSent {
                source,
                target,
                entries,
                withheld,
                payload_bytes,
                at_secs,
            } => {
                push_u64(&mut out, "source", *source);
                push_u64(&mut out, "target", *target);
                push_u64(&mut out, "entries", *entries);
                push_u64(&mut out, "withheld", *withheld);
                push_u64(&mut out, "payload_bytes", *payload_bytes);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::ItemTransmitted {
                source,
                target,
                origin,
                seq,
                bytes,
                matched_filter,
                at_secs,
            } => {
                push_u64(&mut out, "source", *source);
                push_u64(&mut out, "target", *target);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_u64(&mut out, "bytes", *bytes);
                push_bool(&mut out, "matched_filter", *matched_filter);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::ItemDelivered {
                replica,
                source,
                origin,
                seq,
                at_secs,
            }
            | Event::ItemRelayed {
                replica,
                source,
                origin,
                seq,
                at_secs,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "source", *source);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::ItemEvicted {
                replica,
                origin,
                seq,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
            }
            Event::ItemExpired {
                replica,
                origin,
                seq,
                at_secs,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::MessageDropped {
                replica,
                origin,
                seq,
                reason,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_str(&mut out, "reason", reason.label());
            }
            Event::MessageDelivered {
                replica,
                origin,
                seq,
                delay_secs,
                at_secs,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_u64(&mut out, "delay", *delay_secs);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::EncounterCompleted {
                a,
                b,
                transmitted,
                delivered,
                duplicates,
                at_secs,
            } => {
                push_u64(&mut out, "a", *a);
                push_u64(&mut out, "b", *b);
                push_u64(&mut out, "transmitted", *transmitted);
                push_u64(&mut out, "delivered", *delivered);
                push_u64(&mut out, "duplicates", *duplicates);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::KnowledgeMerged {
                replica,
                peer,
                batch_entries,
                knowledge_replicas,
                knowledge_exceptions,
                at_secs,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_u64(&mut out, "batch_entries", *batch_entries);
                push_u64(&mut out, "knowledge_replicas", *knowledge_replicas);
                push_u64(&mut out, "knowledge_exceptions", *knowledge_exceptions);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::PolicyDecision {
                replica,
                peer,
                policy,
                kind,
                origin,
                seq,
                cost,
                at_secs,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_str(&mut out, "policy", policy);
                push_str(&mut out, "kind", kind.label());
                push_u64(&mut out, "origin", *origin);
                push_u64(&mut out, "seq", *seq);
                push_f64(&mut out, "cost", *cost);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::SpanEnded {
                name,
                replica,
                peer,
                wall_micros,
            } => {
                push_str(&mut out, "name", name);
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_u64(&mut out, "wall_micros", *wall_micros);
            }
            Event::TransportSync {
                replica,
                peer,
                served,
                delivered,
                frame_bytes,
                ok,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_u64(&mut out, "served", *served);
                push_u64(&mut out, "delivered", *delivered);
                push_u64(&mut out, "frame_bytes", *frame_bytes);
                push_bool(&mut out, "ok", *ok);
            }
            Event::DataPlaneReuse {
                replica,
                peer,
                scratch_reuses,
                bytes_encoded,
                pool_hits,
                payload_shares,
                bytes_decoded,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_u64(&mut out, "scratch_reuses", *scratch_reuses);
                push_u64(&mut out, "bytes_encoded", *bytes_encoded);
                push_u64(&mut out, "pool_hits", *pool_hits);
                push_u64(&mut out, "payload_shares", *payload_shares);
                push_u64(&mut out, "bytes_decoded", *bytes_decoded);
            }
            Event::ReconDigest {
                replica,
                peer,
                kind,
                digest_bytes,
                full_bytes,
                fallback_rounds,
                false_positives,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_str(&mut out, "kind", kind);
                push_u64(&mut out, "digest_bytes", *digest_bytes);
                push_u64(&mut out, "full_bytes", *full_bytes);
                push_u64(&mut out, "fallback_rounds", *fallback_rounds);
                push_u64(&mut out, "false_positives", *false_positives);
            }
            Event::WalAppend {
                bytes,
                fsync,
                wal_bytes,
            } => {
                push_u64(&mut out, "bytes", *bytes);
                push_bool(&mut out, "fsync", *fsync);
                push_u64(&mut out, "wal_bytes", *wal_bytes);
            }
            Event::CheckpointWritten {
                seq,
                entries,
                bytes,
                wall_micros,
            } => {
                push_u64(&mut out, "seq", *seq);
                push_u64(&mut out, "entries", *entries);
                push_u64(&mut out, "bytes", *bytes);
                push_u64(&mut out, "wall_micros", *wall_micros);
            }
            Event::StoreRecovered {
                checkpoint_seq,
                wal_records,
                truncated_bytes,
                wall_micros,
            } => {
                push_u64(&mut out, "checkpoint_seq", *checkpoint_seq);
                push_u64(&mut out, "wal_records", *wal_records);
                push_u64(&mut out, "truncated_bytes", *truncated_bytes);
                push_u64(&mut out, "wall_micros", *wall_micros);
            }
            Event::StoreFault { op, detail } => {
                push_str(&mut out, "op", op);
                push_str(&mut out, "detail", detail);
            }
            Event::ShardHandoff {
                a,
                b,
                from_shard,
                to_shard,
                at_secs,
            } => {
                push_u64(&mut out, "a", *a);
                push_u64(&mut out, "b", *b);
                push_u64(&mut out, "from_shard", *from_shard);
                push_u64(&mut out, "to_shard", *to_shard);
                push_u64(&mut out, "at", *at_secs);
            }
            Event::NetSession {
                replica,
                peer,
                inbound,
                reused,
                ok,
                wall_micros,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_bool(&mut out, "inbound", *inbound);
                push_bool(&mut out, "reused", *reused);
                push_bool(&mut out, "ok", *ok);
                push_u64(&mut out, "wall_micros", *wall_micros);
            }
            Event::GossipRound {
                replica,
                fanout,
                alive,
                suspect,
                learned,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "fanout", *fanout);
                push_u64(&mut out, "alive", *alive);
                push_u64(&mut out, "suspect", *suspect);
                push_u64(&mut out, "learned", *learned);
            }
            Event::NetBackpressure {
                replica,
                peer,
                queued_bytes,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "peer", *peer);
                push_u64(&mut out, "queued_bytes", *queued_bytes);
            }
            Event::NetPoll {
                replica,
                backend,
                syscalls,
                wakeups,
                woken,
                wakeup_latency_us,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_str(&mut out, "backend", backend);
                push_u64(&mut out, "syscalls", *syscalls);
                push_u64(&mut out, "wakeups", *wakeups);
                push_u64(&mut out, "woken", *woken);
                push_u64(&mut out, "wakeup_latency_us", *wakeup_latency_us);
            }
            Event::ReplicaSpill {
                replica,
                bytes,
                resident,
                unspill,
                latency_us,
                file_bytes,
            } => {
                push_u64(&mut out, "replica", *replica);
                push_u64(&mut out, "bytes", *bytes);
                push_u64(&mut out, "resident", *resident);
                push_bool(&mut out, "unspill", *unspill);
                push_u64(&mut out, "latency_us", *latency_us);
                push_u64(&mut out, "file_bytes", *file_bytes);
            }
        }
        out.push('}');
        out
    }
}

fn push_u64(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_bool(out: &mut String, key: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

fn push_f64(out: &mut String, key: &str, value: f64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    if value.is_finite() {
        out.push_str(&format!("{value}"));
    } else {
        // JSON has no inf/nan literals; fall back to a string.
        out.push_str(&format!("\"{value}\""));
    }
}

fn push_str(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_kind_and_fields() {
        let e = Event::ItemTransmitted {
            source: 1,
            target: 2,
            origin: 1,
            seq: 7,
            bytes: 42,
            matched_filter: true,
            at_secs: 3600,
        };
        let json = e.to_json();
        assert!(json.starts_with("{\"event\":\"item_transmitted\""));
        assert!(json.contains("\"bytes\":42"));
        assert!(json.contains("\"matched_filter\":true"));
        assert!(json.ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::MessageInjected {
            replica: 1,
            origin: 1,
            seq: 1,
            src: "a\"b\\c".to_string(),
            dst: "line\nbreak".to_string(),
            at_secs: 0,
        };
        let json = e.to_json();
        assert!(json.contains(r#""src":"a\"b\\c""#));
        assert!(json.contains(r#""dst":"line\nbreak""#));
    }

    #[test]
    fn non_finite_costs_become_strings() {
        let e = Event::PolicyDecision {
            replica: 1,
            peer: 2,
            policy: "maxprop",
            kind: DecisionKind::Forward,
            origin: 1,
            seq: 1,
            cost: f64::INFINITY,
            at_secs: 0,
        };
        assert!(e.to_json().contains("\"cost\":\"inf\""));
    }

    #[test]
    fn every_variant_kind_is_unique() {
        let kinds = [
            "message_injected",
            "sync_started",
            "sync_candidates_selected",
            "sweep_started",
            "sync_batch_sent",
            "item_transmitted",
            "item_delivered",
            "item_relayed",
            "item_evicted",
            "item_expired",
            "message_dropped",
            "message_delivered",
            "encounter_completed",
            "knowledge_merged",
            "policy_decision",
            "span_ended",
            "transport_sync",
            "data_plane_reuse",
            "recon_digest",
            "wal_append",
            "checkpoint_written",
            "store_recovered",
            "store_fault",
            "shard_handoff",
            "net_session",
            "gossip_round",
            "net_backpressure",
            "replica_spill",
        ];
        let set: std::collections::BTreeSet<_> = kinds.iter().collect();
        assert_eq!(set.len(), kinds.len());
    }
}
