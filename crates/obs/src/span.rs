//! Wall-clock timing that reports as [`Event::SpanEnded`].

use crate::{Event, Obs};
use std::time::Instant;

/// Times a region of code and emits one [`Event::SpanEnded`] when
/// finished (explicitly via [`Span::finish`], or on drop).
///
/// On a disabled [`Obs`] handle the span is inert: no clock is read and
/// nothing is emitted.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    name: &'static str,
    replica: u64,
    peer: u64,
    started: Option<Instant>,
}

impl Span {
    /// Starts a span. `peer` may be 0 when unknown.
    pub fn start(obs: &Obs, name: &'static str, replica: u64, peer: u64) -> Self {
        Span {
            started: if obs.enabled() {
                Some(Instant::now())
            } else {
                None
            },
            obs: obs.clone(),
            name,
            replica,
            peer,
        }
    }

    /// Ends the span now, emitting its duration.
    pub fn finish(mut self) {
        self.emit_end();
    }

    fn emit_end(&mut self) {
        if let Some(started) = self.started.take() {
            let wall_micros = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.obs.emit(|| Event::SpanEnded {
                name: self.name,
                replica: self.replica,
                peer: self.peer,
                wall_micros,
            });
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;
    use std::sync::Arc;

    #[test]
    fn span_emits_once_on_finish() {
        let sink = Arc::new(MemorySink::unbounded());
        let obs = Obs::new(sink.clone());
        let span = Span::start(&obs, "encounter", 1, 2);
        span.finish();
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match &events[0] {
            Event::SpanEnded {
                name,
                replica,
                peer,
                ..
            } => {
                assert_eq!(*name, "encounter");
                assert_eq!(*replica, 1);
                assert_eq!(*peer, 2);
            }
            other => panic!("unexpected event: {other:?}"),
        }
    }

    #[test]
    fn span_emits_on_drop_and_is_inert_when_disabled() {
        let sink = Arc::new(MemorySink::unbounded());
        let obs = Obs::new(sink.clone());
        {
            let _span = Span::start(&obs, "scope", 3, 0);
        }
        assert_eq!(sink.len(), 1);

        let disabled = Obs::none();
        {
            let _span = Span::start(&disabled, "scope", 3, 0);
        }
        // Nothing to assert against — just must not panic or emit.
    }
}
