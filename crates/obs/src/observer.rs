//! The consumer trait and the cheap handle instrumented code holds.

use crate::Event;
use std::fmt;
use std::sync::Arc;

/// A consumer of [`Event`]s.
///
/// Implementations must be cheap and non-blocking where possible: they are
/// called synchronously from hot paths (batch construction, store
/// eviction). They must also be thread-safe — the transport layer emits
/// from listener and anti-entropy threads concurrently.
pub trait Observer: Send + Sync {
    /// Called once per emitted event.
    fn on_event(&self, event: &Event);
}

/// The handle instrumented code holds. Cloning is one `Arc` clone; the
/// default ([`Obs::none`]) is disabled and costs a single branch per
/// emission site.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<dyn Observer>>);

impl Obs {
    /// A disabled handle: [`Obs::emit`] never constructs the event.
    pub fn none() -> Self {
        Obs(None)
    }

    /// A handle that forwards every event to `observer`.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        Obs(Some(observer))
    }

    /// Whether an observer is attached.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one event. The closure runs only when an observer is
    /// attached, so event construction (and any field computation) is
    /// free on the disabled path.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(observer) = &self.0 {
            observer.on_event(&f());
        }
    }

    /// Forwards an already-constructed event by reference — for relays
    /// (buffers, fan-in sinks) that hold a `&Event` and would otherwise
    /// have to clone it just to satisfy [`Obs::emit`]'s closure.
    #[inline]
    pub fn forward(&self, event: &Event) {
        if let Some(observer) = &self.0 {
            observer.on_event(event);
        }
    }
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Obs")
            .field(&if self.0.is_some() { "enabled" } else { "none" })
            .finish()
    }
}

/// Broadcasts every event to several observers in order.
pub struct Fanout(Vec<Arc<dyn Observer>>);

impl Fanout {
    /// Builds a fanout over `observers`.
    pub fn new(observers: Vec<Arc<dyn Observer>>) -> Self {
        Fanout(observers)
    }
}

impl Observer for Fanout {
    fn on_event(&self, event: &Event) {
        for observer in &self.0 {
            observer.on_event(event);
        }
    }
}

impl fmt::Debug for Fanout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Fanout").field(&self.0.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySink;

    #[test]
    fn disabled_handle_skips_construction() {
        let handle = Obs::none();
        assert!(!handle.enabled());
        handle.emit(|| unreachable!("closure must not run"));
    }

    #[test]
    fn fanout_reaches_every_observer() {
        let a = Arc::new(MemorySink::unbounded());
        let b = Arc::new(MemorySink::unbounded());
        let handle = Obs::new(Arc::new(Fanout::new(vec![
            a.clone() as Arc<dyn Observer>,
            b.clone() as Arc<dyn Observer>,
        ])));
        assert!(handle.enabled());
        handle.emit(|| Event::ItemEvicted {
            replica: 1,
            origin: 2,
            seq: 3,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
