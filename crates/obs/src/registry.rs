//! Sharded counters and log-scale histograms fed by the event stream.

use crate::{Event, Observer};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

const SHARDS: usize = 8;
const BUCKETS: usize = 64;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` covers values whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, ...). Exact count, sum,
/// min, and max are tracked alongside, so means are exact and quantiles
/// are bucket-resolution estimates. Merging two histograms is
/// commutative and associative.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Order-independent: merging a set of
    /// histograms yields the same result regardless of merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-resolution quantile estimate (`q` in 0..=1): the upper bound
    /// of the bucket containing the `q`-th sample. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i, clamped to the observed max.
                let hi = if i == 0 { 0 } else { (1u64 << i) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min())
            .field("max", &self.max)
            .finish()
    }
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, u64>,
}

/// Aggregates the event stream into named counters and histograms.
///
/// Lock contention is kept low by sharding: each thread is assigned one of
/// eight shards round-robin on first use, and a [`RegistrySnapshot`]
/// merges all shards on demand. Because counter addition and
/// [`Histogram::merge`] are commutative, the merged view is independent
/// of which thread recorded what.
pub struct Registry {
    shards: Vec<Mutex<Shard>>,
    next_shard: AtomicUsize,
}

thread_local! {
    static MY_SHARD: Cell<Option<usize>> = const { Cell::new(None) };
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            next_shard: AtomicUsize::new(0),
        }
    }

    fn shard(&self) -> &Mutex<Shard> {
        let idx = MY_SHARD.with(|cell| match cell.get() {
            Some(idx) => idx,
            None => {
                let idx = self.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
                cell.set(Some(idx));
                idx
            }
        });
        &self.shards[idx]
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &str, delta: u64) {
        let mut shard = self.shard().lock();
        *shard.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Records one sample into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut shard = self.shard().lock();
        shard
            .histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Raises the named high-water gauge to at least `value`. Gauges
    /// merge by maximum (commutative, like counters by sum), so peaks
    /// recorded from any thread survive into the snapshot.
    pub fn gauge_max(&self, name: &str, value: u64) {
        let mut shard = self.shard().lock();
        let slot = shard.gauges.entry(name.to_string()).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Merges all shards into one consistent snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut gauges: BTreeMap<String, u64> = BTreeMap::new();
        for shard in &self.shards {
            let shard = shard.lock();
            for (name, value) in &shard.counters {
                *counters.entry(name.clone()).or_insert(0) += value;
            }
            for (name, hist) in &shard.histograms {
                histograms.entry(name.clone()).or_default().merge(hist);
            }
            for (name, value) in &shard.gauges {
                let slot = gauges.entry(name.clone()).or_insert(0);
                *slot = (*slot).max(*value);
            }
        }
        RegistrySnapshot {
            counters,
            histograms,
            gauges,
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl Observer for Registry {
    fn on_event(&self, event: &Event) {
        match event {
            Event::MessageInjected { .. } => self.add("messages.injected", 1),
            Event::SyncStarted { .. } => self.add("sync.sessions", 1),
            Event::SyncCandidatesSelected {
                candidates,
                memo_hits,
                scan_us,
                ..
            } => {
                self.add("sync.candidates", *candidates);
                self.add("sync.index_hits", *memo_hits);
                self.observe("sync.candidate_scan_us", *scan_us);
            }
            Event::SweepStarted { jobs, workers } => {
                self.add("emu.sweeps", 1);
                self.add("emu.sweep.jobs", *jobs);
                self.observe("emu.sweep_workers", *workers);
            }
            Event::SyncBatchSent {
                entries,
                withheld,
                payload_bytes,
                ..
            } => {
                self.add("sync.batches", 1);
                self.add("sync.entries", *entries);
                self.add("sync.withheld", *withheld);
                self.add("sync.payload_bytes", *payload_bytes);
                self.observe("sync.batch_items", *entries);
                self.observe("sync.batch_bytes", *payload_bytes);
            }
            Event::ItemTransmitted { bytes, .. } => {
                self.add("items.transmitted", 1);
                self.add("items.transmitted_bytes", *bytes);
            }
            Event::ItemDelivered { .. } => self.add("items.delivered", 1),
            Event::ItemRelayed { .. } => self.add("items.relayed", 1),
            Event::ItemEvicted { .. } => self.add("items.evicted", 1),
            Event::ItemExpired { .. } => self.add("items.expired", 1),
            Event::MessageDropped { reason, .. } => {
                self.add(&format!("drops.{}", reason.label()), 1);
            }
            Event::MessageDelivered { delay_secs, .. } => {
                self.add("messages.delivered", 1);
                self.observe("delivery.delay_secs", *delay_secs);
            }
            Event::EncounterCompleted {
                transmitted,
                duplicates,
                ..
            } => {
                self.add("encounters", 1);
                self.add("encounters.duplicates", *duplicates);
                self.observe("encounter.transmitted", *transmitted);
            }
            Event::KnowledgeMerged {
                knowledge_replicas,
                knowledge_exceptions,
                ..
            } => {
                self.add("knowledge.merges", 1);
                self.observe(
                    "knowledge.entries",
                    knowledge_replicas + knowledge_exceptions,
                );
            }
            Event::PolicyDecision { policy, kind, .. } => {
                self.add(&format!("policy.{}.{}", policy, kind.label()), 1);
            }
            Event::SpanEnded {
                name, wall_micros, ..
            } => {
                self.observe(&format!("span.{name}.micros"), *wall_micros);
            }
            Event::TransportSync {
                served,
                frame_bytes,
                ok,
                ..
            } => {
                self.add(
                    if *ok {
                        "transport.sync_ok"
                    } else {
                        "transport.sync_failed"
                    },
                    1,
                );
                self.add("transport.served", *served);
                self.observe("transport.frame_bytes", *frame_bytes);
            }
            Event::DataPlaneReuse {
                scratch_reuses,
                bytes_encoded,
                pool_hits,
                payload_shares,
                bytes_decoded,
                ..
            } => {
                self.add("wire.scratch_reuses", *scratch_reuses);
                self.add("wire.bytes_encoded", *bytes_encoded);
                self.add("transport.pool_hits", *pool_hits);
                self.add("item.payload_shares", *payload_shares);
                self.add("wire.bytes_decoded", *bytes_decoded);
            }
            Event::ReconDigest {
                kind,
                digest_bytes,
                full_bytes,
                fallback_rounds,
                false_positives,
                ..
            } => {
                self.add(&format!("recon.summary.{kind}"), 1);
                self.add("recon.digest_bytes", *digest_bytes);
                self.add("recon.full_bytes", *full_bytes);
                self.add(
                    "recon.bytes_saved",
                    full_bytes.saturating_sub(*digest_bytes),
                );
                self.add("recon.fallback_rounds", *fallback_rounds);
                self.add("recon.false_positives", *false_positives);
            }
            Event::WalAppend { bytes, fsync, .. } => {
                self.add("store.wal.appends", 1);
                self.add("store.wal.bytes", *bytes);
                if *fsync {
                    self.add("store.fsyncs", 1);
                }
            }
            Event::CheckpointWritten {
                entries,
                bytes,
                wall_micros,
                ..
            } => {
                self.add("store.checkpoints", 1);
                self.add("store.checkpoint.entries", *entries);
                self.add("store.checkpoint.bytes", *bytes);
                self.observe("store.checkpoint.micros", *wall_micros);
            }
            Event::StoreRecovered {
                wal_records,
                truncated_bytes,
                wall_micros,
                ..
            } => {
                self.add("store.recoveries", 1);
                self.add("store.replayed.records", *wal_records);
                self.add("store.truncated.bytes", *truncated_bytes);
                self.observe("store.recovery.micros", *wall_micros);
            }
            Event::StoreFault { op, .. } => {
                self.add(&format!("store.faults.{op}"), 1);
            }
            Event::ShardHandoff { .. } => self.add("shard.handoffs", 1),
            Event::NetSession {
                reused,
                ok,
                wall_micros,
                ..
            } => {
                self.add("net.sessions", 1);
                if !*ok {
                    self.add("net.sessions_failed", 1);
                }
                if *reused {
                    self.add("net.conn_reuses", 1);
                }
                self.observe("net.session_micros", *wall_micros);
            }
            Event::GossipRound {
                alive,
                suspect,
                learned,
                ..
            } => {
                self.add("net.gossip.rounds", 1);
                self.add("net.gossip.learned", *learned);
                self.add("net.gossip.suspects", *suspect);
                self.observe("net.membership", *alive);
            }
            Event::NetBackpressure { queued_bytes, .. } => {
                self.add("net.backpressure_stalls", 1);
                self.observe("net.write_queue_bytes", *queued_bytes);
            }
            Event::NetPoll {
                syscalls,
                wakeups,
                woken,
                wakeup_latency_us,
                ..
            } => {
                self.add("net.syscalls", *syscalls);
                self.add("net.wakeups", *wakeups);
                if *woken > 0 {
                    self.observe("net.wakeup_latency_us", *wakeup_latency_us);
                }
            }
            Event::ReplicaSpill {
                bytes,
                resident,
                unspill,
                latency_us,
                file_bytes,
                ..
            } => {
                if *unspill {
                    self.add("shard.unspills", 1);
                    self.observe("emu.unspill_latency_us", *latency_us);
                } else {
                    self.add("shard.spills", 1);
                    self.add("shard.evictions", 1);
                    self.add("shard.spill_bytes", *bytes);
                }
                self.observe("shard.resident", *resident);
                self.gauge_max("shard.resident_peak", *resident);
                self.gauge_max("shard.spill_file_bytes", *file_bytes);
            }
        }
    }
}

/// A merged, point-in-time view of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    gauges: BTreeMap<String, u64>,
}

impl RegistrySnapshot {
    /// The named counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The named high-water gauge's value (0 when never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, name-sorted.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// All high-water gauges, name-sorted.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Renders the snapshot as CSV: one `counter,<name>,<value>` line per
    /// counter, one `gauge,<name>,<value>` line per high-water gauge,
    /// then one
    /// `histogram,<name>,<count>,<sum>,<min>,<mean>,<p50>,<p99>,<max>`
    /// line per histogram.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("counter,{name},{value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("gauge,{name},{value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "histogram,{name},{},{},{},{:.2},{},{},{}\n",
                h.count(),
                h.sum(),
                h.min(),
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DropReason;

    #[test]
    fn histogram_tracks_exact_moments() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let mut parts = Vec::new();
        for chunk in [[1u64, 5, 9], [2, 1000, 0], [7, 7, 7]] {
            let mut h = Histogram::new();
            for v in chunk {
                h.observe(v);
            }
            parts.push(h);
        }
        let mut forward = Histogram::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Histogram::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.count(), 9);
    }

    #[test]
    fn quantile_brackets_the_samples() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        assert!((32..=63).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_aggregates_events() {
        let r = Registry::new();
        r.on_event(&Event::ItemTransmitted {
            source: 1,
            target: 2,
            origin: 1,
            seq: 1,
            bytes: 10,
            matched_filter: true,
            at_secs: 0,
        });
        r.on_event(&Event::MessageDropped {
            replica: 2,
            origin: 1,
            seq: 1,
            reason: DropReason::Evicted,
        });
        r.on_event(&Event::MessageDelivered {
            replica: 2,
            origin: 1,
            seq: 1,
            delay_secs: 120,
            at_secs: 500,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("items.transmitted"), 1);
        assert_eq!(snap.counter("items.transmitted_bytes"), 10);
        assert_eq!(snap.counter("drops.evicted"), 1);
        assert_eq!(snap.counter("messages.delivered"), 1);
        let delay = snap.histogram("delivery.delay_secs").unwrap();
        assert_eq!(delay.count(), 1);
        assert_eq!(delay.sum(), 120);
        let csv = snap.to_csv();
        assert!(csv.contains("counter,drops.evicted,1"));
        assert!(csv.contains("histogram,delivery.delay_secs,1,120,"));
    }

    #[test]
    fn data_plane_reuse_feeds_five_counters() {
        let r = Registry::new();
        r.on_event(&Event::DataPlaneReuse {
            replica: 1,
            peer: 2,
            scratch_reuses: 3,
            bytes_encoded: 512,
            pool_hits: 4,
            payload_shares: 5,
            bytes_decoded: 640,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("wire.scratch_reuses"), 3);
        assert_eq!(snap.counter("wire.bytes_encoded"), 512);
        assert_eq!(snap.counter("transport.pool_hits"), 4);
        assert_eq!(snap.counter("item.payload_shares"), 5);
        assert_eq!(snap.counter("wire.bytes_decoded"), 640);
    }

    #[test]
    fn recon_digest_feeds_recon_counters() {
        let r = Registry::new();
        r.on_event(&Event::ReconDigest {
            replica: 1,
            peer: 2,
            kind: "delta",
            digest_bytes: 100,
            full_bytes: 900,
            fallback_rounds: 1,
            false_positives: 3,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("recon.summary.delta"), 1);
        assert_eq!(snap.counter("recon.digest_bytes"), 100);
        assert_eq!(snap.counter("recon.full_bytes"), 900);
        assert_eq!(snap.counter("recon.bytes_saved"), 800);
        assert_eq!(snap.counter("recon.fallback_rounds"), 1);
        assert_eq!(snap.counter("recon.false_positives"), 3);
    }

    #[test]
    fn shard_events_feed_shard_counters() {
        let r = Registry::new();
        r.on_event(&Event::ShardHandoff {
            a: 1,
            b: 2,
            from_shard: 0,
            to_shard: 1,
            at_secs: 0,
        });
        r.on_event(&Event::ReplicaSpill {
            replica: 3,
            bytes: 256,
            resident: 10,
            unspill: false,
            latency_us: 0,
            file_bytes: 4096,
        });
        r.on_event(&Event::ReplicaSpill {
            replica: 3,
            bytes: 256,
            resident: 11,
            unspill: true,
            latency_us: 85,
            file_bytes: 4096,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("shard.handoffs"), 1);
        assert_eq!(snap.counter("shard.spills"), 1);
        assert_eq!(snap.counter("shard.evictions"), 1);
        assert_eq!(snap.counter("shard.spill_bytes"), 256);
        assert_eq!(snap.counter("shard.unspills"), 1);
        assert_eq!(snap.histogram("shard.resident").unwrap().count(), 2);
        assert_eq!(snap.gauge("shard.resident_peak"), 11);
        assert_eq!(snap.gauge("shard.spill_file_bytes"), 4096);
        let latency = snap.histogram("emu.unspill_latency_us").unwrap();
        assert_eq!(latency.count(), 1);
        assert_eq!(latency.sum(), 85);
        let csv = snap.to_csv();
        assert!(csv.contains("gauge,shard.resident_peak,11"));
    }

    #[test]
    fn net_events_feed_net_counters() {
        let r = Registry::new();
        r.on_event(&Event::NetSession {
            replica: 1,
            peer: 2,
            inbound: false,
            reused: true,
            ok: true,
            wall_micros: 1500,
        });
        r.on_event(&Event::NetSession {
            replica: 1,
            peer: 0,
            inbound: true,
            reused: false,
            ok: false,
            wall_micros: 90,
        });
        r.on_event(&Event::GossipRound {
            replica: 1,
            fanout: 3,
            alive: 12,
            suspect: 1,
            learned: 4,
        });
        r.on_event(&Event::NetBackpressure {
            replica: 1,
            peer: 2,
            queued_bytes: 1 << 20,
        });
        r.on_event(&Event::NetPoll {
            replica: 1,
            backend: "epoll",
            syscalls: 42,
            wakeups: 3,
            woken: 5,
            wakeup_latency_us: 120,
        });
        r.on_event(&Event::NetPoll {
            replica: 1,
            backend: "epoll",
            syscalls: 8,
            wakeups: 0,
            woken: 0,
            wakeup_latency_us: 0,
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("net.sessions"), 2);
        assert_eq!(snap.counter("net.sessions_failed"), 1);
        assert_eq!(snap.counter("net.conn_reuses"), 1);
        assert_eq!(snap.counter("net.gossip.rounds"), 1);
        assert_eq!(snap.counter("net.gossip.learned"), 4);
        assert_eq!(snap.counter("net.gossip.suspects"), 1);
        assert_eq!(snap.counter("net.backpressure_stalls"), 1);
        assert_eq!(snap.counter("net.syscalls"), 50);
        assert_eq!(snap.counter("net.wakeups"), 3);
        // The zero-woken batch must not pollute the latency histogram.
        assert_eq!(snap.histogram("net.wakeup_latency_us").unwrap().count(), 1);
        assert_eq!(snap.histogram("net.session_micros").unwrap().count(), 2);
        assert_eq!(snap.histogram("net.membership").unwrap().max(), 12);
        assert_eq!(
            snap.histogram("net.write_queue_bytes").unwrap().sum(),
            1 << 20
        );
    }

    #[test]
    fn concurrent_threads_land_in_one_consistent_snapshot() {
        let r = std::sync::Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..16 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..100u64 {
                        r.add("hits", 1);
                        r.observe("vals", i);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("hits"), 1600);
        assert_eq!(snap.histogram("vals").unwrap().count(), 1600);
    }
}
