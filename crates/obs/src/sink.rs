//! Event sinks: a bounded in-memory ring buffer and a JSONL stream writer.

use crate::{Event, Observer};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Retains events in memory, optionally bounded: when full, the oldest
/// event is dropped. Intended for tests and short diagnostic captures.
pub struct MemorySink {
    capacity: usize,
    events: Mutex<VecDeque<Event>>,
}

impl MemorySink {
    /// A sink retaining at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            capacity,
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// A sink with no retention bound.
    pub fn unbounded() -> Self {
        Self::new(usize::MAX)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().iter().cloned().collect()
    }

    /// Drains the retained events, oldest first, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        self.events.lock().drain(..).collect()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl Observer for MemorySink {
    fn on_event(&self, event: &Event) {
        let mut events = self.events.lock();
        if events.len() >= self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

impl fmt::Debug for MemorySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySink")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Streams every event as one JSON line to a writer. Writes are
/// best-effort: an I/O error disables the sink rather than panicking a
/// hot path.
pub struct JsonlSink {
    writer: Mutex<Option<BufWriter<Box<dyn Write + Send>>>>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and streams events into it.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Streams events into an arbitrary writer.
    pub fn from_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            writer: Mutex::new(Some(BufWriter::new(writer))),
        }
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&self) -> io::Result<()> {
        match self.writer.lock().as_mut() {
            Some(w) => w.flush(),
            None => Ok(()),
        }
    }
}

impl Observer for JsonlSink {
    fn on_event(&self, event: &Event) {
        let mut guard = self.writer.lock();
        if let Some(w) = guard.as_mut() {
            let ok = w
                .write_all(event.to_json().as_bytes())
                .and_then(|_| w.write_all(b"\n"))
                .is_ok();
            if !ok {
                *guard = None;
            }
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Some(w) = self.writer.get_mut().as_mut() {
            let _ = w.flush();
        }
    }
}

impl fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("active", &self.writer.lock().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evicted(seq: u64) -> Event {
        Event::ItemEvicted {
            replica: 1,
            origin: 1,
            seq,
        }
    }

    #[test]
    fn memory_sink_drops_oldest_when_full() {
        let sink = MemorySink::new(2);
        for seq in 0..5 {
            sink.on_event(&evicted(seq));
        }
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], evicted(3));
        assert_eq!(events[1], evicted(4));
        sink.clear();
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        use parking_lot::Mutex as PlMutex;
        use std::sync::Arc;

        #[derive(Clone, Default)]
        struct Shared(Arc<PlMutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared::default();
        let sink = JsonlSink::from_writer(Box::new(shared.clone()));
        sink.on_event(&evicted(1));
        sink.on_event(&evicted(2));
        sink.flush().unwrap();
        let text = String::from_utf8(shared.0.lock().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"item_evicted\""));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }
}
