//! # obs — structured observability for the replication stack
//!
//! A dependency-light event layer the rest of the workspace reports into:
//!
//! * [`Event`] — one typed enum covering the whole stack, from store-level
//!   evictions up to transport sessions. Layers stay decoupled by using raw
//!   integer ids (replica ids, item ids) rather than the substrate's types.
//! * [`Observer`] / [`Obs`] — the consumer trait and the handle the
//!   instrumented code holds. A disabled handle costs one branch per
//!   emission site; event construction is inside a closure that never runs
//!   when no observer is attached.
//! * [`Registry`] — sharded counters and log-scale histograms aggregated
//!   from the event stream, with a CSV summary renderer.
//! * [`MemorySink`] / [`JsonlSink`] — a bounded in-memory ring buffer (for
//!   tests) and a line-delimited JSON stream writer (for offline
//!   analysis).
//! * [`Span`] — wall-clock timing that reports as a [`Event::SpanEnded`].
//!
//! ```
//! use obs::{Event, MemorySink, Obs};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(MemorySink::unbounded());
//! let handle = Obs::new(sink.clone());
//! handle.emit(|| Event::ItemEvicted { replica: 1, origin: 2, seq: 3 });
//! assert_eq!(sink.len(), 1);
//!
//! let disabled = Obs::none();
//! disabled.emit(|| unreachable!("never constructed"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod observer;
mod registry;
mod sink;
mod span;

pub use event::{DecisionKind, DropReason, Event};
pub use observer::{Fanout, Obs, Observer};
pub use registry::{Histogram, Registry, RegistrySnapshot};
pub use sink::{JsonlSink, MemorySink};
pub use span::Span;
