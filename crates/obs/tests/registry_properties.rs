//! Property tests: the registry's aggregation is a commutative monoid, so
//! the merged snapshot must not depend on which shard (thread) recorded
//! what, nor on the order samples arrived.

use proptest::prelude::*;

use obs::{Histogram, Registry, RegistrySnapshot};

/// One recorded operation: a counter increment or a histogram sample.
#[derive(Debug, Clone)]
enum Op {
    Add(usize, u64),
    Observe(usize, u64),
}

const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..NAMES.len(), 0u64..1_000_000).prop_map(|(n, v)| Op::Add(n, v)),
            (0usize..NAMES.len(), 0u64..1_000_000).prop_map(|(n, v)| Op::Observe(n, v)),
        ],
        1..64,
    )
}

fn apply(registry: &Registry, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Add(n, v) => registry.add(NAMES[n], v),
            Op::Observe(n, v) => registry.observe(NAMES[n], v),
        }
    }
}

fn snapshots_equal(a: &RegistrySnapshot, b: &RegistrySnapshot) -> bool {
    a.counters().collect::<Vec<_>>() == b.counters().collect::<Vec<_>>()
        && a.histograms().collect::<Vec<_>>() == b.histograms().collect::<Vec<_>>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Applying the same operations in reverse order yields an identical
    /// snapshot.
    #[test]
    fn snapshot_is_order_independent(ops in arb_ops()) {
        let forward = Registry::new();
        apply(&forward, &ops);
        let backward = Registry::new();
        let reversed: Vec<Op> = ops.iter().rev().cloned().collect();
        apply(&backward, &reversed);
        prop_assert!(snapshots_equal(&forward.snapshot(), &backward.snapshot()));
    }

    /// Splitting the operations across many threads (hence shards) yields
    /// the same snapshot as applying them on one thread.
    #[test]
    fn snapshot_is_shard_independent(ops in arb_ops(), parts in 2usize..6) {
        let serial = Registry::new();
        apply(&serial, &ops);

        let sharded = Registry::new();
        let chunk = ops.len().div_ceil(parts);
        std::thread::scope(|scope| {
            for piece in ops.chunks(chunk) {
                scope.spawn(|| apply(&sharded, piece));
            }
        });
        prop_assert!(snapshots_equal(&serial.snapshot(), &sharded.snapshot()));
    }

    /// Histogram merge is commutative and associative, and merging
    /// partitions of a sample set equals observing the whole set directly.
    #[test]
    fn histogram_merge_matches_direct_observation(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..64),
        split in 0usize..64,
    ) {
        let split = split % values.len();
        let (left, right) = values.split_at(split);

        let mut direct = Histogram::new();
        for &v in &values {
            direct.observe(v);
        }

        let mut a = Histogram::new();
        for &v in left {
            a.observe(v);
        }
        let mut b = Histogram::new();
        for &v in right {
            b.observe(v);
        }

        // a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        // b ⊕ a
        let mut ba = b.clone();
        ba.merge(&a);

        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&ab, &direct);
        prop_assert_eq!(ab.count(), values.len() as u64);
        prop_assert_eq!(ab.min(), values.iter().copied().min().unwrap());
        prop_assert_eq!(ab.max(), values.iter().copied().max().unwrap());
    }

    /// Quantiles always land within [min, max] of the observed samples.
    #[test]
    fn quantiles_stay_in_range(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..64),
        q in 0u32..=100,
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let quantile = h.quantile(f64::from(q) / 100.0);
        prop_assert!(quantile <= h.max());
    }
}
