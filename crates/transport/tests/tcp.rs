//! Integration tests: replication between real TCP peers on localhost.

use dtn::{DtnNode, PolicyKind};
use pfr::{ReplicaId, SimTime, SyncLimits};
use transport::Peer;

fn node(n: u64, addr: &str, kind: PolicyKind) -> DtnNode {
    DtnNode::new(ReplicaId::new(n), addr, kind)
}

#[test]
fn two_peers_exchange_messages_both_ways() {
    let a = Peer::start(node(1, "a", PolicyKind::Direct), "127.0.0.1:0").unwrap();
    let b = Peer::start(node(2, "b", PolicyKind::Direct), "127.0.0.1:0").unwrap();

    a.with_node(|n| n.send("b", b"a->b".to_vec(), SimTime::ZERO))
        .unwrap();
    b.with_node(|n| n.send("a", b"b->a".to_vec(), SimTime::ZERO))
        .unwrap();

    let report = a.sync_with(b.local_addr(), SimTime::from_secs(10)).unwrap();
    assert_eq!(report.peer, Some(ReplicaId::new(2)));
    assert_eq!(
        report.pulled.as_ref().unwrap().delivered,
        1,
        "a pulled its mail"
    );
    assert_eq!(report.served, 1, "a served b's mail");

    assert_eq!(a.with_node(|n| n.inbox().len()), 1);
    assert_eq!(b.with_node(|n| n.inbox().len()), 1);
}

#[test]
fn multi_hop_delivery_through_a_tcp_relay() {
    // a -> relay -> c, with epidemic forwarding over real sockets.
    let a = Peer::start(node(1, "a", PolicyKind::Epidemic), "127.0.0.1:0").unwrap();
    let relay = Peer::start(node(2, "relay", PolicyKind::Epidemic), "127.0.0.1:0").unwrap();
    let c = Peer::start(node(3, "c", PolicyKind::Epidemic), "127.0.0.1:0").unwrap();

    a.with_node(|n| n.send("c", b"via relay".to_vec(), SimTime::ZERO))
        .unwrap();

    // a never talks to c directly.
    a.sync_with(relay.local_addr(), SimTime::from_secs(1))
        .unwrap();
    assert_eq!(relay.with_node(|n| n.replica().relay_load()), 1);

    relay
        .sync_with(c.local_addr(), SimTime::from_secs(2))
        .unwrap();
    let inbox = c.with_node(|n| n.inbox());
    assert_eq!(inbox.len(), 1);
    assert_eq!(inbox[0].payload, b"via relay");
}

#[test]
fn repeated_syncs_are_idempotent() {
    let a = Peer::start(node(1, "a", PolicyKind::Direct), "127.0.0.1:0").unwrap();
    let b = Peer::start(node(2, "b", PolicyKind::Direct), "127.0.0.1:0").unwrap();
    a.with_node(|n| n.send("b", b"once".to_vec(), SimTime::ZERO))
        .unwrap();

    let first = a.sync_with(b.local_addr(), SimTime::from_secs(1)).unwrap();
    assert_eq!(first.served, 1);
    for t in 2..5 {
        let again = a.sync_with(b.local_addr(), SimTime::from_secs(t)).unwrap();
        assert_eq!(again.served, 0, "knowledge suppresses re-sends over TCP");
        assert_eq!(again.pulled.as_ref().unwrap().duplicates, 0);
    }
    assert_eq!(b.with_node(|n| n.inbox().len()), 1);
}

#[test]
fn bandwidth_limited_peer_serves_partial_batches() {
    let a = Peer::start(node(1, "a", PolicyKind::Direct), "127.0.0.1:0").unwrap();
    let b = Peer::start_with_limits(
        node(2, "b", PolicyKind::Direct),
        "127.0.0.1:0",
        SyncLimits::max_items(2),
    )
    .unwrap();
    for i in 0..5u8 {
        b.with_node(|n| n.send("a", vec![i], SimTime::ZERO))
            .unwrap();
    }
    // Each encounter moves at most 2 items; three encounters drain all 5.
    let mut got = 0;
    for t in 1..=3 {
        let report = a.sync_with(b.local_addr(), SimTime::from_secs(t)).unwrap();
        got += report.pulled.as_ref().unwrap().delivered;
    }
    assert_eq!(got, 5);
    assert_eq!(a.with_node(|n| n.inbox().len()), 5);
}

#[test]
fn concurrent_initiators_against_one_peer() {
    let hub = Peer::start(node(1, "hub", PolicyKind::Epidemic), "127.0.0.1:0").unwrap();
    let hub_addr = hub.local_addr();

    let mut handles = Vec::new();
    for i in 2..=6u64 {
        handles.push(std::thread::spawn(move || {
            let name = format!("n{i}");
            let peer = Peer::start(node(i, &name, PolicyKind::Epidemic), "127.0.0.1:0").unwrap();
            peer.with_node(|n| n.send("hub", vec![i as u8], SimTime::ZERO))
                .unwrap();
            peer.sync_with(hub_addr, SimTime::from_secs(i)).unwrap();
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(
        hub.with_node(|n| n.inbox().len()),
        5,
        "all five messages arrived"
    );
    // At-most-once held under concurrency.
    hub.with_node(|n| assert_eq!(n.replica().stats().duplicates_rejected, 0));
}

#[test]
fn stop_returns_the_node() {
    let peer = Peer::start(node(1, "a", PolicyKind::Direct), "127.0.0.1:0").unwrap();
    let node = peer.stop();
    assert_eq!(node.id(), ReplicaId::new(1));
}

#[test]
fn durable_peers_persist_after_every_session_without_being_asked() {
    // Both sides of a session open from data directories; the transport
    // persists them after the session, so neither ever calls persist().
    let dir_a = std::env::temp_dir().join(format!("tcp-durable-a-{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("tcp-durable-b-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    {
        let node_a = DtnNode::open(&dir_a, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
        let node_b = DtnNode::open(&dir_b, ReplicaId::new(2), "b", PolicyKind::Epidemic).unwrap();
        let a = Peer::start(node_a, "127.0.0.1:0").unwrap();
        let b = Peer::start(node_b, "127.0.0.1:0").unwrap();
        a.with_node(|n| n.send("b", b"survives".to_vec(), SimTime::ZERO))
            .unwrap();
        a.sync_with(b.local_addr(), SimTime::from_secs(5)).unwrap();
        assert_eq!(b.with_node(|n| n.inbox().len()), 1);
        // Drop both peers with no orderly persist — models kill -9 right
        // after the session's WAL appends hit disk.
    }

    let node_b = DtnNode::open(&dir_b, ReplicaId::new(2), "b", PolicyKind::Epidemic).unwrap();
    assert_eq!(node_b.inbox().len(), 1, "delivery survived the crash");
    assert_eq!(node_b.inbox()[0].payload, b"survives");
    assert_eq!(
        node_b.persisted_at(),
        Some(SimTime::from_secs(5)),
        "responder persisted under the initiator's clock"
    );

    // The restarted responder re-syncs: nothing moves, nothing duplicates.
    let node_a = DtnNode::open(&dir_a, ReplicaId::new(1), "a", PolicyKind::Epidemic).unwrap();
    let a = Peer::start(node_a, "127.0.0.1:0").unwrap();
    let b = Peer::start(node_b, "127.0.0.1:0").unwrap();
    let report = a.sync_with(b.local_addr(), SimTime::from_secs(6)).unwrap();
    assert_eq!(report.served, 0, "knowledge survived on both sides");
    assert_eq!(report.pulled.as_ref().unwrap().duplicates, 0);
    assert_eq!(b.with_node(|n| n.inbox().len()), 1);

    drop((a, b));
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

#[test]
fn different_policies_interoperate() {
    // A MaxProp node syncing with a Direct node: routing state is opaque
    // and simply ignored by the other side.
    let a = Peer::start(node(1, "a", PolicyKind::MaxProp), "127.0.0.1:0").unwrap();
    let b = Peer::start(node(2, "b", PolicyKind::Direct), "127.0.0.1:0").unwrap();
    a.with_node(|n| n.send("b", b"x".to_vec(), SimTime::ZERO))
        .unwrap();
    let report = a.sync_with(b.local_addr(), SimTime::from_secs(1)).unwrap();
    assert_eq!(report.served, 1);
    assert_eq!(b.with_node(|n| n.inbox().len()), 1);
}
