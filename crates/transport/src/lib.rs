//! # transport — replication over real sockets
//!
//! The paper's emulation drives replicas directly; this crate closes the
//! loop to a deployable system: a hand-rolled compact wire format (in
//! [`pfr::wire`]), length-prefixed framing ([`frame`]), a two-direction
//! sync session protocol ([`protocol`]) mirroring the paper's
//! two-syncs-per-encounter convention, and a [`Peer`] that listens on TCP
//! and exchanges items with remote peers — so two OS processes replicate
//! for real.
//!
//! ```no_run
//! use dtn::{DtnNode, PolicyKind};
//! use pfr::{ReplicaId, SimTime};
//! use transport::Peer;
//!
//! let a = Peer::start(DtnNode::new(ReplicaId::new(1), "a", PolicyKind::MaxProp),
//!                     "127.0.0.1:0")?;
//! let b = Peer::start(DtnNode::new(ReplicaId::new(2), "b", PolicyKind::MaxProp),
//!                     "127.0.0.1:0")?;
//! a.with_node(|n| n.send("b", b"hello".to_vec(), SimTime::ZERO)).unwrap();
//! a.sync_with(b.local_addr(), SimTime::from_secs(1))?;
//! # Ok::<(), transport::TransportError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conn;
pub mod frame;
pub mod protocol;

mod mesh;
mod peer;

pub use conn::{Connection, TcpConnection};
pub use mesh::{Mesh, MeshConfig};
pub use peer::{DialConfig, Peer, SessionReport, TransportError};
pub use protocol::SessionOutcome;
