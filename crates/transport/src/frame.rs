//! Length-prefixed message framing for the sync protocol.
//!
//! Every protocol message travels as one frame:
//!
//! ```text
//! +----------+----------+----------------+--------------+
//! | magic(2) | type(1)  | length(4, LE)  | crc32(4, LE) |  header, 11 bytes
//! +----------+----------+----------------+--------------+
//! | payload (length bytes, wire-encoded)                |
//! +-----------------------------------------------------+
//! ```
//!
//! The magic bytes detect protocol mismatches immediately; the length
//! field is bounded to keep a malicious peer from forcing huge
//! allocations; the CRC-32 (computed over the type byte, the length
//! field, and the payload) turns bit corruption anywhere past the magic
//! into a typed [`FrameError::BadChecksum`] instead of silently
//! delivering a damaged item — DTN links are exactly where that happens.

use std::fmt;
use std::io::{Read, Write};

/// Frame type tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// A [`pfr::sync::SyncRequest`] from target to source.
    SyncRequest = 1,
    /// A [`pfr::sync::SyncBatch`] from source to target.
    SyncBatch = 2,
    /// A terse acknowledgement closing one sync session.
    SyncDone = 3,
    /// Peer identification exchanged on connect.
    Hello = 4,
    /// A [`pfr::digest::DigestRequest`] from target to source: the
    /// digest-mode stand-in for a [`FrameType::SyncRequest`].
    SyncDigest = 5,
    /// A [`pfr::digest::VersionQuery`] from source to target: the exact
    /// membership round confirming a Bloom summary's possible hits.
    RangeRequest = 6,
    /// A [`pfr::digest::VersionAnswer`] from target to source, answering
    /// a [`FrameType::RangeRequest`].
    RangeResponse = 7,
    /// The source could not resolve a digest (lost snapshot, corrupt
    /// frame): the target must retransmit a plain full
    /// [`FrameType::SyncRequest`].
    ReconResync = 8,
    /// A gossip membership exchange: one node's view of the mesh, sent
    /// either unsolicited (a gossip round) or as the reply to one.
    Gossip = 9,
}

impl FrameType {
    fn from_tag(tag: u8) -> Option<FrameType> {
        match tag {
            1 => Some(FrameType::SyncRequest),
            2 => Some(FrameType::SyncBatch),
            3 => Some(FrameType::SyncDone),
            4 => Some(FrameType::Hello),
            5 => Some(FrameType::SyncDigest),
            6 => Some(FrameType::RangeRequest),
            7 => Some(FrameType::RangeResponse),
            8 => Some(FrameType::ReconResync),
            9 => Some(FrameType::Gossip),
            _ => None,
        }
    }
}

/// Magic bytes prefixed to every frame.
pub const MAGIC: [u8; 2] = [0xD7, 0x4E]; // "DTN"-ish

/// Hard cap on frame payloads (16 MiB).
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Size of the frame header: magic, type, length, CRC-32.
pub const HEADER_LEN: usize = 11;

/// Largest single allocation made before payload bytes actually arrive;
/// bigger (still capped) payloads grow the buffer as data is read, so a
/// lying length prefix cannot reserve 16 MiB up front.
const READ_CHUNK: usize = 64 * 1024;

/// CRC-32 (IEEE 802.3, reflected) over `bytes`, continuing from `crc`.
/// Hand-rolled table-driven implementation: the workspace builds offline,
/// so no checksum crate is available.
pub fn crc32(crc: u32, bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut bit = 0;
            while bit < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                bit += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !crc;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The frame checksum: CRC-32 over the type tag, the LE length field, and
/// the payload.
fn frame_checksum(frame_type: u8, len: u32, payload: &[u8]) -> u32 {
    let mut prefix = [0u8; 5];
    prefix[0] = frame_type;
    prefix[1..].copy_from_slice(&len.to_le_bytes());
    crc32(crc32(0, &prefix), payload)
}

/// Errors from reading or writing frames.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error.
    Io(std::io::Error),
    /// The peer did not speak this protocol.
    BadMagic([u8; 2]),
    /// Unknown frame type tag.
    BadType(u8),
    /// A frame exceeded [`MAX_FRAME_LEN`].
    TooLarge(u32),
    /// The frame checksum did not match: the bytes were corrupted in
    /// flight (or by a fault injector).
    BadChecksum {
        /// Checksum carried in the header.
        expected: u32,
        /// Checksum computed over the received bytes.
        got: u32,
    },
    /// Frame payload failed to decode.
    Decode(pfr::wire::WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadType(t) => write!(f, "unknown frame type {t}"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds limit"),
            FrameError::BadChecksum { expected, got } => {
                write!(
                    f,
                    "frame checksum mismatch: header {expected:08x}, computed {got:08x}"
                )
            }
            FrameError::Decode(e) => write!(f, "payload decode failed: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<pfr::wire::WireError> for FrameError {
    fn from(e: pfr::wire::WireError) -> Self {
        FrameError::Decode(e)
    }
}

/// Writes one frame to `w`.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the payload exceeds the cap, or any I/O
/// error from the writer.
pub fn write_frame<W: Write>(
    w: &mut W,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<(), FrameError> {
    let header = frame_header(frame_type, payload)?;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Builds the [`HEADER_LEN`]-byte header framing `payload` — the
/// encode-side primitive behind [`write_frame`], exposed so callers that
/// batch frames (the async reactor's vectored outbox) can emit header
/// and payload as separate segments without an intermediate copy.
///
/// # Errors
///
/// [`FrameError::TooLarge`] if the payload exceeds the cap.
pub fn frame_header(frame_type: FrameType, payload: &[u8]) -> Result<[u8; HEADER_LEN], FrameError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_LEN) {
        return Err(FrameError::TooLarge(payload.len() as u32));
    }
    let len = payload.len() as u32;
    let mut header = [0u8; HEADER_LEN];
    header[..2].copy_from_slice(&MAGIC);
    header[2] = frame_type as u8;
    header[3..7].copy_from_slice(&len.to_le_bytes());
    header[7..].copy_from_slice(&frame_checksum(frame_type as u8, len, payload).to_le_bytes());
    Ok(header)
}

/// Reads one frame from `r` into a fresh allocation.
///
/// Steady-state sessions should prefer [`read_frame_into`] with a pooled
/// buffer (see [`BufPool`]); this convenience wrapper allocates per call.
///
/// # Errors
///
/// Any [`FrameError`] variant; EOF mid-frame surfaces as
/// [`FrameError::Io`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<(FrameType, Vec<u8>), FrameError> {
    let mut payload = Vec::new();
    let frame_type = read_frame_into(r, &mut payload)?;
    Ok((frame_type, payload))
}

/// Reads one frame from `r` into `payload`, reusing its allocation.
///
/// The buffer is cleared first; on success it holds exactly the frame
/// payload. A buffer recycled across frames reaches a steady state where
/// no per-frame allocation happens at all once it has grown to the
/// session's largest frame.
///
/// # Errors
///
/// Any [`FrameError`] variant; EOF mid-frame surfaces as
/// [`FrameError::Io`]. On error the buffer contents are unspecified.
pub fn read_frame_into<R: Read>(r: &mut R, payload: &mut Vec<u8>) -> Result<FrameType, FrameError> {
    payload.clear();
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..2] != MAGIC {
        return Err(FrameError::BadMagic([header[0], header[1]]));
    }
    let frame_type = FrameType::from_tag(header[2]).ok_or(FrameError::BadType(header[2]))?;
    let len = u32::from_le_bytes([header[3], header[4], header[5], header[6]]);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge(len));
    }
    let expected = u32::from_le_bytes([header[7], header[8], header[9], header[10]]);
    // Read the payload in bounded chunks: allocation tracks bytes actually
    // received, so a lying length field cannot reserve the full cap.
    let len = len as usize;
    payload.reserve(len.min(READ_CHUNK));
    while payload.len() < len {
        let chunk = (len - payload.len()).min(READ_CHUNK);
        let start = payload.len();
        payload.resize(start + chunk, 0);
        r.read_exact(&mut payload[start..])?;
    }
    let got = frame_checksum(header[2], len as u32, payload);
    if got != expected {
        return Err(FrameError::BadChecksum { expected, got });
    }
    Ok(frame_type)
}

/// An incremental frame decoder for nonblocking sockets.
///
/// [`read_frame_into`] blocks until a whole frame arrives; a readiness
/// loop instead gets bytes in arbitrary chunks. `FrameAccum` buffers
/// whatever has arrived and yields complete frames as they materialize,
/// so the async reactor drives the exact same wire format as the
/// blocking path.
///
/// Error semantics mirror the blocking reader with one addition:
/// [`FrameError::BadChecksum`] is *recoverable* — the corrupt frame's
/// bytes are fully consumed, so the stream stays aligned and the caller
/// can keep decoding (the serve side uses this to answer with
/// [`FrameType::ReconResync`]). All other errors mean the byte stream
/// itself is broken and the connection should be dropped.
#[derive(Debug, Default)]
pub struct FrameAccum {
    buf: Vec<u8>,
    start: usize,
}

impl FrameAccum {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameAccum::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Reclaim consumed prefix before growing: steady-state sessions
        // never exceed one frame plus one read chunk of buffered bytes.
        if self.start > 0 && (self.start == self.buf.len() || self.start >= READ_CHUNK) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by [`FrameAccum::next_frame`].
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Tries to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadChecksum`] consumes the damaged frame and leaves
    /// the decoder aligned on the next one; [`FrameError::BadMagic`],
    /// [`FrameError::BadType`] and [`FrameError::TooLarge`] poison the
    /// stream — drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<(FrameType, Vec<u8>)>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        if avail[..2] != MAGIC {
            return Err(FrameError::BadMagic([avail[0], avail[1]]));
        }
        let frame_type = FrameType::from_tag(avail[2]).ok_or(FrameError::BadType(avail[2]))?;
        let len = u32::from_le_bytes([avail[3], avail[4], avail[5], avail[6]]);
        if len > MAX_FRAME_LEN {
            return Err(FrameError::TooLarge(len));
        }
        let expected = u32::from_le_bytes([avail[7], avail[8], avail[9], avail[10]]);
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..total];
        let got = frame_checksum(avail[2], len, payload);
        let frame = if got == expected {
            Ok(Some((frame_type, payload.to_vec())))
        } else {
            Err(FrameError::BadChecksum { expected, got })
        };
        // Consume the frame either way: a checksum failure is a damaged
        // payload, not a framing loss, so the next frame starts right after.
        self.start += total;
        frame
    }
}

/// A small free-list of receive buffers, held per session so steady-state
/// frame reads recycle allocations instead of minting fresh `Vec`s.
///
/// `take` hands out a cleared buffer (recycled when one is available);
/// `give` returns a buffer to the pool, keeping at most
/// [`BufPool::MAX_POOLED`] and letting the rest drop. Hit/miss counters
/// feed the `transport.pool_hits` observability counter.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
}

impl BufPool {
    /// Buffers retained by the pool; more are simply dropped on `give`.
    /// Sync sessions hold at most a couple of frames in flight, so a
    /// handful of buffers reaches the zero-allocation steady state.
    pub const MAX_POOLED: usize = 4;

    /// An empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    /// Hands out a cleared buffer, recycling a pooled one when available.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool (dropped if the pool is full).
    pub fn give(&mut self, buf: Vec<u8>) {
        if self.free.len() < Self::MAX_POOLED {
            self.free.push(buf);
        }
    }

    /// Takes served from a recycled buffer.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Takes that had to allocate fresh.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn roundtrip_all_types() {
        for ft in [
            FrameType::SyncRequest,
            FrameType::SyncBatch,
            FrameType::SyncDone,
            FrameType::Hello,
            FrameType::SyncDigest,
            FrameType::RangeRequest,
            FrameType::RangeResponse,
            FrameType::ReconResync,
            FrameType::Gossip,
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, ft, b"payload").unwrap();
            let (got_type, got_payload) = read_frame(&mut Cursor::new(&buf)).unwrap();
            assert_eq!(got_type, ft);
            assert_eq!(got_payload, b"payload");
        }
    }

    #[test]
    fn empty_payload_ok() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::SyncDone, b"").unwrap();
        let (_, payload) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Hello, b"x").unwrap();
        buf[0] = 0x00;
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn bad_type_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Hello, b"x").unwrap();
        buf[2] = 0xee;
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, FrameError::BadType(0xee)));
    }

    #[test]
    fn oversized_length_rejected_without_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Hello, b"x").unwrap();
        buf[3..7].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge(_)));
    }

    #[test]
    fn corrupted_payload_byte_is_a_checksum_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::SyncBatch, b"precious payload").unwrap();
        for pos in HEADER_LEN..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x40;
            let err = read_frame(&mut Cursor::new(&bad)).unwrap_err();
            assert!(
                matches!(err, FrameError::BadChecksum { .. }),
                "flip at {pos}: {err}"
            );
        }
    }

    #[test]
    fn corrupted_crc_field_is_a_checksum_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::SyncDone, b"").unwrap();
        buf[7] ^= 0x01;
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum { .. }));
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn read_frame_into_reuses_the_buffer_capacity() {
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameType::SyncBatch, &[7u8; 4096]).unwrap();
        write_frame(&mut stream, FrameType::SyncDone, b"tiny").unwrap();
        let mut cursor = Cursor::new(&stream);
        let mut buf = Vec::new();
        assert_eq!(
            read_frame_into(&mut cursor, &mut buf).unwrap(),
            FrameType::SyncBatch
        );
        assert_eq!(buf.len(), 4096);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        assert_eq!(
            read_frame_into(&mut cursor, &mut buf).unwrap(),
            FrameType::SyncDone
        );
        assert_eq!(buf, b"tiny");
        assert_eq!(buf.capacity(), cap, "no reallocation for a smaller frame");
        assert_eq!(buf.as_ptr(), ptr, "same backing allocation");
    }

    #[test]
    fn buf_pool_recycles_and_counts() {
        let mut pool = BufPool::new();
        let first = pool.take();
        assert_eq!(pool.misses(), 1);
        assert_eq!(pool.hits(), 0);
        let mut grown = first;
        grown.extend_from_slice(&[1u8; 1000]);
        let ptr = grown.as_ptr();
        pool.give(grown);
        let recycled = pool.take();
        assert_eq!(pool.hits(), 1);
        assert!(recycled.is_empty(), "recycled buffers come back cleared");
        assert_eq!(recycled.as_ptr(), ptr, "same allocation handed back");
        assert!(recycled.capacity() >= 1000);
        // The pool caps how many buffers it retains.
        for _ in 0..(BufPool::MAX_POOLED + 3) {
            pool.give(Vec::new());
        }
        for _ in 0..BufPool::MAX_POOLED {
            pool.take();
        }
        let before = pool.misses();
        pool.take();
        assert_eq!(pool.misses(), before + 1, "pool retained only its cap");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn accum_decodes_frames_delivered_byte_by_byte() {
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameType::Hello, b"hi").unwrap();
        write_frame(&mut stream, FrameType::Gossip, &[9u8; 300]).unwrap();
        let mut accum = FrameAccum::new();
        let mut got = Vec::new();
        for b in &stream {
            accum.extend(std::slice::from_ref(b));
            while let Some(frame) = accum.next_frame().unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], (FrameType::Hello, b"hi".to_vec()));
        assert_eq!(got[1].0, FrameType::Gossip);
        assert_eq!(got[1].1, vec![9u8; 300]);
        assert_eq!(accum.buffered(), 0);
    }

    #[test]
    fn accum_checksum_error_stays_aligned() {
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameType::SyncRequest, b"damaged").unwrap();
        write_frame(&mut stream, FrameType::SyncDone, b"clean").unwrap();
        stream[HEADER_LEN] ^= 0x80; // corrupt the first payload byte
        let mut accum = FrameAccum::new();
        accum.extend(&stream);
        let err = accum.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::BadChecksum { .. }));
        // The damaged frame was consumed: the next decode succeeds.
        let (ft, payload) = accum.next_frame().unwrap().expect("second frame");
        assert_eq!(ft, FrameType::SyncDone);
        assert_eq!(payload, b"clean");
    }

    #[test]
    fn accum_rejects_bad_magic_and_type() {
        let mut accum = FrameAccum::new();
        accum.extend(&[0xFF; HEADER_LEN]);
        assert!(matches!(accum.next_frame(), Err(FrameError::BadMagic(_))));

        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Hello, b"x").unwrap();
        buf[2] = 0xEE;
        let mut accum = FrameAccum::new();
        accum.extend(&buf);
        assert!(matches!(accum.next_frame(), Err(FrameError::BadType(0xEE))));
    }

    #[test]
    fn accum_matches_blocking_reader_output() {
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameType::SyncBatch, &[3u8; 5000]).unwrap();
        let (bt, bp) = read_frame(&mut Cursor::new(&stream)).unwrap();
        let mut accum = FrameAccum::new();
        accum.extend(&stream);
        let (at, ap) = accum.next_frame().unwrap().unwrap();
        assert_eq!(at, bt);
        assert_eq!(ap, bp);
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Hello, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, FrameError::Io(_)));
    }
}
