//! The transport seam: a [`Connection`] is the byte duplex a sync session
//! runs over.
//!
//! The protocol state machine in [`crate::protocol`] only needs a reader
//! and a writer; abstracting them behind this trait lets the same session
//! code drive a real TCP socket ([`TcpConnection`]) or an in-memory
//! fault-injecting link (the testkit's `SimNet`), which is how the fault
//! harness exercises the exact code path production uses.

use std::fmt;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

/// A bidirectional byte stream a sync session can run over.
///
/// Implementations hand out their two halves so a session can interleave
/// reads and writes; the halves borrow from `self`, so one session owns
/// the connection for its duration.
pub trait Connection {
    /// Returns the read and write halves of the duplex.
    fn halves(&mut self) -> (&mut dyn Read, &mut dyn Write);
}

/// A [`Connection`] over a TCP stream, buffered in both directions.
pub struct TcpConnection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpConnection {
    /// Wraps a connected stream, cloning the handle for the read half.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from cloning the stream handle.
    pub fn new(stream: TcpStream) -> std::io::Result<TcpConnection> {
        Ok(TcpConnection {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }
}

impl Connection for TcpConnection {
    fn halves(&mut self) -> (&mut dyn Read, &mut dyn Write) {
        (&mut self.reader, &mut self.writer)
    }
}

impl fmt::Debug for TcpConnection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpConnection")
            .field("peer_addr", &self.reader.get_ref().peer_addr().ok())
            .finish()
    }
}
