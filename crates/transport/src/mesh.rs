//! A mesh node: a TCP peer plus an anti-entropy loop.
//!
//! [`Peer`] answers inbound sync sessions; a [`Mesh`] additionally *originates*
//! them, cycling through its known peers on an interval (or on demand via
//! [`Mesh::sync_now`]), which turns a set of processes into a continuously
//! converging replication group — the deployable shape of the paper's
//! system when connectivity is the network rather than bus encounters.

use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dtn::DtnNode;
use parking_lot::Mutex;
use pfr::SimTime;

use pfr::SyncLimits;

use crate::peer::{DialConfig, Peer, TransportError};

/// Configuration for a mesh node's anti-entropy loop.
#[derive(Clone, Copy, Debug)]
pub struct MeshConfig {
    /// Time between sync attempts (one peer per tick, round-robin).
    pub sync_interval: Duration,
    /// Dial policy for outbound sessions: connect/I-O deadlines and the
    /// reconnect backoff, so one wedged peer cannot stall the rotation.
    pub dial: DialConfig,
}

impl Default for MeshConfig {
    fn default() -> Self {
        MeshConfig {
            sync_interval: Duration::from_secs(30),
            dial: DialConfig::default(),
        }
    }
}

/// A [`Peer`] that also runs periodic anti-entropy against a peer list.
///
/// # Examples
///
/// ```
/// use dtn::{DtnNode, PolicyKind};
/// use pfr::{ReplicaId, SimTime};
/// use transport::{Mesh, MeshConfig};
///
/// let a = Mesh::start(
///     DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic),
///     "127.0.0.1:0",
///     MeshConfig::default(),
/// )?;
/// let b = Mesh::start(
///     DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic),
///     "127.0.0.1:0",
///     MeshConfig::default(),
/// )?;
/// a.add_peer(b.local_addr());
/// a.with_node(|n| n.send("b", b"hi".to_vec(), SimTime::ZERO)).unwrap();
/// a.sync_now(); // or wait for the background interval
/// assert_eq!(b.with_node(|n| n.inbox().len()), 1);
/// # Ok::<(), transport::TransportError>(())
/// ```
pub struct Mesh {
    peer: Arc<Peer>,
    peers: Arc<Mutex<Vec<SocketAddr>>>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
    ticker: Option<JoinHandle<()>>,
}

impl Mesh {
    /// Starts a mesh node listening on `bind` with an empty peer list.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn start(
        node: DtnNode,
        bind: impl ToSocketAddrs,
        config: MeshConfig,
    ) -> Result<Mesh, TransportError> {
        let peer = Arc::new(Peer::start_configured(
            node,
            bind,
            SyncLimits::unlimited(),
            config.dial,
        )?);
        let peers: Arc<Mutex<Vec<SocketAddr>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let started = Instant::now();

        let tick_peer = Arc::clone(&peer);
        let tick_peers = Arc::clone(&peers);
        let tick_shutdown = Arc::clone(&shutdown);
        let ticker = std::thread::Builder::new()
            .name("mesh-anti-entropy".to_string())
            .spawn(move || {
                let mut next = 0usize;
                while !tick_shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(config.sync_interval.min(Duration::from_millis(50)));
                    // Honor the configured cadence while staying responsive
                    // to shutdown: only sync when a full interval elapsed.
                    let due =
                        started.elapsed().as_millis() / config.sync_interval.as_millis().max(1);
                    if due as usize <= next {
                        continue;
                    }
                    next = due as usize;
                    let target = {
                        let list = tick_peers.lock();
                        if list.is_empty() {
                            continue;
                        }
                        list[next % list.len()]
                    };
                    let now = SimTime::from_secs(started.elapsed().as_secs());
                    let _ = tick_peer.sync_with(target, now);
                }
            })?;

        Ok(Mesh {
            peer,
            peers,
            shutdown,
            started,
            ticker: Some(ticker),
        })
    }

    /// The socket address this node listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.peer.local_addr()
    }

    /// Adds a peer to the anti-entropy rotation.
    pub fn add_peer(&self, addr: SocketAddr) {
        let mut list = self.peers.lock();
        if !list.contains(&addr) {
            list.push(addr);
        }
    }

    /// The current peer list.
    pub fn peers(&self) -> Vec<SocketAddr> {
        self.peers.lock().clone()
    }

    /// Runs a closure against the node under the peer lock.
    pub fn with_node<T>(&self, f: impl FnOnce(&mut DtnNode) -> T) -> T {
        self.peer.with_node(f)
    }

    /// Synchronizes with every known peer immediately (one full round).
    /// Returns the number of peers successfully synced. Unreachable peers
    /// are skipped — disruption tolerance applies to the mesh too.
    pub fn sync_now(&self) -> usize {
        let targets = self.peers();
        let now = SimTime::from_secs(self.started.elapsed().as_secs());
        let mut synced = 0;
        for addr in targets {
            match self.peer.sync_with(addr, now) {
                Ok(_) => synced += 1,
                Err(TransportError::Io(_)) => {
                    // The connection never came up, so the protocol layer had
                    // no chance to report it; record the failed attempt here.
                    // (Mid-session failures already self-report.)
                    let (replica, obs) =
                        self.with_node(|n| (n.id().as_u64(), n.replica().observer().clone()));
                    obs.emit(|| obs::Event::TransportSync {
                        replica,
                        peer: 0,
                        served: 0,
                        delivered: 0,
                        frame_bytes: 0,
                        ok: false,
                    });
                }
                Err(TransportError::Protocol(_)) => {}
            }
        }
        synced
    }

    /// Stops the anti-entropy loop and the listener.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
        // Peer shuts down on drop.
    }
}

impl Drop for Mesh {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.ticker.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mesh")
            .field("local_addr", &self.local_addr())
            .field("peers", &self.peers.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn::PolicyKind;
    use pfr::ReplicaId;

    fn mesh(n: u64, addr: &str) -> Mesh {
        Mesh::start(
            DtnNode::new(ReplicaId::new(n), addr, PolicyKind::Epidemic),
            "127.0.0.1:0",
            MeshConfig {
                sync_interval: Duration::from_secs(3600), // manual ticks only
                ..MeshConfig::default()
            },
        )
        .expect("bind")
    }

    #[test]
    fn manual_rounds_converge_a_chain() {
        let a = mesh(1, "a");
        let b = mesh(2, "b");
        let c = mesh(3, "c");
        // Chain: a knows b, b knows c.
        a.add_peer(b.local_addr());
        b.add_peer(c.local_addr());

        a.with_node(|n| n.send("c", b"via mesh".to_vec(), SimTime::ZERO))
            .unwrap();
        assert_eq!(a.sync_now(), 1);
        assert_eq!(b.sync_now(), 1);
        let inbox = c.with_node(|n| n.inbox());
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].payload, b"via mesh");
        a.stop();
        b.stop();
        c.stop();
    }

    #[test]
    fn unreachable_peers_are_skipped() {
        let a = mesh(1, "a");
        let b = mesh(2, "b");
        a.add_peer(b.local_addr());
        let dead = b.local_addr();
        b.stop();
        // b is gone: the round reports zero successes but does not error.
        assert_eq!(a.peers(), vec![dead]);
        assert_eq!(a.sync_now(), 0);
        a.stop();
    }

    #[test]
    fn duplicate_peers_are_not_added() {
        let a = mesh(1, "a");
        let b = mesh(2, "b");
        a.add_peer(b.local_addr());
        a.add_peer(b.local_addr());
        assert_eq!(a.peers().len(), 1);
    }

    #[test]
    fn background_ticker_eventually_syncs() {
        let a = Mesh::start(
            DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic),
            "127.0.0.1:0",
            MeshConfig {
                sync_interval: Duration::from_millis(60),
                ..MeshConfig::default()
            },
        )
        .expect("bind");
        let b = mesh(2, "b");
        a.add_peer(b.local_addr());
        a.with_node(|n| n.send("b", b"ticked".to_vec(), SimTime::ZERO))
            .unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if b.with_node(|n| n.inbox().len()) == 1 {
                break;
            }
            assert!(Instant::now() < deadline, "background sync never happened");
            std::thread::sleep(Duration::from_millis(20));
        }
        a.stop();
        b.stop();
    }
}
