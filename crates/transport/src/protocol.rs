//! The networked sync session: hello exchange plus two sync directions,
//! mirroring the paper's "two syncs per encounter, roles alternating".

use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

use dtn::{DigestResponse, DtnNode};
use obs::{Event, Span};
use parking_lot::Mutex;
use pfr::digest::{DigestRequest, VersionAnswer, VersionQuery};
use pfr::sync::{SyncBatch, SyncReport, SyncRequest};
use pfr::wire::{
    from_bytes, from_bytes_shared, Decode, Encode, EncodeScratch, Reader as WireReader,
    Writer as WireWriter,
};
use pfr::{ReplicaId, SimTime, SyncLimits, SyncMode};

use crate::conn::Connection;
#[cfg(test)]
use crate::frame::read_frame;
use crate::frame::{read_frame_into, write_frame, BufPool, FrameError, FrameType};
use crate::peer::SessionReport;

/// Errors in the session protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// Framing or I/O failure.
    Frame(FrameError),
    /// The peer sent the wrong frame type for the protocol state.
    UnexpectedFrame {
        /// What the state machine needed.
        expected: FrameType,
        /// What arrived instead.
        got: FrameType,
    },
    /// A digest version answer did not match the query it responds to.
    AnswerMismatch,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Frame(e) => write!(f, "{e}"),
            ProtocolError::UnexpectedFrame { expected, got } => {
                write!(f, "expected {expected:?} frame, got {got:?}")
            }
            ProtocolError::AnswerMismatch => {
                write!(f, "digest version answer does not match its query")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Frame(e) => Some(e),
            ProtocolError::UnexpectedFrame { .. } | ProtocolError::AnswerMismatch => None,
        }
    }
}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> Self {
        ProtocolError::Frame(e)
    }
}

/// Peer identification exchanged when a session opens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The sender's replica id.
    pub replica: ReplicaId,
    /// The sender's clock, so both sides stamp the encounter identically.
    pub now: SimTime,
}

impl Encode for Hello {
    fn encode(&self, w: &mut WireWriter) {
        self.replica.encode(w);
        w.put_varint(self.now.as_secs());
    }
}

impl Decode for Hello {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, pfr::wire::WireError> {
        Ok(Hello {
            replica: ReplicaId::decode(r)?,
            now: SimTime::from_secs(r.get_varint()?),
        })
    }
}

#[cfg(test)]
fn expect(reader: &mut impl Read, expected: FrameType) -> Result<Vec<u8>, ProtocolError> {
    let (frame_type, payload) = read_frame(reader)?;
    if frame_type != expected {
        return Err(ProtocolError::UnexpectedFrame {
            expected,
            got: frame_type,
        });
    }
    Ok(payload)
}

/// Per-session reusable buffers: one encode scratch for every outbound
/// frame, one receive-buffer pool for every inbound frame, and the
/// session's accounting (payloads decoded as shared slices, total frame
/// payload bytes both ways). Steady-state sessions do no per-frame
/// allocation; the counters feed [`Event::DataPlaneReuse`] and
/// [`Event::TransportSync`].
#[derive(Debug, Default)]
struct SessionBuffers {
    scratch: EncodeScratch,
    pool: BufPool,
    payload_shares: u64,
    frame_bytes: u64,
    /// Frame payload bytes received and decoded this session (the
    /// receive-side mirror of the scratch's `bytes_encoded`).
    bytes_decoded: u64,
}

/// Reads one frame of the expected type into a pooled buffer. The caller
/// returns the buffer via `pool.give` once decoded; on error it is
/// recycled here.
fn expect_pooled(
    reader: &mut impl Read,
    expected: FrameType,
    pool: &mut BufPool,
) -> Result<Vec<u8>, ProtocolError> {
    let mut payload = pool.take();
    match read_frame_into(reader, &mut payload) {
        Ok(frame_type) if frame_type == expected => Ok(payload),
        Ok(got) => {
            pool.give(payload);
            Err(ProtocolError::UnexpectedFrame { expected, got })
        }
        Err(e) => {
            pool.give(payload);
            Err(e.into())
        }
    }
}

/// Decodes a [`SyncBatch`] through the shared-buffer wire path: the frame
/// payload becomes one `Arc<[u8]>` backing buffer and every item payload
/// in the batch is a slice of it — one allocation for the whole batch
/// instead of one per item. Returns the batch and the share count.
fn decode_batch_shared(payload: &[u8]) -> Result<(SyncBatch, u64), ProtocolError> {
    let backing: Arc<[u8]> = payload.into();
    from_bytes_shared(&backing).map_err(|e| ProtocolError::Frame(FrameError::Decode(e)))
}

fn decode_payload<T: Decode>(payload: &[u8]) -> Result<T, ProtocolError> {
    from_bytes(payload).map_err(|e| ProtocolError::Frame(FrameError::Decode(e)))
}

/// Receives one frame of the expected type, folding its payload length
/// into the session byte accounting.
fn recv_expected(
    reader: &mut impl Read,
    expected: FrameType,
    bufs: &mut SessionBuffers,
) -> Result<Vec<u8>, ProtocolError> {
    let payload = expect_pooled(reader, expected, &mut bufs.pool)?;
    bufs.frame_bytes += payload.len() as u64;
    bufs.bytes_decoded += payload.len() as u64;
    Ok(payload)
}

/// Receives whatever frame comes next (the digest state machine branches
/// on the type), folding its payload length into the accounting.
fn recv_any(
    reader: &mut impl Read,
    bufs: &mut SessionBuffers,
) -> Result<(FrameType, Vec<u8>), ProtocolError> {
    let mut payload = bufs.pool.take();
    match read_frame_into(reader, &mut payload) {
        Ok(frame_type) => {
            bufs.frame_bytes += payload.len() as u64;
            bufs.bytes_decoded += payload.len() as u64;
            Ok((frame_type, payload))
        }
        Err(e) => {
            bufs.pool.give(payload);
            Err(e.into())
        }
    }
}

/// Encodes and writes one frame through the session scratch, returning
/// the payload length for digest byte accounting.
fn send_frame<T: Encode>(
    writer: &mut impl Write,
    frame_type: FrameType,
    value: &T,
    bufs: &mut SessionBuffers,
) -> Result<u64, ProtocolError> {
    let bytes = bufs.scratch.encode(value);
    let len = bytes.len() as u64;
    bufs.frame_bytes += len;
    write_frame(writer, frame_type, bytes)?;
    Ok(len)
}

/// Decodes a received batch payload through the shared-buffer path and
/// applies it to the node (target role).
fn apply_batch_payload(
    node: &Arc<Mutex<DtnNode>>,
    payload: Vec<u8>,
    now: SimTime,
    bufs: &mut SessionBuffers,
) -> Result<SyncReport, ProtocolError> {
    let (batch, shares) = decode_batch_shared(&payload)?;
    bufs.pool.give(payload);
    bufs.payload_shares += shares;
    Ok(node.lock().apply_sync(batch, now))
}

/// The outcome of one session drive: whatever progress the session made
/// before it completed or failed, plus the typed error that ended it (if
/// any). Faulty links routinely kill sessions mid-transfer; the partial
/// report is what lets callers and the fault harness account for the
/// state that *did* replicate before the cut.
#[derive(Debug)]
#[non_exhaustive]
pub struct SessionOutcome {
    /// Progress made before the session ended (possibly partial).
    pub report: SessionReport,
    /// The error that terminated the session, or `None` on clean close.
    pub error: Option<ProtocolError>,
}

impl SessionOutcome {
    /// Converts to a `Result`, discarding partial progress on error.
    pub fn into_result(self) -> Result<SessionReport, ProtocolError> {
        match self.error {
            None => Ok(self.report),
            Some(e) => Err(e),
        }
    }
}

/// Drives the pull direction: this side is the target, the peer serves.
/// The node's [`SyncMode`] picks the request shape; the serve side needs
/// no negotiation because it dispatches on the request frame type.
fn pull_direction<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    peer: ReplicaId,
    now: SimTime,
    bufs: &mut SessionBuffers,
) -> Result<SyncReport, ProtocolError> {
    if node.lock().sync_mode() == SyncMode::Digest {
        return pull_digest(reader, writer, node, peer, now, bufs);
    }
    // Full mode: the request borrows the node's knowledge/filter, so
    // serialize it while the lock is held; only the scratch bytes leave
    // the critical section.
    let request_bytes = {
        let mut node = node.lock();
        let request = node.begin_sync_session(peer, now);
        bufs.scratch.encode(&request)
    };
    bufs.frame_bytes += request_bytes.len() as u64;
    write_frame(writer, FrameType::SyncRequest, request_bytes)?;
    let batch_payload = recv_expected(reader, FrameType::SyncBatch, bufs)?;
    let report = apply_batch_payload(node, batch_payload, now, bufs)?;
    write_frame(writer, FrameType::SyncDone, &[])?;
    Ok(report)
}

/// Digest-mode pull: sends a compact [`DigestRequest`] and follows
/// whichever continuation the source answers with — a direct batch, an
/// exact version round (Bloom summaries), or a resync demand that makes
/// this side retransmit the plain full request. Every terminal path
/// applies a batch and commits the exchange with its byte accounting.
fn pull_digest<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    peer: ReplicaId,
    now: SimTime,
    bufs: &mut SessionBuffers,
) -> Result<SyncReport, ProtocolError> {
    let (request, state) = node.lock().begin_digest_session(peer, now);
    let mut digest_bytes = send_frame(writer, FrameType::SyncDigest, &request, bufs)?;
    let mut fallback_rounds = 0u64;
    let mut false_positives = 0u64;
    let mut knowledge_shared = state.summary_kind() != "bloom";

    // Serves the resync demand: retransmit the full request (its bytes
    // are charged to digest mode — fallbacks are its cost, not full
    // mode's, plus one byte for the resync frame itself).
    macro_rules! retransmit_full {
        () => {{
            fallback_rounds += 1;
            knowledge_shared = true;
            let request_bytes = bufs.scratch.encode(state.full_request());
            digest_bytes += 1 + request_bytes.len() as u64;
            bufs.frame_bytes += request_bytes.len() as u64;
            write_frame(writer, FrameType::SyncRequest, request_bytes)?;
        }};
    }

    let (frame_type, payload) = recv_any(reader, bufs)?;
    let report = match frame_type {
        FrameType::SyncBatch => apply_batch_payload(node, payload, now, bufs)?,
        FrameType::RangeRequest => {
            // Bloom path: the source screens uncertain versions through
            // one exact membership round.
            fallback_rounds += 1;
            knowledge_shared = false;
            digest_bytes += payload.len() as u64;
            let query: VersionQuery = decode_payload(&payload)?;
            bufs.pool.give(payload);
            let answer = node.lock().answer_digest_query(&query);
            false_positives = (0..answer.len()).filter(|&i| !answer.known(i)).count() as u64;
            digest_bytes += send_frame(writer, FrameType::RangeResponse, &answer, bufs)?;
            let (frame_type, payload) = recv_any(reader, bufs)?;
            match frame_type {
                FrameType::SyncBatch => apply_batch_payload(node, payload, now, bufs)?,
                FrameType::ReconResync => {
                    // The source rejected the answer round; fall all the
                    // way back to a full exchange.
                    bufs.pool.give(payload);
                    retransmit_full!();
                    let batch_payload = recv_expected(reader, FrameType::SyncBatch, bufs)?;
                    apply_batch_payload(node, batch_payload, now, bufs)?
                }
                got => {
                    bufs.pool.give(payload);
                    return Err(ProtocolError::UnexpectedFrame {
                        expected: FrameType::SyncBatch,
                        got,
                    });
                }
            }
        }
        FrameType::ReconResync => {
            bufs.pool.give(payload);
            retransmit_full!();
            let batch_payload = recv_expected(reader, FrameType::SyncBatch, bufs)?;
            apply_batch_payload(node, batch_payload, now, bufs)?
        }
        got => {
            bufs.pool.give(payload);
            return Err(ProtocolError::UnexpectedFrame {
                expected: FrameType::SyncBatch,
                got,
            });
        }
    };
    write_frame(writer, FrameType::SyncDone, &[])?;
    node.lock().commit_digest_session(
        peer,
        state,
        knowledge_shared,
        digest_bytes,
        fallback_rounds,
        false_positives,
    );
    Ok(report)
}

/// Serves the peer's pull: this side is the source. Dispatches on the
/// request frame type, so full-mode and digest-mode peers are both served
/// without prior negotiation. A request frame that fails its checksum is
/// answered with [`FrameType::ReconResync`] — the corrupt payload was
/// fully consumed, so the stream is still aligned, and a digest-mode peer
/// recovers by retransmitting its full request. Returns the number of
/// items served.
fn serve_direction<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
    now: SimTime,
    bufs: &mut SessionBuffers,
) -> Result<usize, ProtocolError> {
    let mut payload = bufs.pool.take();
    let frame_type = match read_frame_into(reader, &mut payload) {
        Ok(frame_type) => frame_type,
        Err(FrameError::BadChecksum { .. }) => {
            bufs.pool.give(payload);
            write_frame(writer, FrameType::ReconResync, &[])?;
            let served = serve_resync(reader, writer, node, limits, now, bufs)?;
            let done = recv_expected(reader, FrameType::SyncDone, bufs)?;
            bufs.pool.give(done);
            return Ok(served);
        }
        Err(e) => {
            bufs.pool.give(payload);
            return Err(e.into());
        }
    };
    bufs.frame_bytes += payload.len() as u64;
    bufs.bytes_decoded += payload.len() as u64;
    let served = match frame_type {
        FrameType::SyncRequest => {
            let request: SyncRequest = decode_payload(&payload)?;
            bufs.pool.give(payload);
            let batch = node.lock().respond_sync(&request, limits, now);
            let served = batch.entries.len();
            send_frame(writer, FrameType::SyncBatch, &batch, bufs)?;
            served
        }
        FrameType::SyncDigest => {
            let request: DigestRequest = decode_payload(&payload)?;
            bufs.pool.give(payload);
            serve_digest(reader, writer, node, &request, limits, now, bufs)?
        }
        got => {
            bufs.pool.give(payload);
            return Err(ProtocolError::UnexpectedFrame {
                expected: FrameType::SyncRequest,
                got,
            });
        }
    };
    let done = recv_expected(reader, FrameType::SyncDone, bufs)?;
    bufs.pool.give(done);
    Ok(served)
}

/// Source side of one digest request, through whichever continuation it
/// needs. Returns the number of items served.
fn serve_digest<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    request: &DigestRequest,
    limits: SyncLimits,
    now: SimTime,
    bufs: &mut SessionBuffers,
) -> Result<usize, ProtocolError> {
    let response = node.lock().respond_digest(request, limits, now);
    match response {
        DigestResponse::Batch(batch) => {
            let served = batch.entries.len();
            send_frame(writer, FrameType::SyncBatch, &batch, bufs)?;
            Ok(served)
        }
        DigestResponse::NeedVersions(query) => {
            send_frame(writer, FrameType::RangeRequest, &query, bufs)?;
            let answer_payload = recv_expected(reader, FrameType::RangeResponse, bufs)?;
            let answer: VersionAnswer = decode_payload(&answer_payload)?;
            bufs.pool.give(answer_payload);
            match node
                .lock()
                .respond_digest_answer(request, &query, &answer, limits, now)
            {
                Some(batch) => {
                    let served = batch.entries.len();
                    send_frame(writer, FrameType::SyncBatch, &batch, bufs)?;
                    Ok(served)
                }
                None => {
                    // The answer does not cover the query; salvage the
                    // exchange with a full resync round.
                    write_frame(writer, FrameType::ReconResync, &[])?;
                    serve_resync(reader, writer, node, limits, now, bufs)
                }
            }
        }
        DigestResponse::Resync => {
            write_frame(writer, FrameType::ReconResync, &[])?;
            serve_resync(reader, writer, node, limits, now, bufs)
        }
    }
}

/// After this side demanded a resync: receives the peer's full request
/// and serves it, caching the now exactly-known peer state.
fn serve_resync<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
    now: SimTime,
    bufs: &mut SessionBuffers,
) -> Result<usize, ProtocolError> {
    let request_payload = recv_expected(reader, FrameType::SyncRequest, bufs)?;
    let request: SyncRequest = decode_payload(&request_payload)?;
    bufs.pool.give(request_payload);
    let batch = node.lock().respond_digest_resync(&request, limits, now);
    let served = batch.entries.len();
    send_frame(writer, FrameType::SyncBatch, &batch, bufs)?;
    Ok(served)
}

fn initiator_steps<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    now: SimTime,
    limits: SyncLimits,
    report: &mut SessionReport,
    bufs: &mut SessionBuffers,
) -> Result<(), ProtocolError> {
    // Hello exchange.
    let (my_id, obs) = {
        let node = node.lock();
        (node.id(), node.replica().observer().clone())
    };
    let my_hello = Hello {
        replica: my_id,
        now,
    };
    report.now = Some(now);
    send_frame(writer, FrameType::Hello, &my_hello, bufs)?;
    let hello_payload = recv_expected(reader, FrameType::Hello, bufs)?;
    let peer_hello: Hello = decode_payload(&hello_payload)?;
    bufs.pool.give(hello_payload);
    let peer = peer_hello.replica;
    report.peer = Some(peer);
    let span = Span::start(&obs, "transport.initiator", my_id.as_u64(), peer.as_u64());

    // Direction 1: we are the target and pull from the responder.
    report.pulled = Some(pull_direction(reader, writer, node, peer, now, bufs)?);

    // Direction 2: the responder pulls from us.
    report.served = serve_direction(reader, writer, node, limits, now, bufs)?;
    span.finish();
    Ok(())
}

fn responder_steps<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
    report: &mut SessionReport,
    bufs: &mut SessionBuffers,
) -> Result<(), ProtocolError> {
    // Hello exchange: adopt the initiator's clock for this encounter.
    let hello_payload = recv_expected(reader, FrameType::Hello, bufs)?;
    let peer_hello: Hello = decode_payload(&hello_payload)?;
    bufs.pool.give(hello_payload);
    let peer = peer_hello.replica;
    let now = peer_hello.now;
    report.peer = Some(peer);
    report.now = Some(now);
    let (my_id, obs) = {
        let node = node.lock();
        (node.id(), node.replica().observer().clone())
    };
    let span = Span::start(&obs, "transport.responder", my_id.as_u64(), peer.as_u64());
    let my_hello = Hello {
        replica: my_id,
        now,
    };
    send_frame(writer, FrameType::Hello, &my_hello, bufs)?;

    // Direction 1: the initiator pulls from us.
    report.served = serve_direction(reader, writer, node, limits, now, bufs)?;

    // Direction 2: we pull from the initiator.
    report.pulled = Some(pull_direction(reader, writer, node, peer, now, bufs)?);
    span.finish();
    Ok(())
}

/// Emits the per-session `TransportSync` and `DataPlaneReuse` events from
/// whatever progress the report and buffers record, whether the session
/// completed or died mid-protocol.
fn emit_session_event(
    node: &Arc<Mutex<DtnNode>>,
    report: &SessionReport,
    ok: bool,
    bufs: &SessionBuffers,
) {
    let (my_id, obs) = {
        let node = node.lock();
        (node.id(), node.replica().observer().clone())
    };
    let peer = report.peer.map(|p| p.as_u64()).unwrap_or(0);
    let served = report.served as u64;
    let delivered = report
        .pulled
        .as_ref()
        .map(|p| p.delivered as u64)
        .unwrap_or(0);
    obs.emit(|| Event::TransportSync {
        replica: my_id.as_u64(),
        peer,
        served,
        delivered,
        frame_bytes: bufs.frame_bytes,
        ok,
    });
    obs.emit(|| Event::DataPlaneReuse {
        replica: my_id.as_u64(),
        peer,
        scratch_reuses: bufs.scratch.reuses(),
        bytes_encoded: bufs.scratch.bytes_encoded(),
        pool_hits: bufs.pool.hits(),
        payload_shares: bufs.payload_shares,
        bytes_decoded: bufs.bytes_decoded,
    });
}

/// Persists a durable node after a session — even a failed one: whatever
/// replicated before the cut is worth keeping, and replay is idempotent.
/// Non-durable nodes are a free no-op. A persist failure must not kill
/// the transport (the in-memory state is still good), so it surfaces as
/// an [`Event::StoreFault`] instead of an error.
fn persist_after_session(node: &Arc<Mutex<DtnNode>>, now: Option<SimTime>) {
    let Some(now) = now else { return };
    let mut node = node.lock();
    if let Err(e) = node.persist(now) {
        let obs = node.replica().observer().clone();
        drop(node);
        obs.emit(|| Event::StoreFault {
            op: "persist",
            detail: e.to_string(),
        });
    }
}

/// Drives the initiator side of a session over any [`Connection`]: hello,
/// pull (we are target), then serve the responder's pull (we are source).
///
/// Never panics on link faults: every failure surfaces as a typed
/// [`ProtocolError`] inside the returned [`SessionOutcome`], alongside the
/// partial [`SessionReport`] for whatever replicated before the failure.
pub fn initiate_session(
    conn: &mut dyn Connection,
    node: &Arc<Mutex<DtnNode>>,
    now: SimTime,
    limits: SyncLimits,
) -> SessionOutcome {
    let (mut reader, mut writer) = conn.halves();
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let error = initiator_steps(
        &mut reader,
        &mut writer,
        node,
        now,
        limits,
        &mut report,
        &mut bufs,
    )
    .err();
    emit_session_event(node, &report, error.is_none(), &bufs);
    persist_after_session(node, report.now);
    SessionOutcome { report, error }
}

/// Drives the responder side of a session accepted from any
/// [`Connection`]; see [`initiate_session`] for the failure contract.
pub fn respond_session(
    conn: &mut dyn Connection,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
) -> SessionOutcome {
    let (mut reader, mut writer) = conn.halves();
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let error = responder_steps(
        &mut reader,
        &mut writer,
        node,
        limits,
        &mut report,
        &mut bufs,
    )
    .err();
    emit_session_event(node, &report, error.is_none(), &bufs);
    persist_after_session(node, report.now);
    SessionOutcome { report, error }
}

/// Runs the initiator side over split reader/writer halves, failing
/// without partial progress. Prefer [`initiate_session`] for new code.
///
/// # Errors
///
/// Any [`ProtocolError`] from the session.
pub fn run_initiator<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    now: SimTime,
    limits: SyncLimits,
) -> Result<SessionReport, ProtocolError> {
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let result = initiator_steps(reader, writer, node, now, limits, &mut report, &mut bufs);
    emit_session_event(node, &report, result.is_ok(), &bufs);
    persist_after_session(node, report.now);
    result.map(|()| report)
}

/// Runs the responder side over split reader/writer halves, failing
/// without partial progress. Prefer [`respond_session`] for new code.
///
/// # Errors
///
/// Any [`ProtocolError`] from the session.
pub fn run_responder<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
) -> Result<SessionReport, ProtocolError> {
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let result = responder_steps(reader, writer, node, limits, &mut report, &mut bufs);
    emit_session_event(node, &report, result.is_ok(), &bufs);
    persist_after_session(node, report.now);
    result.map(|()| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn::PolicyKind;

    /// In-memory duplex pipe for driving both protocol sides without
    /// sockets.
    fn pipe() -> (PipeEnd, PipeEnd) {
        let (tx_a, rx_a) = std::sync::mpsc::channel::<u8>();
        let (tx_b, rx_b) = std::sync::mpsc::channel::<u8>();
        (
            PipeEnd { tx: tx_a, rx: rx_b },
            PipeEnd { tx: tx_b, rx: rx_a },
        )
    }

    struct PipeEnd {
        tx: std::sync::mpsc::Sender<u8>,
        rx: std::sync::mpsc::Receiver<u8>,
    }

    impl Read for PipeEnd {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            match self.rx.recv() {
                Ok(byte) => {
                    buf[0] = byte;
                    let mut n = 1;
                    while n < buf.len() {
                        match self.rx.try_recv() {
                            Ok(b) => {
                                buf[n] = b;
                                n += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    Ok(n)
                }
                Err(_) => Ok(0),
            }
        }
    }

    impl Write for PipeEnd {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            for &b in buf {
                self.tx.send(b).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed")
                })?;
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn full_session_over_in_memory_pipe() {
        let (mut end_a, mut end_b) = pipe();
        let node_a = Arc::new(Mutex::new(DtnNode::new(
            ReplicaId::new(1),
            "a",
            PolicyKind::Epidemic,
        )));
        let node_b = Arc::new(Mutex::new(DtnNode::new(
            ReplicaId::new(2),
            "b",
            PolicyKind::Epidemic,
        )));
        node_a
            .lock()
            .send("b", b"ping".to_vec(), SimTime::ZERO)
            .unwrap();
        node_b
            .lock()
            .send("a", b"pong".to_vec(), SimTime::ZERO)
            .unwrap();

        let responder_node = Arc::clone(&node_b);
        let responder = std::thread::spawn(move || {
            let (mut rh, mut wh) = pipe_halves(&mut end_b);
            run_responder(&mut rh, &mut wh, &responder_node, SyncLimits::unlimited())
                .expect("responder")
        });

        let (mut rh, mut wh) = pipe_halves(&mut end_a);
        let report = run_initiator(
            &mut rh,
            &mut wh,
            &node_a,
            SimTime::from_secs(60),
            SyncLimits::unlimited(),
        )
        .expect("initiator");
        let responder_report = responder.join().expect("join");

        assert_eq!(report.peer, Some(ReplicaId::new(2)));
        assert_eq!(responder_report.peer, Some(ReplicaId::new(1)));
        assert_eq!(report.pulled.unwrap().delivered, 1);
        assert_eq!(responder_report.pulled.unwrap().delivered, 1);
        assert_eq!(node_a.lock().inbox().len(), 1);
        assert_eq!(node_b.lock().inbox().len(), 1);
    }

    /// Helper splitting one PipeEnd into independent read/write handles.
    fn pipe_halves(end: &mut PipeEnd) -> (ReadHalf<'_>, WriteHalf) {
        let tx = end.tx.clone();
        (ReadHalf { end }, WriteHalf { tx })
    }

    struct ReadHalf<'a> {
        end: &'a mut PipeEnd,
    }
    impl Read for ReadHalf<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.end.read(buf)
        }
    }

    struct WriteHalf {
        tx: std::sync::mpsc::Sender<u8>,
    }
    impl Write for WriteHalf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            for &b in buf {
                self.tx.send(b).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed")
                })?;
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Wraps a writer, flipping one byte in the payload of the first
    /// [`FrameType::SyncDigest`] frame that passes through — corruption
    /// the frame CRC catches on the receive side.
    struct CorruptDigest<W: Write> {
        inner: W,
        header: Vec<u8>,
        payload_left: usize,
        corrupt_next: bool,
        done: bool,
    }

    impl<W: Write> CorruptDigest<W> {
        fn new(inner: W) -> Self {
            CorruptDigest {
                inner,
                header: Vec::new(),
                payload_left: 0,
                corrupt_next: false,
                done: false,
            }
        }
    }

    impl<W: Write> Write for CorruptDigest<W> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let mut out = Vec::with_capacity(buf.len());
            for &b in buf {
                let mut byte = b;
                if self.payload_left == 0 {
                    self.header.push(b);
                    if self.header.len() == crate::frame::HEADER_LEN {
                        let len = u32::from_le_bytes([
                            self.header[3],
                            self.header[4],
                            self.header[5],
                            self.header[6],
                        ]) as usize;
                        if self.header[2] == FrameType::SyncDigest as u8 && !self.done && len > 0 {
                            self.corrupt_next = true;
                            self.done = true;
                        }
                        self.payload_left = len;
                        self.header.clear();
                    }
                } else {
                    self.payload_left -= 1;
                    if self.corrupt_next {
                        byte ^= 0x55;
                        self.corrupt_next = false;
                    }
                }
                out.push(byte);
            }
            self.inner.write_all(&out)?;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            self.inner.flush()
        }
    }

    fn digest_node(n: u64, addr: &str) -> Arc<Mutex<DtnNode>> {
        let mut node = DtnNode::new(ReplicaId::new(n), addr, PolicyKind::Epidemic);
        node.set_sync_mode(SyncMode::Digest);
        Arc::new(Mutex::new(node))
    }

    fn run_session(node_a: &Arc<Mutex<DtnNode>>, node_b: &Arc<Mutex<DtnNode>>, at: u64) {
        let (mut end_a, mut end_b) = pipe();
        let responder_node = Arc::clone(node_b);
        let responder = std::thread::spawn(move || {
            let (mut rh, mut wh) = pipe_halves(&mut end_b);
            run_responder(&mut rh, &mut wh, &responder_node, SyncLimits::unlimited())
                .expect("responder")
        });
        let (mut rh, mut wh) = pipe_halves(&mut end_a);
        run_initiator(
            &mut rh,
            &mut wh,
            node_a,
            SimTime::from_secs(at),
            SyncLimits::unlimited(),
        )
        .expect("initiator");
        responder.join().expect("join");
    }

    #[test]
    fn digest_sessions_deliver_and_settle_into_summaries() {
        let node_a = digest_node(1, "a");
        let node_b = digest_node(2, "b");
        node_a
            .lock()
            .send("b", b"ping".to_vec(), SimTime::ZERO)
            .unwrap();
        node_b
            .lock()
            .send("a", b"pong".to_vec(), SimTime::ZERO)
            .unwrap();

        // Three sessions: seed the snapshot caches, then exchange
        // summaries against them.
        for round in 0..3u64 {
            run_session(&node_a, &node_b, 60 * (round + 1));
        }
        assert_eq!(node_a.lock().inbox().len(), 1);
        assert_eq!(node_b.lock().inbox().len(), 1);
        // Both sides pulled in digest mode every session.
        let stats_a = node_a.lock().recon_stats();
        let stats_b = node_b.lock().recon_stats();
        assert_eq!(stats_a.exchanges, 3);
        assert_eq!(stats_b.exchanges, 3);
        assert!(stats_a.digest_bytes > 0);
        // Once warm, summaries undercut the full requests they replace.
        assert!(
            stats_a.digest_bytes < stats_a.full_bytes + stats_b.full_bytes,
            "digest {} vs full {}+{}",
            stats_a.digest_bytes,
            stats_a.full_bytes,
            stats_b.full_bytes
        );
    }

    #[test]
    fn mixed_mode_session_interoperates() {
        // Only the pulling side's mode matters: a digest-mode node is
        // served by any peer (dispatch is by frame type), and serves
        // full-mode peers unchanged.
        let node_a = digest_node(1, "a");
        let node_b = Arc::new(Mutex::new(DtnNode::new(
            ReplicaId::new(2),
            "b",
            PolicyKind::Epidemic,
        )));
        node_a
            .lock()
            .send("b", b"to full".to_vec(), SimTime::ZERO)
            .unwrap();
        node_b
            .lock()
            .send("a", b"to digest".to_vec(), SimTime::ZERO)
            .unwrap();
        run_session(&node_a, &node_b, 60);
        assert_eq!(node_a.lock().inbox().len(), 1);
        assert_eq!(node_b.lock().inbox().len(), 1);
        assert_eq!(node_a.lock().recon_stats().exchanges, 1);
        assert_eq!(node_b.lock().recon_stats().exchanges, 0);
    }

    #[test]
    fn corrupted_digest_frame_degrades_to_full_exchange() {
        let node_a = digest_node(1, "a");
        let node_b = digest_node(2, "b");
        node_a
            .lock()
            .send("b", b"survives corruption".to_vec(), SimTime::ZERO)
            .unwrap();

        let (mut end_a, mut end_b) = pipe();
        let responder_node = Arc::clone(&node_b);
        let responder = std::thread::spawn(move || {
            let (mut rh, mut wh) = pipe_halves(&mut end_b);
            run_responder(&mut rh, &mut wh, &responder_node, SyncLimits::unlimited())
                .expect("responder")
        });
        let (mut rh, wh) = pipe_halves(&mut end_a);
        // The initiator's first SyncDigest frame arrives corrupted; the
        // responder answers ReconResync and the session completes on the
        // retransmitted full request.
        let mut wh = CorruptDigest::new(wh);
        run_initiator(
            &mut rh,
            &mut wh,
            &node_a,
            SimTime::from_secs(60),
            SyncLimits::unlimited(),
        )
        .expect("initiator");
        responder.join().expect("join");

        assert_eq!(node_b.lock().inbox().len(), 1);
        let stats = node_a.lock().recon_stats();
        assert_eq!(stats.exchanges, 1);
        assert!(
            stats.fallback_rounds >= 1,
            "corruption must be accounted as a fallback round"
        );

        // The fallback seeded both snapshot caches: a clean follow-up
        // session summarizes instead of falling back again.
        run_session(&node_a, &node_b, 120);
        let stats = node_a.lock().recon_stats();
        assert_eq!(stats.exchanges, 2);
        assert_eq!(stats.fallback_rounds, 1);
    }

    #[test]
    fn unexpected_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::SyncDone, &[]).unwrap();
        let err = expect(&mut std::io::Cursor::new(&buf), FrameType::Hello).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::UnexpectedFrame {
                expected: FrameType::Hello,
                got: FrameType::SyncDone
            }
        ));
        assert!(err.to_string().contains("Hello"));
    }
}
