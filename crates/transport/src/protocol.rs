//! The networked sync session: hello exchange plus two sync directions,
//! mirroring the paper's "two syncs per encounter, roles alternating".

use std::fmt;
use std::io::{Read, Write};
use std::sync::Arc;

use dtn::DtnNode;
use obs::{Event, Span};
use parking_lot::Mutex;
use pfr::sync::{SyncBatch, SyncRequest};
use pfr::wire::{
    from_bytes, from_bytes_shared, Decode, Encode, EncodeScratch, Reader as WireReader,
    Writer as WireWriter,
};
use pfr::{ReplicaId, SimTime, SyncLimits};

use crate::conn::Connection;
#[cfg(test)]
use crate::frame::read_frame;
use crate::frame::{read_frame_into, write_frame, BufPool, FrameError, FrameType};
use crate::peer::SessionReport;

/// Errors in the session protocol.
#[derive(Debug)]
pub enum ProtocolError {
    /// Framing or I/O failure.
    Frame(FrameError),
    /// The peer sent the wrong frame type for the protocol state.
    UnexpectedFrame {
        /// What the state machine needed.
        expected: FrameType,
        /// What arrived instead.
        got: FrameType,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Frame(e) => write!(f, "{e}"),
            ProtocolError::UnexpectedFrame { expected, got } => {
                write!(f, "expected {expected:?} frame, got {got:?}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Frame(e) => Some(e),
            ProtocolError::UnexpectedFrame { .. } => None,
        }
    }
}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> Self {
        ProtocolError::Frame(e)
    }
}

/// Peer identification exchanged when a session opens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    /// The sender's replica id.
    pub replica: ReplicaId,
    /// The sender's clock, so both sides stamp the encounter identically.
    pub now: SimTime,
}

impl Encode for Hello {
    fn encode(&self, w: &mut WireWriter) {
        self.replica.encode(w);
        w.put_varint(self.now.as_secs());
    }
}

impl Decode for Hello {
    fn decode(r: &mut WireReader<'_>) -> Result<Self, pfr::wire::WireError> {
        Ok(Hello {
            replica: ReplicaId::decode(r)?,
            now: SimTime::from_secs(r.get_varint()?),
        })
    }
}

#[cfg(test)]
fn expect(reader: &mut impl Read, expected: FrameType) -> Result<Vec<u8>, ProtocolError> {
    let (frame_type, payload) = read_frame(reader)?;
    if frame_type != expected {
        return Err(ProtocolError::UnexpectedFrame {
            expected,
            got: frame_type,
        });
    }
    Ok(payload)
}

/// Per-session reusable buffers: one encode scratch for every outbound
/// frame, one receive-buffer pool for every inbound frame, and the
/// session's accounting (payloads decoded as shared slices, total frame
/// payload bytes both ways). Steady-state sessions do no per-frame
/// allocation; the counters feed [`Event::DataPlaneReuse`] and
/// [`Event::TransportSync`].
#[derive(Debug, Default)]
struct SessionBuffers {
    scratch: EncodeScratch,
    pool: BufPool,
    payload_shares: u64,
    frame_bytes: u64,
}

/// Reads one frame of the expected type into a pooled buffer. The caller
/// returns the buffer via `pool.give` once decoded; on error it is
/// recycled here.
fn expect_pooled(
    reader: &mut impl Read,
    expected: FrameType,
    pool: &mut BufPool,
) -> Result<Vec<u8>, ProtocolError> {
    let mut payload = pool.take();
    match read_frame_into(reader, &mut payload) {
        Ok(frame_type) if frame_type == expected => Ok(payload),
        Ok(got) => {
            pool.give(payload);
            Err(ProtocolError::UnexpectedFrame { expected, got })
        }
        Err(e) => {
            pool.give(payload);
            Err(e.into())
        }
    }
}

/// Decodes a [`SyncBatch`] through the shared-buffer wire path: the frame
/// payload becomes one `Arc<[u8]>` backing buffer and every item payload
/// in the batch is a slice of it — one allocation for the whole batch
/// instead of one per item. Returns the batch and the share count.
fn decode_batch_shared(payload: &[u8]) -> Result<(SyncBatch, u64), ProtocolError> {
    let backing: Arc<[u8]> = payload.into();
    from_bytes_shared(&backing).map_err(|e| ProtocolError::Frame(FrameError::Decode(e)))
}

fn decode_payload<T: Decode>(payload: &[u8]) -> Result<T, ProtocolError> {
    from_bytes(payload).map_err(|e| ProtocolError::Frame(FrameError::Decode(e)))
}

/// The outcome of one session drive: whatever progress the session made
/// before it completed or failed, plus the typed error that ended it (if
/// any). Faulty links routinely kill sessions mid-transfer; the partial
/// report is what lets callers and the fault harness account for the
/// state that *did* replicate before the cut.
#[derive(Debug)]
#[non_exhaustive]
pub struct SessionOutcome {
    /// Progress made before the session ended (possibly partial).
    pub report: SessionReport,
    /// The error that terminated the session, or `None` on clean close.
    pub error: Option<ProtocolError>,
}

impl SessionOutcome {
    /// Converts to a `Result`, discarding partial progress on error.
    pub fn into_result(self) -> Result<SessionReport, ProtocolError> {
        match self.error {
            None => Ok(self.report),
            Some(e) => Err(e),
        }
    }
}

fn initiator_steps<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    now: SimTime,
    limits: SyncLimits,
    report: &mut SessionReport,
    bufs: &mut SessionBuffers,
) -> Result<(), ProtocolError> {
    // Hello exchange.
    let (my_id, obs) = {
        let node = node.lock();
        (node.id(), node.replica().observer().clone())
    };
    let my_hello = Hello {
        replica: my_id,
        now,
    };
    report.now = Some(now);
    let hello_bytes = bufs.scratch.encode(&my_hello);
    bufs.frame_bytes += hello_bytes.len() as u64;
    write_frame(writer, FrameType::Hello, hello_bytes)?;
    let hello_payload = expect_pooled(reader, FrameType::Hello, &mut bufs.pool)?;
    bufs.frame_bytes += hello_payload.len() as u64;
    let peer_hello: Hello = decode_payload(&hello_payload)?;
    bufs.pool.give(hello_payload);
    let peer = peer_hello.replica;
    report.peer = Some(peer);
    let span = Span::start(&obs, "transport.initiator", my_id.as_u64(), peer.as_u64());

    // Direction 1: we are the target and pull from the responder.
    // The request borrows the node's knowledge/filter, so serialize it
    // while the lock is held; only the scratch bytes leave the critical
    // section.
    let request_bytes = {
        let mut node = node.lock();
        let request = node.begin_sync_session(peer, now);
        bufs.scratch.encode(&request)
    };
    bufs.frame_bytes += request_bytes.len() as u64;
    write_frame(writer, FrameType::SyncRequest, request_bytes)?;
    let batch_payload = expect_pooled(reader, FrameType::SyncBatch, &mut bufs.pool)?;
    bufs.frame_bytes += batch_payload.len() as u64;
    let (batch, shares) = decode_batch_shared(&batch_payload)?;
    bufs.pool.give(batch_payload);
    bufs.payload_shares += shares;
    report.pulled = Some(node.lock().apply_sync(batch, now));
    write_frame(writer, FrameType::SyncDone, &[])?;

    // Direction 2: the responder pulls from us.
    let request_payload = expect_pooled(reader, FrameType::SyncRequest, &mut bufs.pool)?;
    bufs.frame_bytes += request_payload.len() as u64;
    let peer_request: SyncRequest = decode_payload(&request_payload)?;
    bufs.pool.give(request_payload);
    let batch = node.lock().respond_sync(&peer_request, limits, now);
    report.served = batch.entries.len();
    let batch_bytes = bufs.scratch.encode(&batch);
    bufs.frame_bytes += batch_bytes.len() as u64;
    write_frame(writer, FrameType::SyncBatch, batch_bytes)?;
    let done = expect_pooled(reader, FrameType::SyncDone, &mut bufs.pool)?;
    bufs.pool.give(done);
    span.finish();
    Ok(())
}

fn responder_steps<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
    report: &mut SessionReport,
    bufs: &mut SessionBuffers,
) -> Result<(), ProtocolError> {
    // Hello exchange: adopt the initiator's clock for this encounter.
    let hello_payload = expect_pooled(reader, FrameType::Hello, &mut bufs.pool)?;
    bufs.frame_bytes += hello_payload.len() as u64;
    let peer_hello: Hello = decode_payload(&hello_payload)?;
    bufs.pool.give(hello_payload);
    let peer = peer_hello.replica;
    let now = peer_hello.now;
    report.peer = Some(peer);
    report.now = Some(now);
    let (my_id, obs) = {
        let node = node.lock();
        (node.id(), node.replica().observer().clone())
    };
    let span = Span::start(&obs, "transport.responder", my_id.as_u64(), peer.as_u64());
    let my_hello = Hello {
        replica: my_id,
        now,
    };
    let hello_bytes = bufs.scratch.encode(&my_hello);
    bufs.frame_bytes += hello_bytes.len() as u64;
    write_frame(writer, FrameType::Hello, hello_bytes)?;

    // Direction 1: the initiator pulls from us.
    let request_payload = expect_pooled(reader, FrameType::SyncRequest, &mut bufs.pool)?;
    bufs.frame_bytes += request_payload.len() as u64;
    let request: SyncRequest = decode_payload(&request_payload)?;
    bufs.pool.give(request_payload);
    let batch = node.lock().respond_sync(&request, limits, now);
    report.served = batch.entries.len();
    let batch_bytes = bufs.scratch.encode(&batch);
    bufs.frame_bytes += batch_bytes.len() as u64;
    write_frame(writer, FrameType::SyncBatch, batch_bytes)?;
    let done = expect_pooled(reader, FrameType::SyncDone, &mut bufs.pool)?;
    bufs.pool.give(done);

    // Direction 2: we pull from the initiator.
    // As on the initiator side: serialize the borrowed request under the
    // lock; only the scratch bytes leave the critical section.
    let request_bytes = {
        let mut node = node.lock();
        let request = node.begin_sync_session(peer, now);
        bufs.scratch.encode(&request)
    };
    bufs.frame_bytes += request_bytes.len() as u64;
    write_frame(writer, FrameType::SyncRequest, request_bytes)?;
    let batch_payload = expect_pooled(reader, FrameType::SyncBatch, &mut bufs.pool)?;
    bufs.frame_bytes += batch_payload.len() as u64;
    let (batch, shares) = decode_batch_shared(&batch_payload)?;
    bufs.pool.give(batch_payload);
    bufs.payload_shares += shares;
    report.pulled = Some(node.lock().apply_sync(batch, now));
    write_frame(writer, FrameType::SyncDone, &[])?;
    span.finish();
    Ok(())
}

/// Emits the per-session `TransportSync` and `DataPlaneReuse` events from
/// whatever progress the report and buffers record, whether the session
/// completed or died mid-protocol.
fn emit_session_event(
    node: &Arc<Mutex<DtnNode>>,
    report: &SessionReport,
    ok: bool,
    bufs: &SessionBuffers,
) {
    let (my_id, obs) = {
        let node = node.lock();
        (node.id(), node.replica().observer().clone())
    };
    let peer = report.peer.map(|p| p.as_u64()).unwrap_or(0);
    let served = report.served as u64;
    let delivered = report
        .pulled
        .as_ref()
        .map(|p| p.delivered as u64)
        .unwrap_or(0);
    obs.emit(|| Event::TransportSync {
        replica: my_id.as_u64(),
        peer,
        served,
        delivered,
        frame_bytes: bufs.frame_bytes,
        ok,
    });
    obs.emit(|| Event::DataPlaneReuse {
        replica: my_id.as_u64(),
        peer,
        scratch_reuses: bufs.scratch.reuses(),
        bytes_encoded: bufs.scratch.bytes_encoded(),
        pool_hits: bufs.pool.hits(),
        payload_shares: bufs.payload_shares,
    });
}

/// Persists a durable node after a session — even a failed one: whatever
/// replicated before the cut is worth keeping, and replay is idempotent.
/// Non-durable nodes are a free no-op. A persist failure must not kill
/// the transport (the in-memory state is still good), so it surfaces as
/// an [`Event::StoreFault`] instead of an error.
fn persist_after_session(node: &Arc<Mutex<DtnNode>>, now: Option<SimTime>) {
    let Some(now) = now else { return };
    let mut node = node.lock();
    if let Err(e) = node.persist(now) {
        let obs = node.replica().observer().clone();
        drop(node);
        obs.emit(|| Event::StoreFault {
            op: "persist",
            detail: e.to_string(),
        });
    }
}

/// Drives the initiator side of a session over any [`Connection`]: hello,
/// pull (we are target), then serve the responder's pull (we are source).
///
/// Never panics on link faults: every failure surfaces as a typed
/// [`ProtocolError`] inside the returned [`SessionOutcome`], alongside the
/// partial [`SessionReport`] for whatever replicated before the failure.
pub fn initiate_session(
    conn: &mut dyn Connection,
    node: &Arc<Mutex<DtnNode>>,
    now: SimTime,
    limits: SyncLimits,
) -> SessionOutcome {
    let (mut reader, mut writer) = conn.halves();
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let error = initiator_steps(
        &mut reader,
        &mut writer,
        node,
        now,
        limits,
        &mut report,
        &mut bufs,
    )
    .err();
    emit_session_event(node, &report, error.is_none(), &bufs);
    persist_after_session(node, report.now);
    SessionOutcome { report, error }
}

/// Drives the responder side of a session accepted from any
/// [`Connection`]; see [`initiate_session`] for the failure contract.
pub fn respond_session(
    conn: &mut dyn Connection,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
) -> SessionOutcome {
    let (mut reader, mut writer) = conn.halves();
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let error = responder_steps(
        &mut reader,
        &mut writer,
        node,
        limits,
        &mut report,
        &mut bufs,
    )
    .err();
    emit_session_event(node, &report, error.is_none(), &bufs);
    persist_after_session(node, report.now);
    SessionOutcome { report, error }
}

/// Runs the initiator side over split reader/writer halves, failing
/// without partial progress. Prefer [`initiate_session`] for new code.
///
/// # Errors
///
/// Any [`ProtocolError`] from the session.
pub fn run_initiator<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    now: SimTime,
    limits: SyncLimits,
) -> Result<SessionReport, ProtocolError> {
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let result = initiator_steps(reader, writer, node, now, limits, &mut report, &mut bufs);
    emit_session_event(node, &report, result.is_ok(), &bufs);
    persist_after_session(node, report.now);
    result.map(|()| report)
}

/// Runs the responder side over split reader/writer halves, failing
/// without partial progress. Prefer [`respond_session`] for new code.
///
/// # Errors
///
/// Any [`ProtocolError`] from the session.
pub fn run_responder<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    node: &Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
) -> Result<SessionReport, ProtocolError> {
    let mut report = SessionReport::default();
    let mut bufs = SessionBuffers::default();
    let result = responder_steps(reader, writer, node, limits, &mut report, &mut bufs);
    emit_session_event(node, &report, result.is_ok(), &bufs);
    persist_after_session(node, report.now);
    result.map(|()| report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn::PolicyKind;

    /// In-memory duplex pipe for driving both protocol sides without
    /// sockets.
    fn pipe() -> (PipeEnd, PipeEnd) {
        let (tx_a, rx_a) = std::sync::mpsc::channel::<u8>();
        let (tx_b, rx_b) = std::sync::mpsc::channel::<u8>();
        (
            PipeEnd { tx: tx_a, rx: rx_b },
            PipeEnd { tx: tx_b, rx: rx_a },
        )
    }

    struct PipeEnd {
        tx: std::sync::mpsc::Sender<u8>,
        rx: std::sync::mpsc::Receiver<u8>,
    }

    impl Read for PipeEnd {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if buf.is_empty() {
                return Ok(0);
            }
            match self.rx.recv() {
                Ok(byte) => {
                    buf[0] = byte;
                    let mut n = 1;
                    while n < buf.len() {
                        match self.rx.try_recv() {
                            Ok(b) => {
                                buf[n] = b;
                                n += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    Ok(n)
                }
                Err(_) => Ok(0),
            }
        }
    }

    impl Write for PipeEnd {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            for &b in buf {
                self.tx.send(b).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed")
                })?;
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn full_session_over_in_memory_pipe() {
        let (mut end_a, mut end_b) = pipe();
        let node_a = Arc::new(Mutex::new(DtnNode::new(
            ReplicaId::new(1),
            "a",
            PolicyKind::Epidemic,
        )));
        let node_b = Arc::new(Mutex::new(DtnNode::new(
            ReplicaId::new(2),
            "b",
            PolicyKind::Epidemic,
        )));
        node_a
            .lock()
            .send("b", b"ping".to_vec(), SimTime::ZERO)
            .unwrap();
        node_b
            .lock()
            .send("a", b"pong".to_vec(), SimTime::ZERO)
            .unwrap();

        let responder_node = Arc::clone(&node_b);
        let responder = std::thread::spawn(move || {
            let (mut rh, mut wh) = pipe_halves(&mut end_b);
            run_responder(&mut rh, &mut wh, &responder_node, SyncLimits::unlimited())
                .expect("responder")
        });

        let (mut rh, mut wh) = pipe_halves(&mut end_a);
        let report = run_initiator(
            &mut rh,
            &mut wh,
            &node_a,
            SimTime::from_secs(60),
            SyncLimits::unlimited(),
        )
        .expect("initiator");
        let responder_report = responder.join().expect("join");

        assert_eq!(report.peer, Some(ReplicaId::new(2)));
        assert_eq!(responder_report.peer, Some(ReplicaId::new(1)));
        assert_eq!(report.pulled.unwrap().delivered, 1);
        assert_eq!(responder_report.pulled.unwrap().delivered, 1);
        assert_eq!(node_a.lock().inbox().len(), 1);
        assert_eq!(node_b.lock().inbox().len(), 1);
    }

    /// Helper splitting one PipeEnd into independent read/write handles.
    fn pipe_halves(end: &mut PipeEnd) -> (ReadHalf<'_>, WriteHalf) {
        let tx = end.tx.clone();
        (ReadHalf { end }, WriteHalf { tx })
    }

    struct ReadHalf<'a> {
        end: &'a mut PipeEnd,
    }
    impl Read for ReadHalf<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.end.read(buf)
        }
    }

    struct WriteHalf {
        tx: std::sync::mpsc::Sender<u8>,
    }
    impl Write for WriteHalf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            for &b in buf {
                self.tx.send(b).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::BrokenPipe, "pipe closed")
                })?;
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn unexpected_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::SyncDone, &[]).unwrap();
        let err = expect(&mut std::io::Cursor::new(&buf), FrameType::Hello).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::UnexpectedFrame {
                expected: FrameType::Hello,
                got: FrameType::SyncDone
            }
        ));
        assert!(err.to_string().contains("Hello"));
    }
}
