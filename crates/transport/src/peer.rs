//! TCP peers: real processes replicating over sockets.

use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dtn::DtnNode;
use parking_lot::Mutex;
use pfr::sync::SyncReport;
use pfr::{ReplicaId, SimTime, SyncLimits};

use crate::conn::TcpConnection;
use crate::frame::FrameError;
use crate::protocol::{self, ProtocolError};

/// Errors from running a peer.
#[derive(Debug)]
pub enum TransportError {
    /// Socket setup or I/O failure.
    Io(std::io::Error),
    /// A session failed mid-protocol.
    Protocol(ProtocolError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Protocol(e) => write!(f, "sync protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Protocol(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<ProtocolError> for TransportError {
    fn from(e: ProtocolError) -> Self {
        TransportError::Protocol(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Protocol(ProtocolError::Frame(e))
    }
}

/// Timeout and retry policy for outbound dials.
///
/// The original dial path blocked without bound on a stalled peer (OS
/// default connect timeout, no read deadline). Every knob here is
/// surfaced as a CLI flag on `peer`; reconnect attempts back off
/// exponentially with deterministic jitter so a herd of nodes chasing a
/// rebooted peer does not stampede it in lockstep.
#[derive(Clone, Copy, Debug)]
pub struct DialConfig {
    /// Deadline for the TCP connect itself.
    pub connect_timeout: Duration,
    /// Read/write deadline applied to the connected socket, so a peer
    /// that wedges mid-session cannot hold the dialer forever.
    pub io_timeout: Duration,
    /// Extra connect attempts after the first failure.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub backoff_cap: Duration,
    /// Seed for the deterministic jitter added to each backoff (up to
    /// half the delay). Same seed, same schedule — testable by design.
    pub jitter_seed: u64,
}

impl Default for DialConfig {
    fn default() -> Self {
        DialConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            retries: 0,
            backoff: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(5),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl DialConfig {
    /// The delay to sleep before retry `attempt` (1-based): exponential
    /// backoff capped at [`DialConfig::backoff_cap`], plus deterministic
    /// jitter of up to half the delay.
    pub fn retry_delay(&self, attempt: u32) -> Duration {
        let base = self
            .backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.backoff_cap);
        let mut x = self
            .jitter_seed
            .wrapping_add(u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        x ^= x >> 33;
        let half = base.as_millis() as u64 / 2;
        let jitter = if half == 0 { 0 } else { x % half };
        base + Duration::from_millis(jitter)
    }

    /// Connects to `remote`, retrying per this policy. Applies the
    /// connect deadline to each attempt and the I/O deadline to the
    /// resulting stream.
    ///
    /// # Errors
    ///
    /// The last connect error once every attempt is exhausted.
    pub fn dial(&self, remote: SocketAddr) -> std::io::Result<TcpStream> {
        let mut attempt = 0u32;
        loop {
            match TcpStream::connect_timeout(&remote, self.connect_timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(self.io_timeout))?;
                    stream.set_write_timeout(Some(self.io_timeout))?;
                    return Ok(stream);
                }
                Err(e) => {
                    if attempt >= self.retries {
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(self.retry_delay(attempt));
                }
            }
        }
    }
}

/// The outcome of one networked encounter (both sync directions).
#[derive(Debug, Default, Clone)]
#[non_exhaustive]
pub struct SessionReport {
    /// The remote peer's replica id.
    pub peer: Option<ReplicaId>,
    /// Report for the pull direction (remote → us).
    pub pulled: Option<SyncReport>,
    /// Report for the push direction (us → remote), as observed from the
    /// number of items we served.
    pub served: usize,
    /// The encounter clock the session ran under — the initiator's on
    /// both sides, fixed by the hello exchange. `None` when the session
    /// died before the clock was agreed (nothing replicated either).
    pub now: Option<SimTime>,
}

/// A replication peer: a [`DtnNode`] listening on a TCP socket, serving
/// sync sessions to whoever connects, and able to initiate encounters with
/// remote peers.
///
/// # Examples
///
/// ```
/// use dtn::{DtnNode, PolicyKind};
/// use pfr::{ReplicaId, SimTime};
/// use transport::Peer;
///
/// let a = Peer::start(DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic),
///                     "127.0.0.1:0")?;
/// let b = Peer::start(DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic),
///                     "127.0.0.1:0")?;
/// a.with_node(|n| n.send("b", b"over tcp".to_vec(), SimTime::ZERO)).unwrap();
/// let report = a.sync_with(b.local_addr(), SimTime::from_secs(1))?;
/// assert_eq!(report.served, 1);
/// assert_eq!(b.with_node(|n| n.inbox().len()), 1);
/// # Ok::<(), transport::TransportError>(())
/// ```
pub struct Peer {
    node: Arc<Mutex<DtnNode>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    limits: SyncLimits,
    dial: DialConfig,
}

impl Peer {
    /// Starts a peer listening on `bind` (use port 0 for an ephemeral
    /// port). The accept loop runs on a background thread until the peer
    /// is dropped or [`Peer::stop`] is called.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn start(node: DtnNode, bind: impl ToSocketAddrs) -> Result<Peer, TransportError> {
        Peer::start_with_limits(node, bind, SyncLimits::unlimited())
    }

    /// Starts a peer that serves at most `limits.max_items` items per sync
    /// (a bandwidth-constrained node).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn start_with_limits(
        node: DtnNode,
        bind: impl ToSocketAddrs,
        limits: SyncLimits,
    ) -> Result<Peer, TransportError> {
        Peer::start_configured(node, bind, limits, DialConfig::default())
    }

    /// Starts a peer with explicit serve limits and dial policy.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn start_configured(
        node: DtnNode,
        bind: impl ToSocketAddrs,
        limits: SyncLimits,
        dial: DialConfig,
    ) -> Result<Peer, TransportError> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let node = Arc::new(Mutex::new(node));
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_node = Arc::clone(&node);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("peer-accept-{local_addr}"))
            .spawn(move || {
                accept_loop(listener, accept_node, accept_shutdown, limits);
            })?;

        Ok(Peer {
            node,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            limits,
            dial,
        })
    }

    /// The socket address the peer listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs a closure against the peer's node (replica + policy) under the
    /// peer lock.
    pub fn with_node<T>(&self, f: impl FnOnce(&mut DtnNode) -> T) -> T {
        f(&mut self.node.lock())
    }

    /// Initiates a full encounter with a remote peer: pulls items we are
    /// missing, then serves the remote's pull — two syncs, exactly like a
    /// physical encounter.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`] from connecting or the session protocol.
    pub fn sync_with(
        &self,
        remote: SocketAddr,
        now: SimTime,
    ) -> Result<SessionReport, TransportError> {
        let stream = self.dial.dial(remote)?;
        let mut conn = TcpConnection::new(stream)?;
        let outcome = protocol::initiate_session(&mut conn, &self.node, now, self.limits);
        outcome.into_result().map_err(TransportError::from)
    }

    /// Stops the accept loop and returns the node.
    pub fn stop(mut self) -> DtnNode {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            // A panicked accept thread has already torn down the listener;
            // the node is still intact, so recover it rather than re-panic.
            let _ = handle.join();
        }
        // The accept loop has exited, so this is the only Arc holder now —
        // but sessions may briefly hold clones; spin until unique.
        let mut node_arc = Arc::clone(&self.node);
        drop(self);
        loop {
            match Arc::try_unwrap(node_arc) {
                Ok(mutex) => return mutex.into_inner(),
                Err(shared) => {
                    node_arc = shared;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

impl Drop for Peer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Peer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    node: Arc<Mutex<DtnNode>>,
    shutdown: Arc<AtomicBool>,
    limits: SyncLimits,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let session_node = Arc::clone(&node);
                // One thread per session: encounters are short-lived.
                let _ = std::thread::Builder::new()
                    .name("peer-session".to_string())
                    .spawn(move || {
                        let _ = serve_session(stream, session_node, limits);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn serve_session(
    stream: TcpStream,
    node: Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
) -> Result<(), TransportError> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut conn = TcpConnection::new(stream)?;
    let outcome = protocol::respond_session(&mut conn, &node, limits);
    outcome.into_result().map_err(TransportError::from)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_is_deterministic_and_grows() {
        let cfg = DialConfig::default();
        let d1 = cfg.retry_delay(1);
        let d2 = cfg.retry_delay(2);
        let d3 = cfg.retry_delay(3);
        // Same seed, same schedule.
        assert_eq!(d1, cfg.retry_delay(1));
        // Exponential growth: each delay exceeds the previous base.
        assert!(d1 >= cfg.backoff);
        assert!(d2 >= cfg.backoff * 2);
        assert!(d3 >= cfg.backoff * 4);
        // Jitter is bounded by half the base delay.
        assert!(d1 <= cfg.backoff + cfg.backoff / 2);
    }

    #[test]
    fn retry_delay_saturates_at_the_cap() {
        let cfg = DialConfig {
            backoff: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(400),
            ..DialConfig::default()
        };
        // 2^30 would overflow without saturation; the cap bounds it.
        let d = cfg.retry_delay(31);
        assert!(d <= Duration::from_millis(400 + 200));
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let a = DialConfig {
            jitter_seed: 1,
            ..DialConfig::default()
        };
        let b = DialConfig {
            jitter_seed: 2,
            ..DialConfig::default()
        };
        // Not a proof, but two herd members should not share a schedule.
        assert_ne!(
            (a.retry_delay(1), a.retry_delay(2)),
            (b.retry_delay(1), b.retry_delay(2))
        );
    }

    #[test]
    fn dial_retries_then_reports_the_connect_error() {
        // Bind-then-drop guarantees a port nobody listens on right now.
        let port = {
            let sock = TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().port()
        };
        let cfg = DialConfig {
            connect_timeout: Duration::from_millis(300),
            retries: 2,
            backoff: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..DialConfig::default()
        };
        let err = cfg
            .dial(SocketAddr::from(([127, 0, 0, 1], port)))
            .unwrap_err();
        // Three attempts were made and the final error surfaced.
        assert!(
            err.kind() == std::io::ErrorKind::ConnectionRefused
                || err.kind() == std::io::ErrorKind::TimedOut,
            "unexpected error kind: {err}"
        );
    }
}
