//! TCP peers: real processes replicating over sockets.

use std::fmt;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dtn::DtnNode;
use parking_lot::Mutex;
use pfr::sync::SyncReport;
use pfr::{ReplicaId, SimTime, SyncLimits};

use crate::conn::TcpConnection;
use crate::frame::FrameError;
use crate::protocol::{self, ProtocolError};

/// Errors from running a peer.
#[derive(Debug)]
pub enum TransportError {
    /// Socket setup or I/O failure.
    Io(std::io::Error),
    /// A session failed mid-protocol.
    Protocol(ProtocolError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Protocol(e) => write!(f, "sync protocol error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Io(e) => Some(e),
            TransportError::Protocol(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

impl From<ProtocolError> for TransportError {
    fn from(e: ProtocolError) -> Self {
        TransportError::Protocol(e)
    }
}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> Self {
        TransportError::Protocol(ProtocolError::Frame(e))
    }
}

/// The outcome of one networked encounter (both sync directions).
#[derive(Debug, Default, Clone)]
#[non_exhaustive]
pub struct SessionReport {
    /// The remote peer's replica id.
    pub peer: Option<ReplicaId>,
    /// Report for the pull direction (remote → us).
    pub pulled: Option<SyncReport>,
    /// Report for the push direction (us → remote), as observed from the
    /// number of items we served.
    pub served: usize,
    /// The encounter clock the session ran under — the initiator's on
    /// both sides, fixed by the hello exchange. `None` when the session
    /// died before the clock was agreed (nothing replicated either).
    pub now: Option<SimTime>,
}

/// A replication peer: a [`DtnNode`] listening on a TCP socket, serving
/// sync sessions to whoever connects, and able to initiate encounters with
/// remote peers.
///
/// # Examples
///
/// ```
/// use dtn::{DtnNode, PolicyKind};
/// use pfr::{ReplicaId, SimTime};
/// use transport::Peer;
///
/// let a = Peer::start(DtnNode::new(ReplicaId::new(1), "a", PolicyKind::Epidemic),
///                     "127.0.0.1:0")?;
/// let b = Peer::start(DtnNode::new(ReplicaId::new(2), "b", PolicyKind::Epidemic),
///                     "127.0.0.1:0")?;
/// a.with_node(|n| n.send("b", b"over tcp".to_vec(), SimTime::ZERO)).unwrap();
/// let report = a.sync_with(b.local_addr(), SimTime::from_secs(1))?;
/// assert_eq!(report.served, 1);
/// assert_eq!(b.with_node(|n| n.inbox().len()), 1);
/// # Ok::<(), transport::TransportError>(())
/// ```
pub struct Peer {
    node: Arc<Mutex<DtnNode>>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    limits: SyncLimits,
}

impl Peer {
    /// Starts a peer listening on `bind` (use port 0 for an ephemeral
    /// port). The accept loop runs on a background thread until the peer
    /// is dropped or [`Peer::stop`] is called.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn start(node: DtnNode, bind: impl ToSocketAddrs) -> Result<Peer, TransportError> {
        Peer::start_with_limits(node, bind, SyncLimits::unlimited())
    }

    /// Starts a peer that serves at most `limits.max_items` items per sync
    /// (a bandwidth-constrained node).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] if binding fails.
    pub fn start_with_limits(
        node: DtnNode,
        bind: impl ToSocketAddrs,
        limits: SyncLimits,
    ) -> Result<Peer, TransportError> {
        let listener = TcpListener::bind(bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let node = Arc::new(Mutex::new(node));
        let shutdown = Arc::new(AtomicBool::new(false));

        let accept_node = Arc::clone(&node);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name(format!("peer-accept-{local_addr}"))
            .spawn(move || {
                accept_loop(listener, accept_node, accept_shutdown, limits);
            })?;

        Ok(Peer {
            node,
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            limits,
        })
    }

    /// The socket address the peer listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs a closure against the peer's node (replica + policy) under the
    /// peer lock.
    pub fn with_node<T>(&self, f: impl FnOnce(&mut DtnNode) -> T) -> T {
        f(&mut self.node.lock())
    }

    /// Initiates a full encounter with a remote peer: pulls items we are
    /// missing, then serves the remote's pull — two syncs, exactly like a
    /// physical encounter.
    ///
    /// # Errors
    ///
    /// Any [`TransportError`] from connecting or the session protocol.
    pub fn sync_with(
        &self,
        remote: SocketAddr,
        now: SimTime,
    ) -> Result<SessionReport, TransportError> {
        let stream = TcpStream::connect_timeout(&remote, Duration::from_secs(5))?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let mut conn = TcpConnection::new(stream)?;
        let outcome = protocol::initiate_session(&mut conn, &self.node, now, self.limits);
        outcome.into_result().map_err(TransportError::from)
    }

    /// Stops the accept loop and returns the node.
    pub fn stop(mut self) -> DtnNode {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            // A panicked accept thread has already torn down the listener;
            // the node is still intact, so recover it rather than re-panic.
            let _ = handle.join();
        }
        // The accept loop has exited, so this is the only Arc holder now —
        // but sessions may briefly hold clones; spin until unique.
        let mut node_arc = Arc::clone(&self.node);
        drop(self);
        loop {
            match Arc::try_unwrap(node_arc) {
                Ok(mutex) => return mutex.into_inner(),
                Err(shared) => {
                    node_arc = shared;
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
    }
}

impl Drop for Peer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl fmt::Debug for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Peer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

fn accept_loop(
    listener: TcpListener,
    node: Arc<Mutex<DtnNode>>,
    shutdown: Arc<AtomicBool>,
    limits: SyncLimits,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let session_node = Arc::clone(&node);
                // One thread per session: encounters are short-lived.
                let _ = std::thread::Builder::new()
                    .name("peer-session".to_string())
                    .spawn(move || {
                        let _ = serve_session(stream, session_node, limits);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
}

fn serve_session(
    stream: TcpStream,
    node: Arc<Mutex<DtnNode>>,
    limits: SyncLimits,
) -> Result<(), TransportError> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut conn = TcpConnection::new(stream)?;
    let outcome = protocol::respond_session(&mut conn, &node, limits);
    outcome.into_result().map_err(TransportError::from)?;
    Ok(())
}
